"""Sparse matrix-vector product plugin (CSR SpMV).

SpMV is the canonical memory-bound kernel: two flops per stored nonzero
against ~12 bytes of traffic (value + column index + amortised vector
reads), so the thread count that saturates the memory system — not the
core count — is optimal.  The nonzero count ``nnz`` is a first-class
sampled dimension alongside ``n``, which no dense builtin has, and the
memory footprint is given explicitly (index words are not captured by the
operand table alone).
"""

from __future__ import annotations

import numpy as np

from repro.routines.plugin import SpecListPlugin
from repro.routines.spec import make_routine_spec

__all__ = ["SparsePlugin", "SPMV_SPEC"]

#: Threads at which the memory system is ~63% saturated.
_SATURATION_THREADS = 6.0
#: Per-thread reduction/team overhead (seconds).
_TEAM_SECONDS = 1.5e-6


def _spmv_cost(platform, precision, dims, threads):
    n = np.asarray(dims["n"], dtype=np.float64)
    nnz = np.asarray(dims["nnz"], dtype=np.float64)
    t = np.asarray(threads, dtype=np.float64)
    itemsize = 4.0 if precision == "s" else 8.0
    # CSR streams values + int32 column indices once, x with ~50% cache
    # reuse, y once; row pointers are noise.
    bytes_moved = nnz * (itemsize + 4.0) + n * itemsize * 1.5
    bandwidth = platform.total_memory_bandwidth_gbs * 1e9
    saturation = t / (t + _SATURATION_THREADS)
    return bytes_moved / (bandwidth * saturation) + _TEAM_SECONDS * t


SPMV_SPEC = make_routine_spec(
    "spmv",
    ("n", "nnz"),
    [
        ("values", ("nnz", "1"), "regular"),
        ("colind", ("nnz", "1"), "regular"),
        ("x", ("n", "1"), "regular"),
        ("y", ("n", "1"), "regular"),
    ],
    flops=lambda d: 2.0 * d["nnz"],
    cost_model=_spmv_cost,
    dim_ranges={"n": (1024, 4194304), "nnz": (4096, 67108864)},
)


class SparsePlugin(SpecListPlugin):
    """CSR sparse matrix-vector product (``sspmv`` / ``dspmv``)."""

    def __init__(self):
        super().__init__("contrib-sparse", [SPMV_SPEC], version="1.0")
