"""Triangular-solve family plugin: banded and packed multi-RHS solves.

One plugin registering *two* routines — the catalog treats a plugin as a
provider of a routine family, and this is the smallest real family:

* ``tbtrs`` — banded triangular solve, A stored as a ``kd``-wide band of
  an ``n x n`` triangular matrix, solved against ``r`` right-hand sides;
* ``tptrs`` — packed triangular solve, A stored as the ``n(n+1)/2``
  packed triangle, against ``r`` right-hand sides.

Both are forward-substitution shaped: the sweep along ``n`` is sequential
and only the right-hand sides parallelise, so the useful thread count
saturates at ``r`` — a scaling law none of the builtin BLAS-12 exhibits.
"""

from __future__ import annotations

import numpy as np

from repro.routines.plugin import SpecListPlugin
from repro.routines.spec import make_routine_spec

__all__ = ["TriangularSolvePlugin", "TBTRS_SPEC", "TPTRS_SPEC"]

#: Per-column-block synchronisation cost (seconds) of the n-sweep.
_SWEEP_SYNC_SECONDS = 4e-7


def _substitution_cost(flops, rhs, n, platform, precision, threads):
    """Shared scaling law: parallel over ``rhs``, sequential along ``n``."""
    t = np.asarray(threads, dtype=np.float64)
    width = 2.0 if precision == "s" else 1.0
    peak = platform.peak_gflops_per_core * 1e9 * width
    # Substitution streams the triangle once; it runs memory-shaped, far
    # below peak, and only min(t, rhs) threads do useful work.
    useful = np.minimum(t, rhs)
    kernel = flops / (peak * 0.25 * useful)
    sync = _SWEEP_SYNC_SECONDS * np.sqrt(n) * t
    return kernel + sync


def _tbtrs_cost(platform, precision, dims, threads):
    n = np.asarray(dims["n"], dtype=np.float64)
    kd = np.asarray(dims["kd"], dtype=np.float64)
    r = np.asarray(dims["r"], dtype=np.float64)
    flops = 2.0 * n * kd * r
    return _substitution_cost(flops, r, n, platform, precision, threads)


def _tptrs_cost(platform, precision, dims, threads):
    n = np.asarray(dims["n"], dtype=np.float64)
    r = np.asarray(dims["r"], dtype=np.float64)
    flops = n * n * r
    return _substitution_cost(flops, r, n, platform, precision, threads)


TBTRS_SPEC = make_routine_spec(
    "tbtrs",
    ("n", "kd", "r"),
    [
        ("A", ("kd", "n"), "triangular"),
        ("B", ("n", "r"), "regular"),
        ("X", ("n", "r"), "regular"),
    ],
    flops=lambda d: 2.0 * d["n"] * d["kd"] * d["r"],
    cost_model=_tbtrs_cost,
    dim_ranges={"n": (64, 16384), "kd": (1, 512), "r": (1, 1024)},
)

TPTRS_SPEC = make_routine_spec(
    "tptrs",
    ("n", "r"),
    [
        ("A", ("0.5", "n", "n"), "triangular"),
        ("B", ("n", "r"), "regular"),
        ("X", ("n", "r"), "regular"),
    ],
    flops=lambda d: 1.0 * d["n"] * d["n"] * d["r"],
    cost_model=_tptrs_cost,
    dim_ranges={"n": (64, 8192), "r": (1, 1024)},
)


class TriangularSolvePlugin(SpecListPlugin):
    """Banded + packed triangular solves (``tbtrs`` / ``tptrs``)."""

    def __init__(self):
        super().__init__(
            "contrib-triangular-solve",
            [TBTRS_SPEC, TPTRS_SPEC],
            version="1.0",
        )
