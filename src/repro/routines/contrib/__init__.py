"""Proof-of-diversity routine plugins shipped with the library.

These plugins exercise every degree of freedom of the
:class:`~repro.routines.plugin.RoutinePlugin` protocol that the builtin
BLAS-12 does not: batched kernels with a batch dimension
(:mod:`~repro.routines.contrib.batched`), a multi-routine family
(:mod:`~repro.routines.contrib.triangular`), a memory-bound sparse kernel
whose ``nnz`` is a first-class sampled dimension
(:mod:`~repro.routines.contrib.sparse`) and an FFT-shaped kernel with a
non-polynomial FLOPs formula (:mod:`~repro.routines.contrib.fft`).  All
four provide plugin ``cost_model`` hooks, so they are fully installable
and servable without the builtin analytic performance model.

They are *not* registered by default — the catalog's builtin set stays
the paper's BLAS-12.  Register them explicitly::

    from repro.routines import get_catalog
    from repro.routines.contrib import register

    register(get_catalog())

or point ``ADSALA_PLUGIN_PATH`` at this directory.
"""

from __future__ import annotations

from repro.routines.contrib.batched import BatchedGemmPlugin
from repro.routines.contrib.fft import FftPlugin
from repro.routines.contrib.sparse import SparsePlugin
from repro.routines.contrib.triangular import TriangularSolvePlugin

__all__ = [
    "BatchedGemmPlugin",
    "TriangularSolvePlugin",
    "SparsePlugin",
    "FftPlugin",
    "CONTRIB_PLUGINS",
    "register",
]

#: Every contrib plugin class, in registration order.
CONTRIB_PLUGINS = (
    BatchedGemmPlugin,
    TriangularSolvePlugin,
    SparsePlugin,
    FftPlugin,
)


def register(catalog) -> None:
    """Register every contrib plugin on ``catalog``."""
    for plugin_cls in CONTRIB_PLUGINS:
        catalog.register_plugin(plugin_cls())
