"""Batched small-GEMM plugin: many independent m x m x n products.

Vendor libraries expose this shape as ``gemm_batch`` (oneMKL) /
``gemmBatched`` (cuBLAS): ``b`` independent products too small to
parallelise individually, so the thread-count trade-off is entirely
different from one large GEMM — threads round-robin over batch items,
fork/join overhead grows with the team size, and the optimum tracks the
batch count rather than the matrix sizes.  That makes it a good stress of
the plugin feature path: the batch dimension ``b`` participates in the
sampled domain, the feature products and the footprint like any matrix
dimension.
"""

from __future__ import annotations

import numpy as np

from repro.routines.plugin import SpecListPlugin
from repro.routines.spec import make_routine_spec

__all__ = ["BatchedGemmPlugin", "GEMM_BATCH_SPEC"]

#: Fraction of per-core peak a small kernel reaches, as a function of m.
_EFFICIENCY_KNEE = 48.0
#: Fork/join cost per extra thread per batched call (seconds).
_LAUNCH_SECONDS = 2e-6


def _gemm_batch_cost(platform, precision, dims, threads):
    """Analytic cost of ``b`` independent m x m @ m x n products."""
    b = np.asarray(dims["b"], dtype=np.float64)
    m = np.asarray(dims["m"], dtype=np.float64)
    n = np.asarray(dims["n"], dtype=np.float64)
    t = np.asarray(threads, dtype=np.float64)
    width = 2.0 if precision == "s" else 1.0
    itemsize = 4.0 if precision == "s" else 8.0
    peak = platform.peak_gflops_per_core * 1e9 * width
    # Small kernels run far below peak; efficiency grows with m.
    efficiency = m / (m + _EFFICIENCY_KNEE)
    # Threads round-robin over batch items: the makespan is set by the
    # thread holding ceil(b / t) items, so extra threads beyond b idle.
    per_item = 2.0 * m * m * n / (peak * efficiency)
    kernel = np.ceil(b / t) * per_item
    bytes_moved = b * (m * m + 2.0 * m * n) * itemsize
    bandwidth = platform.total_memory_bandwidth_gbs * 1e9
    traffic = bytes_moved / (bandwidth * t / (t + 4.0))
    return kernel + traffic + _LAUNCH_SECONDS * t


GEMM_BATCH_SPEC = make_routine_spec(
    "gemm_batch",
    ("b", "m", "n"),
    [
        ("A", ("b", "m", "m"), "regular"),
        ("B", ("b", "m", "n"), "regular"),
        ("C", ("b", "m", "n"), "regular"),
    ],
    flops=lambda d: 2.0 * d["b"] * d["m"] * d["m"] * d["n"],
    cost_model=_gemm_batch_cost,
    dim_ranges={"b": (4, 4096), "m": (4, 256), "n": (4, 256)},
)


class BatchedGemmPlugin(SpecListPlugin):
    """Batched small-GEMM routine (``sgemm_batch`` / ``dgemm_batch``)."""

    def __init__(self):
        super().__init__(
            "contrib-batched-gemm", [GEMM_BATCH_SPEC], version="1.0"
        )
