"""The routine-plugin protocol.

A plugin is anything that can hand the catalog a batch of
:class:`~repro.routines.spec.RoutineSpec` objects under a (name, version)
identity.  The identity is recorded per routine in every saved bundle
(manifest schema v3), so a bundle knows which plugin must be present before
its models can be served again.

Three author-facing shapes are accepted by the discovery machinery:

* a :class:`RoutinePlugin` subclass or instance (``PLUGIN`` attribute of a
  plugin-directory module, or an ``adsala.routines`` entry point);
* a module-level ``ROUTINES`` list of specs (the catalog wraps it in a
  :class:`SpecListPlugin` named after the module);
* a module-level ``register(catalog)`` function for full control.
"""

from __future__ import annotations

from typing import Sequence

from repro.routines.spec import RoutineSpec

__all__ = ["RoutinePlugin", "SpecListPlugin"]


class RoutinePlugin:
    """Base class for routine providers.

    Subclasses set ``name``/``version`` (recorded as bundle provenance) and
    implement :meth:`routine_specs`.
    """

    #: Plugin identity recorded in bundle manifests (schema v3).
    name: str = "unnamed"
    version: str = "0"

    def routine_specs(self) -> Sequence[RoutineSpec]:
        """The routine specs this plugin provides."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, version={self.version!r})"


class SpecListPlugin(RoutinePlugin):
    """Adapter wrapping a plain list of specs in a plugin identity."""

    def __init__(self, name: str, specs: Sequence[RoutineSpec], version: str = "0"):
        self.name = str(name)
        self.version = str(version)
        self._specs = tuple(specs)

    def routine_specs(self) -> Sequence[RoutineSpec]:
        return self._specs
