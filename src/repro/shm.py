"""Shared-memory segment registry for cross-process model state.

The process shard backend (:mod:`repro.serving.procshard`) runs one
:class:`~repro.serving.engine.ServingEngine` per worker process.  Pickling
every shard's compiled model state into every worker would copy the arrays
N times; instead the parent exports each array **once** into a
:mod:`multiprocessing.shared_memory` segment and every worker maps the same
pages zero-copy.  This module is the bookkeeping around that:

* :meth:`SharedSegmentRegistry.export_array` copies one ndarray into a
  fresh segment and returns a tiny picklable :class:`SharedArrayRef`
  (segment name + dtype descr + shape) that rides the worker spawn args;
* :meth:`SharedSegmentRegistry.map_array` resolves a ref back into an
  ndarray view over the mapped segment — in the creating process it reuses
  the original mapping, in a worker it attaches by name;
* segment names are deterministic (``adsala-<pid>-<registry>-<seq>``), so
  operators can attribute ``/dev/shm`` entries to a serving process and
  tests can probe for leaks by name;
* cleanup is refcounted and idempotent: every consumer ``acquire()``s the
  registry and the last ``release()`` closes it; the creating registry
  unlinks its segments exactly once, attach-side registries only unmap.
  An :func:`atexit` hook closes anything still open so no segment outlives
  the process even on an unclean shutdown.

Python 3.11 registers **every** ``SharedMemory`` open — attaches included —
with the ``resource_tracker``.  Our workers are *spawned children* and
share the parent's tracker process, so the attach-side registration is a
set no-op (the creator already registered the name) and cleanup stays
where it belongs: the creator's ``unlink()`` unregisters exactly once, and
the shared tracker doubles as a crash-safety net that unlinks anything a
dying serving process leaves behind.  Do **not** unregister on attach —
with a shared tracker that would strip the creator's registration and
forfeit the leak protection (3.13's ``track=False`` is the clean fix).

Graceful degradation: when shared memory is unavailable (no ``/dev/shm``,
``PermissionError`` inside a restricted container), ``export_array`` falls
back to an *inline* ref that carries the array itself — workers then get a
private per-process copy through the ordinary spawn pickle.  One
``RuntimeWarning`` is emitted per registry; construction never fails.
"""

from __future__ import annotations

import atexit
import os
import threading
import warnings
import weakref
from dataclasses import dataclass, field
from multiprocessing.shared_memory import SharedMemory
from typing import Dict, List, Optional

import numpy as np
from numpy.lib.format import descr_to_dtype, dtype_to_descr

__all__ = ["SharedArrayRef", "SharedSegmentRegistry"]


@dataclass(frozen=True)
class SharedArrayRef:
    """Picklable pointer to one exported array.

    ``segment`` names the shared-memory block holding the data; ``dtype``
    is the ``numpy.lib.format`` descr (round-trips structured dtypes like
    the packed node layout) and ``shape`` the array geometry.  When shared
    memory was unavailable at export time ``segment`` is ``None`` and
    ``array`` carries the data inline — consumers then hold a private copy.
    """

    segment: Optional[str]
    dtype: object
    shape: tuple
    array: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def inline(self) -> bool:
        return self.segment is None


#: Registries not yet closed, for the atexit safety net.
_LIVE_REGISTRIES: "weakref.WeakSet[SharedSegmentRegistry]" = weakref.WeakSet()

#: Per-process counter giving each registry a deterministic namespace.
_REGISTRY_IDS = iter(range(1, 1 << 30))


def _close_live_registries() -> None:
    for registry in list(_LIVE_REGISTRIES):
        registry.close()


atexit.register(_close_live_registries)


class SharedSegmentRegistry:
    """Owns a family of shared-memory segments with refcounted teardown.

    One registry backs one model export (all routines of one frontend).
    The process that calls :meth:`export_array` is the *creator* and
    unlinks the segments at close; processes that only :meth:`map_array`
    merely detach.  ``close()`` is idempotent — ``n_closes`` counts how
    many calls actually released anything, so tests can assert
    exactly-once semantics.
    """

    def __init__(self) -> None:
        self._id = next(_REGISTRY_IDS)
        self._seq = 0
        self._lock = threading.Lock()
        self._owned: "Dict[str, SharedMemory]" = {}
        self._attached: "Dict[str, SharedMemory]" = {}
        self._exported: "Dict[int, SharedArrayRef]" = {}
        # The exported arrays themselves: dedup keys are id()s, which are
        # only stable while the object is alive.
        self._keepalive: list = []
        self._refcount = 0
        self._closed = False
        self.n_closes = 0
        self.shared_available = True
        _LIVE_REGISTRIES.add(self)

    # -- naming --------------------------------------------------------------------
    def _next_name(self) -> str:
        self._seq += 1
        return f"adsala-{os.getpid()}-{self._id}-{self._seq}"

    def segment_names(self) -> List[str]:
        """Names of every segment this registry created (creator side)."""
        with self._lock:
            return sorted(self._owned)

    def missing_segments(self) -> List[str]:
        """Owned segments whose names no longer resolve for new attachers.

        The creator's own mappings survive an unlink (the pages stay valid
        until the last unmap), but a *newly spawned* worker attaches by
        name and would fail — so the supervisor probes this before
        restarting a worker and re-exports the model state when segments
        died.  Probes ``/dev/shm`` directly where it exists (Linux), else
        attempts a throwaway attach.
        """
        with self._lock:
            names = sorted(self._owned)
        if not names:
            return []
        missing: List[str] = []
        if os.path.isdir("/dev/shm"):
            for name in names:
                if not os.path.exists(os.path.join("/dev/shm", name)):
                    missing.append(name)
            return missing
        for name in names:  # pragma: no cover - non-Linux fallback
            try:
                probe = SharedMemory(name=name)
            except FileNotFoundError:
                missing.append(name)
            else:
                probe.close()
        return missing

    # -- refcounting ---------------------------------------------------------------
    @property
    def refcount(self) -> int:
        with self._lock:
            return self._refcount

    def adopt_refcount(self, count: int) -> None:
        """Take over ``count`` outstanding acquires (registry hand-off).

        Used when a re-export replaces a registry whose segments died: the
        consumers that acquired the old registry will release the new one,
        so the new registry starts with the old one's refcount.
        """
        with self._lock:
            self._refcount = int(count)

    def acquire(self) -> "SharedSegmentRegistry":
        with self._lock:
            self._refcount += 1
        return self

    def release(self) -> None:
        """Drop one consumer; the last release closes the registry."""
        with self._lock:
            self._refcount = max(0, self._refcount - 1)
            last = self._refcount == 0
        if last:
            self.close()

    # -- export (creator side) -------------------------------------------------------
    def export_array(self, array: np.ndarray) -> SharedArrayRef:
        """Copy ``array`` into a fresh segment and return its ref.

        Exporting the same array object twice returns the same ref (the
        dedup is what lets N shards share one model export).  Falls back to
        an inline per-process-copy ref — with a :class:`RuntimeWarning`,
        once per registry — when shared memory cannot be created.
        """
        array = np.ascontiguousarray(array)
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedSegmentRegistry is closed")
            cached = self._exported.get(id(array))
            if cached is not None:
                return cached
            ref = self._export_locked(array)
            self._exported[id(array)] = ref
            self._keepalive.append(array)
            return ref

    def _export_locked(self, array: np.ndarray) -> SharedArrayRef:
        descr = dtype_to_descr(array.dtype)
        if self.shared_available:
            for _ in range(8):  # skip names leaked by a crashed predecessor
                name = self._next_name()
                try:
                    segment = SharedMemory(
                        name=name, create=True, size=max(1, array.nbytes)
                    )
                except FileExistsError:
                    continue
                except OSError as exc:  # PermissionError, ENOSPC, no /dev/shm
                    self.shared_available = False
                    warnings.warn(
                        "shared memory is unavailable "
                        f"({exc!r}); falling back to per-process model "
                        "copies — workers will not share pages",
                        RuntimeWarning,
                        stacklevel=4,
                    )
                    break
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=segment.buf
                )
                view[...] = array
                self._owned[segment.name.lstrip("/")] = segment
                return SharedArrayRef(
                    segment=segment.name.lstrip("/"),
                    dtype=descr,
                    shape=tuple(array.shape),
                )
        return SharedArrayRef(
            segment=None, dtype=descr, shape=tuple(array.shape), array=array
        )

    # -- mapping (any side) -----------------------------------------------------------
    def map_array(self, ref: SharedArrayRef) -> np.ndarray:
        """Resolve a ref into an ndarray over the shared pages.

        Inline refs return their per-process copy directly.  Mapped views
        stay valid until this registry closes (it keeps the ``SharedMemory``
        objects alive); callers must not outlive it.
        """
        if ref.inline:
            return ref.array
        dtype = descr_to_dtype(ref.dtype)
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedSegmentRegistry is closed")
            segment = self._owned.get(ref.segment) or self._attached.get(ref.segment)
            if segment is None:
                segment = SharedMemory(name=ref.segment)
                self._attached[ref.segment] = segment
            return np.ndarray(ref.shape, dtype=dtype, buffer=segment.buf)

    # -- teardown ----------------------------------------------------------------------
    def close(self) -> bool:
        """Unmap everything; the creator also unlinks.  Idempotent.

        Returns whether this call actually released anything (the first
        call does; later calls are no-ops).
        """
        with self._lock:
            if self._closed:
                return False
            self._closed = True
            owned = list(self._owned.values())
            attached = list(self._attached.values())
            self._owned.clear()
            self._attached.clear()
            self._exported.clear()
            self._keepalive.clear()
            self.n_closes += 1
        for segment in attached:
            try:
                segment.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        for segment in owned:
            try:
                segment.close()
            except OSError:  # pragma: no cover
                pass
            try:
                segment.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
        _LIVE_REGISTRIES.discard(self)
        return True

    @property
    def closed(self) -> bool:
        return self._closed
