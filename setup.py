"""Setup shim.

The execution environment is offline and has no ``wheel`` package, so PEP
517 editable installs (which need ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work with the legacy setuptools code path.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
