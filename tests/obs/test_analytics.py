"""Tests for the offline analytics aggregators and canned reports."""

import numpy as np
import pytest

from repro.obs.analytics import (
    Count,
    Max,
    Mean,
    Min,
    Quantile,
    Ratio,
    Sum,
    aggregate,
    capacity_report,
    error_trend,
    speedup_by_routine,
    supervision_summary,
    time_window,
)


class TestAggregators:
    def test_count_with_and_without_predicate(self):
        rows = [{"x": 1}, {"x": 2}, {"x": 3}]
        out = aggregate(rows, lambda r: "all", {
            "n": Count(), "odd": Count(lambda r: r["x"] % 2 == 1),
        })
        assert out["all"] == {"n": 3, "odd": 2}

    def test_numeric_aggregators_skip_unusable_values(self):
        rows = [
            {"t": 1.0}, {"t": 3.0}, {"t": None}, {"t": "oops"},
            {"t": True}, {"t": float("nan")}, {"other": 9},
        ]
        out = aggregate(rows, lambda r: 0, {
            "sum": Sum("t"), "mean": Mean("t"), "min": Min("t"), "max": Max("t"),
        })[0]
        assert out["sum"] == pytest.approx(4.0)
        assert out["mean"] == pytest.approx(2.0)
        assert out["min"] == 1.0 and out["max"] == 3.0

    def test_empty_group_results_are_none(self):
        out = aggregate([{"t": None}], lambda r: 0, {
            "sum": Sum("t"), "q": Quantile("t", 0.5), "r": Ratio(Sum("t"), Count()),
        })[0]
        assert out == {"sum": None, "q": None, "r": None}

    def test_quantile_matches_numpy_on_spiky_stream(self):
        rng = np.random.default_rng(5)
        values = rng.random(501)
        values[::50] = 1e6  # spikes
        rows = [{"t": float(v)} for v in values]
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            out = aggregate(rows, lambda r: 0, {"q": Quantile("t", q)})[0]["q"]
            assert out == pytest.approx(float(np.quantile(values, q)), rel=1e-12)

    def test_quantile_validates_q(self):
        with pytest.raises(ValueError):
            Quantile("t", 1.5)

    def test_ratio_zero_denominator_is_none(self):
        out = aggregate([{"a": 1.0, "b": 0.0}], lambda r: 0, {
            "r": Ratio(Sum("a"), Sum("b")),
        })[0]
        assert out["r"] is None

    def test_prototypes_are_not_shared_between_groups(self):
        rows = [{"g": "a", "t": 1.0}, {"g": "b", "t": 5.0}]
        out = aggregate(rows, "g", {"sum": Sum("t")})
        assert out["a"]["sum"] == 1.0 and out["b"]["sum"] == 5.0


class TestAggregateKeys:
    def test_by_field_name_and_sequence(self):
        rows = [
            {"routine": "dgemm", "shard": 0, "t": 1.0},
            {"routine": "dgemm", "shard": 1, "t": 2.0},
            {"routine": "dsyrk", "shard": 0, "t": 4.0},
        ]
        by_routine = aggregate(rows, "routine", {"sum": Sum("t")})
        assert by_routine["dgemm"]["sum"] == pytest.approx(3.0)
        by_pair = aggregate(rows, ("routine", "shard"), {"n": Count()})
        assert by_pair[("dgemm", 1)]["n"] == 1

    def test_key_error_skips_row(self):
        def key(row):
            return row["missing"]

        assert aggregate([{"x": 1}], key, {"n": Count()}) == {}

    def test_groups_in_first_seen_order(self):
        rows = [{"g": "z"}, {"g": "a"}, {"g": "z"}]
        assert list(aggregate(rows, "g", {"n": Count()})) == ["z", "a"]


class TestTimeWindow:
    def test_floors_to_window_start(self):
        key = time_window(10.0)
        assert key({"ts": 1000.0}) == 1000.0
        assert key({"ts": 1009.99}) == 1000.0
        assert key({"ts": 1010.0}) == 1010.0

    def test_missing_timestamp_raises_keyerror(self):
        with pytest.raises(KeyError):
            time_window(10.0)({"no_ts": 1})

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            time_window(0.0)


def _plan(routine, predicted, baseline, **extra):
    row = {
        "event": "plan", "routine": routine, "ts": extra.pop("ts", 100.0),
        "predicted_time": predicted, "baseline_time": baseline,
        "from_cache": False, "fallback_from": None,
    }
    row.update(extra)
    return row


def _obs(routine, predicted, observed, baseline=None, **extra):
    row = {
        "event": "observation", "routine": routine, "ts": extra.pop("ts", 100.0),
        "predicted_time": predicted, "observed_time": observed,
        "baseline_time": baseline,
    }
    row.update(extra)
    return row


class TestSpeedupByRoutine:
    def test_observed_basis_preferred(self):
        rows = [
            _plan("dgemm", 1.0, 3.0, from_cache=True),
            _plan("dgemm", 1.0, 3.0, fallback_from="model"),
            _obs("dgemm", 1.0, 2.0, baseline=6.0),
            _obs("dgemm", 1.0, 2.0, baseline=2.0),
        ]
        report = speedup_by_routine(rows)
        entry = report["dgemm"]
        assert entry["basis"] == "observed"
        assert entry["speedup"] == pytest.approx((6.0 + 2.0) / (2.0 + 2.0))
        assert entry["plans"] == 2 and entry["observations"] == 2
        assert entry["cache_hits"] == 1 and entry["fallbacks"] == 1
        assert entry["baseline_s"] == pytest.approx(8.0)
        assert entry["served_s"] == pytest.approx(4.0)

    def test_predicted_basis_without_observations(self):
        rows = [_plan("dsyrk", 1.0, 4.0, threads=2), _plan("dsyrk", 1.0, 2.0, threads=4)]
        entry = speedup_by_routine(rows)["dsyrk"]
        assert entry["basis"] == "predicted"
        assert entry["speedup"] == pytest.approx(6.0 / 2.0)
        assert entry["mean_threads"] == pytest.approx(3.0)
        assert entry["observations"] == 0

    def test_routines_do_not_mix(self):
        rows = [
            _obs("dgemm", 1.0, 1.0, baseline=2.0),
            _obs("dsyrk", 1.0, 1.0, baseline=8.0),
        ]
        report = speedup_by_routine(rows)
        assert report["dgemm"]["speedup"] == pytest.approx(2.0)
        assert report["dsyrk"]["speedup"] == pytest.approx(8.0)


class TestErrorTrend:
    def test_error_definition_and_grouping(self):
        rows = [
            _plan("dgemm", 1.0, 2.0, request_id=1, version=1),
            _obs("dgemm", 1.0, 2.0, request_id=1),  # |2-1|/2 = 0.5
            _obs("dgemm", 1.0, 1.0, request_id=1),  # 0.0
        ]
        trend = error_trend(rows)
        entry = trend[("dgemm", 1)]
        assert entry["observations"] == 2
        assert entry["mean_abs_rel_error"] == pytest.approx(0.25)
        assert entry["max_abs_rel_error"] == pytest.approx(0.5)

    def test_versions_resolved_per_request(self):
        rows = [
            _plan("dgemm", 1.0, 2.0, request_id=1, version=1),
            _plan("dgemm", 1.0, 2.0, request_id=2, version=2),
            _obs("dgemm", 1.0, 2.0, request_id=1),
            _obs("dgemm", 1.0, 4.0, request_id=2),
        ]
        trend = error_trend(rows)
        assert ("dgemm", 1) in trend and ("dgemm", 2) in trend
        assert trend[("dgemm", 1)]["mean_abs_rel_error"] == pytest.approx(0.5)
        assert trend[("dgemm", 2)]["mean_abs_rel_error"] == pytest.approx(0.75)

    def test_single_version_run_inherits_version(self):
        # The CLI's observation rows carry no request_id; when every plan
        # was served from one bundle version the observations inherit it.
        rows = [
            _plan("dgemm", 1.0, 2.0, version=3),
            _obs("dgemm", 1.0, 2.0),
        ]
        assert ("dgemm", 3) in error_trend(rows)

    def test_invalid_observations_dropped(self):
        rows = [
            _obs("dgemm", 1.0, 0.0),  # non-positive observed
            _obs("dgemm", None, 1.0),
        ]
        assert error_trend(rows) == {}

    def test_window_component(self):
        rows = [
            _obs("dgemm", 1.0, 2.0, ts=100.0),
            _obs("dgemm", 1.0, 2.0, ts=112.0),
        ]
        trend = error_trend(rows, window=10.0)
        assert ("dgemm", None, 100.0) in trend
        assert ("dgemm", None, 110.0) in trend


class TestCapacityReport:
    def test_rates_shed_and_headroom(self):
        rows = []
        for offset in range(4):  # window A: 4 plans, no shed
            rows.append(_plan("dgemm", 1.0, 2.0, ts=100.0 + offset * 0.2))
        for offset in range(6):  # window B: 6 plans + 2 shed
            rows.append(_plan("dgemm", 1.0, 2.0, ts=101.0 + offset * 0.1))
        rows.append({"event": "shed", "routine": "dgemm", "ts": 101.6, "reason": "queue_full"})
        rows.append({"event": "shed", "routine": "dgemm", "ts": 101.7, "reason": "deadline"})
        report = capacity_report(rows, window=1.0)
        windows = {w["window_start"]: w for w in report["windows"]}
        assert report["peak_clean_rate"] == pytest.approx(4.0)
        clean = windows[100.0]
        assert clean["shed"] == 0 and clean["headroom"] == pytest.approx(0.0)
        hot = windows[101.0]
        assert hot["request_rate"] == pytest.approx(8.0)
        assert hot["served_rate"] == pytest.approx(6.0)
        assert hot["shed_fraction"] == pytest.approx(0.25)
        assert hot["headroom"] == pytest.approx(1.0 - 8.0 / 4.0)  # negative: over frontier

    def test_no_clean_window_gives_none_headroom(self):
        rows = [
            _plan("dgemm", 1.0, 2.0, ts=100.0),
            {"event": "shed", "routine": "dgemm", "ts": 100.1, "reason": "queue_full"},
        ]
        report = capacity_report(rows)
        assert report["peak_clean_rate"] is None
        assert report["windows"][0]["headroom"] is None


class TestSupervisionSummary:
    def test_last_run_end_wins(self):
        rows = [
            {"event": "run_end", "ts": 1.0, "stats": {"requests": 1}},
            {
                "event": "run_end", "ts": 2.0,
                "stats": {
                    "requests": 300,
                    "supervision": {"restarts": 2, "failures": 2},
                    "admission": {"submitted": 300, "shed": 0},
                },
            },
        ]
        summary = supervision_summary(rows)
        assert summary["requests"] == 300
        assert summary["supervision"]["restarts"] == 2
        assert summary["admission"]["submitted"] == 300

    def test_missing_run_end_is_none(self):
        assert supervision_summary([_plan("dgemm", 1.0, 2.0)]) is None
