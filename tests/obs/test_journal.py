"""Tests for the JSONL helpers and the rotating run journal."""

import json

import pytest

from repro.obs.journal import (
    RunJournal,
    append_jsonl,
    journal_segments,
    read_journal,
    read_jsonl,
)


class TestJsonlHelpers:
    def test_append_then_read_roundtrip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl(path, {"a": 1})
        append_jsonl(path, {"b": 2})
        rows = list(read_jsonl(path))
        assert rows == [(1, {"a": 1}), (2, {"b": 2})]

    def test_append_heals_missing_trailing_newline(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"ok": 1}\n{"torn"')  # crashed writer mid-line
        append_jsonl(path, {"ok": 2})
        text = path.read_text()
        assert '{"torn"\n' in text  # partial line isolated, not glued onto
        with pytest.warns(RuntimeWarning, match="skipping malformed"):
            rows = [row for _, row in read_jsonl(path)]
        assert rows == [{"ok": 1}, {"ok": 2}]

    def test_read_strict_raises_with_position(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=r"log\.jsonl:2"):
            list(read_jsonl(path, strict=True))

    def test_non_object_lines_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.warns(RuntimeWarning, match="not a JSON object"):
            assert list(read_jsonl(path)) == []

    def test_blank_lines_skipped_silently(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('\n{"ok": 1}\n\n')
        assert [row for _, row in read_jsonl(path)] == [{"ok": 1}]


class TestJournalSegments:
    def test_orders_oldest_first(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        for suffix in ("", ".1", ".2", ".10"):
            (tmp_path / ("journal.jsonl" + suffix)).write_text("")
        (tmp_path / "journal.jsonl.bak").write_text("")  # ignored
        names = [p.name for p in journal_segments(path)]
        assert names == [
            "journal.jsonl.10", "journal.jsonl.2", "journal.jsonl.1", "journal.jsonl",
        ]

    def test_missing_journal_is_empty(self, tmp_path):
        assert journal_segments(tmp_path / "absent.jsonl") == []


class TestRunJournal:
    def test_parameter_validation(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with pytest.raises(ValueError):
            RunJournal(path, max_bytes=-1)
        with pytest.raises(ValueError):
            RunJournal(path, max_segments=0)
        with pytest.raises(ValueError):
            RunJournal(path, flush_every=0)

    def test_rows_are_stamped_and_flushed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.append("custom", answer=42)
            # flush_every=1: the row is on disk before close.
            row = json.loads(path.read_text())
        assert row["event"] == "custom" and row["answer"] == 42
        assert row["ts"] > 1e9 and row["mono"] >= 0.0
        assert journal.n_rows == 1

    def test_flush_every_buffers_until_flush(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path, flush_every=1000)
        journal.append("plan")
        assert path.read_text() == ""  # still buffered
        journal.flush()
        assert json.loads(path.read_text())["event"] == "plan"
        journal.close()

    def test_append_after_close_raises(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            journal.append("late")

    def test_heals_partial_tail_from_previous_run(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event": "plan"}\n{"torn')
        with RunJournal(path) as journal:
            journal.append("plan", n=2)
        with pytest.warns(RuntimeWarning):
            rows = list(read_journal(path))
        assert [row["event"] for row in rows] == ["plan", "plan"]
        assert rows[1]["n"] == 2

    def test_rotation_bounds_live_segment_and_drops_oldest(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path, max_bytes=200, max_segments=2) as journal:
            for index in range(40):
                journal.append("plan", index=index)
        assert journal.n_rotations > 2  # enough churn to drop segments
        segments = journal_segments(path)
        assert [p.name for p in segments] == ["j.jsonl.2", "j.jsonl.1", "j.jsonl"]
        assert all(p.stat().st_size <= 200 for p in segments)
        # Replay is oldest-first and contiguous: the surviving rows are the
        # most recent ones, in order.
        indices = [row["index"] for row in read_journal(path)]
        assert indices == list(range(indices[0], 40))

    def test_rotation_disabled_by_default(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            for index in range(50):
                journal.append("plan", index=index)
        assert journal.n_rotations == 0
        assert journal_segments(path) == [path]

    def test_reader_survives_corrupt_middle_segment(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path, max_bytes=120, max_segments=3) as journal:
            for index in range(12):
                journal.append("plan", index=index)
        rotated = journal_segments(path)[0]
        with open(rotated, "a") as handle:
            handle.write("garbage not json\n")
        with pytest.warns(RuntimeWarning, match="skipping malformed"):
            rows = list(read_journal(path))
        assert [row["event"] for row in rows].count("plan") == len(rows)
        with pytest.raises(ValueError):
            list(read_journal(path, strict=True))

    def test_fast_serializer_matches_json(self, tmp_path):
        # The hot plan/observation events go through %-templates instead
        # of json.dumps; the result must still be plain JSON with the
        # exact same values.
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record_plan(
                'dg"emm', {"m": 64, "n": 32}, threads=4,
                predicted_time=1.5e-3, baseline_time=None, from_cache=False,
                fallback_from="heuristic", policy="model",
                shard=0, request_id=11, version=None,
            )
            journal.record_observation(
                "dsyrk", threads=2, predicted_time=0.1,
                observed_time=0.30000000000000004, baseline_time=0.2,
            )
        rows = list(read_journal(path))
        plan, observation = rows
        assert plan["routine"] == 'dg"emm'  # quoting survives the template
        assert plan["dims"] == {"m": 64, "n": 32}
        assert plan["baseline_time"] is None and plan["from_cache"] is False
        assert plan["fallback_from"] == "heuristic" and plan["shard"] == 0
        assert plan["version"] is None
        # Floats roundtrip exactly (repr-based formatting).
        assert observation["observed_time"] == 0.30000000000000004
        assert observation["shard"] is None

    def test_async_writer_drains_on_flush_and_close(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path, async_writer=True)
        for index in range(100):
            journal.record_plan(
                "dgemm", {"m": index}, threads=2, predicted_time=1e-3,
                request_id=index,
            )
        journal.flush()  # barrier: everything queued is on disk now
        on_disk = [row["request_id"] for row in read_journal(path)
                   if row["event"] == "plan"]
        assert on_disk == list(range(100))
        journal.append("custom", tail=True)
        journal.close()
        rows = list(read_journal(path))
        assert rows[-1]["tail"] is True
        assert journal.n_rows == 101
        with pytest.raises(ValueError, match="closed"):
            journal.append("late")

    def test_async_writer_rotates_and_orders(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path, max_bytes=400, max_segments=2,
                        async_writer=True) as journal:
            for index in range(60):
                journal.append("plan", index=index)
        assert journal.n_rotations > 0
        indices = [row["index"] for row in read_journal(path)]
        assert indices == list(range(indices[0], 60))

    def test_async_writer_concurrent_appends(self, tmp_path):
        import threading

        path = tmp_path / "j.jsonl"
        with RunJournal(path, async_writer=True) as journal:
            def worker(base):
                for index in range(50):
                    journal.append("plan", index=base + index)

            threads = [threading.Thread(target=worker, args=(base * 50,))
                       for base in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        indices = sorted(row["index"] for row in read_journal(path))
        assert indices == list(range(200))
        assert journal.n_rows == 200

    def test_record_schemas(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.record_run_start(bundle="/b", shards=2)
            journal.record_plan(
                "dgemm", {"m": 64, "k": 64, "n": 64}, threads=4,
                predicted_time=1e-3, baseline_time=2e-3, from_cache=True,
                shard=1, request_id=7, version=3,
            )
            journal.record_observation(
                "dgemm", threads=4, predicted_time=1e-3, observed_time=1.5e-3,
                baseline_time=2e-3, request_id=7,
            )
            journal.record_shed("dsyrk", "queue_full", dims={"n": 32, "k": 32})
            journal.record_run_end(stats={"requests": 1}, plans=1)
        rows = list(read_journal(path))
        events = [row["event"] for row in rows]
        assert events == ["run_start", "plan", "observation", "shed", "run_end"]
        plan = rows[1]
        assert plan["routine"] == "dgemm" and plan["threads"] == 4
        assert plan["from_cache"] is True and plan["version"] == 3
        assert plan["shard"] == 1 and plan["request_id"] == 7
        observation = rows[2]
        assert observation["observed_time"] == pytest.approx(1.5e-3)
        assert rows[3]["reason"] == "queue_full"
        assert rows[4]["stats"] == {"requests": 1}
        # Monotonic stamps order the rows within this process.
        monos = [row["mono"] for row in rows]
        assert monos == sorted(monos)
