"""Fixtures for the observability tests.

The obs tests get their own trained bundle (like the serving tests do)
so scraping/serving against it cannot perturb cache-state assertions
made elsewhere in the suite against the shared ``small_bundle``.
"""

from __future__ import annotations

import pytest

from repro.core.install import install_adsala
from repro.core.persistence import save_bundle


@pytest.fixture(scope="session")
def obs_bundle(laptop):
    """A two-routine installation reserved for the observability tests."""
    return install_adsala(
        platform=laptop,
        routines=["dgemm", "dsyrk"],
        n_samples=10,
        threads_per_shape=4,
        n_test_shapes=4,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=3,
    )


@pytest.fixture()
def obs_bundle_dir(obs_bundle, tmp_path):
    """The obs bundle saved to disk (for hot-reload and registry tests)."""
    return save_bundle(obs_bundle, tmp_path / "bundle", bundle_version=1)
