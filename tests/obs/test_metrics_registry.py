"""Tests for the metrics registry, primitives and exposition endpoint."""

import json
import math
import re
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    BucketHistogram,
    Counter,
    Gauge,
    MetricsRegistry,
    MetricsServer,
    merge_histogram_snapshots,
    now_timestamps,
)


class TestBucketHistogram:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            BucketHistogram(())
        with pytest.raises(ValueError):
            BucketHistogram((1.0, 1.0))
        with pytest.raises(ValueError):
            BucketHistogram((2.0, 1.0))
        with pytest.raises(ValueError):
            BucketHistogram((1.0, math.inf))

    def test_bucket_assignment_le_inclusive(self):
        # Prometheus le is inclusive: an observation exactly at a bound
        # belongs to that bound's bucket.
        hist = BucketHistogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0):
            hist.observe(value)
        assert hist.counts == [2, 2, 2, 1]
        assert hist.cumulative() == [2, 4, 6, 7]
        assert hist.count == 7
        assert hist.sum == pytest.approx(21.0)

    def test_cumulative_is_monotone(self):
        rng = np.random.default_rng(0)
        hist = BucketHistogram()
        for value in rng.exponential(0.01, size=500):
            hist.observe(value)
        cumulative = hist.cumulative()
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))
        assert cumulative[-1] == hist.count == 500

    def test_quantile_interpolates_within_bucket(self):
        hist = BucketHistogram((1.0, 2.0))
        for _ in range(10):
            hist.observe(1.5)  # all mass in (1, 2]
        # Median rank is halfway through the only occupied bucket.
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(0.0) == pytest.approx(1.0)
        assert hist.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_first_bucket_interpolates_from_zero(self):
        hist = BucketHistogram((1.0, 2.0))
        hist.observe(0.25)
        hist.observe(0.75)
        assert hist.quantile(0.5) == pytest.approx(0.5)

    def test_quantile_edge_cases(self):
        hist = BucketHistogram((1.0, 2.0))
        assert hist.quantile(0.5) == 0.0  # empty
        hist.observe(100.0)  # overflow bucket
        assert hist.quantile(0.99) == 2.0  # cannot resolve past last bound
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_merge_snapshot_sums_everything(self):
        a = BucketHistogram((1.0, 2.0))
        b = BucketHistogram((1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge_snapshot(b.snapshot())
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.sum == pytest.approx(11.0)

    def test_merge_rejects_different_buckets(self):
        a = BucketHistogram((1.0, 2.0))
        b = BucketHistogram((1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot())

    def test_merge_histogram_snapshots_helper(self):
        parts = []
        for seed in range(3):
            hist = BucketHistogram()
            rng = np.random.default_rng(seed)
            for value in rng.exponential(0.005, size=50):
                hist.observe(value)
            parts.append(hist.snapshot())
        merged = merge_histogram_snapshots(parts)
        assert merged["count"] == 150
        assert merged["sum"] == pytest.approx(sum(p["sum"] for p in parts))
        assert merged["bounds"] == list(DEFAULT_LATENCY_BUCKETS)


class TestPrimitives:
    def test_counter_is_monotone_under_inc(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_counter_set_total_allows_reset(self):
        # A collected value below the current one is a Prometheus counter
        # reset (a restarted shard), not an error.
        counter = Counter()
        counter.set_total(100.0)
        counter.set_total(3.0)
        assert counter.value == 3.0

    def test_gauge_goes_anywhere(self):
        gauge = Gauge()
        gauge.set(5.0)
        gauge.dec(7.0)
        gauge.inc(1.0)
        assert gauge.value == pytest.approx(-1.0)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", "help")
        second = registry.counter("requests_total", "help")
        assert first is second
        assert first.labels() is second.labels()

    def test_re_registration_with_different_shape_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing_total")
        with pytest.raises(ValueError):
            registry.gauge("thing_total")
        registry.gauge("depth", labels=("shard",))
        with pytest.raises(ValueError):
            registry.gauge("depth", labels=("routine",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("2bad")
        with pytest.raises(ValueError):
            registry.counter("has space")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels=("__reserved",))
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels=("bad-label",))

    def test_labels_must_match_family(self):
        registry = MetricsRegistry()
        family = registry.counter("plans_total", labels=("routine",))
        with pytest.raises(ValueError):
            family.labels(shard="0")
        assert family.labels(routine="dgemm") is family.labels(routine="dgemm")
        assert family.labels(routine="dgemm") is not family.labels(routine="dsyrk")

    def test_render_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("adsala_plans_total", "Plans served", ("routine",)).labels(
            routine="dgemm"
        ).inc(3)
        registry.gauge("adsala_pending", "Queue depth").labels().set(2.0)
        text = registry.render_prometheus()
        assert "# HELP adsala_plans_total Plans served\n" in text
        assert "# TYPE adsala_plans_total counter\n" in text
        assert 'adsala_plans_total{routine="dgemm"} 3\n' in text
        assert "# TYPE adsala_pending gauge\n" in text
        assert "adsala_pending 2\n" in text  # integral floats collapse
        assert text.endswith("\n")

    def test_render_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.set_gauge("weird", 1.0, label='a"b\\c\nd')
        text = registry.render_prometheus()
        assert 'label="a\\"b\\\\c\\nd"' in text

    def test_render_histogram_expansion(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "latency_seconds", "Latency", ("routine",), buckets=(0.5, 1.0)
        )
        child = family.labels(routine="dgemm")
        for value in (0.1, 0.7, 5.0):
            child.observe(value)
        text = registry.render_prometheus()
        assert 'latency_seconds_bucket{routine="dgemm",le="0.5"} 1\n' in text
        assert 'latency_seconds_bucket{routine="dgemm",le="1"} 2\n' in text
        assert 'latency_seconds_bucket{routine="dgemm",le="+Inf"} 3\n' in text
        assert 'latency_seconds_count{routine="dgemm"} 3\n' in text
        sum_lines = [
            line for line in text.splitlines()
            if line.startswith('latency_seconds_sum{routine="dgemm"} ')
        ]
        assert len(sum_lines) == 1
        assert float(sum_lines[0].rsplit(" ", 1)[1]) == pytest.approx(5.8)

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.set_counter("adsala_requests_total", 10)
        registry.histogram("lat", buckets=(1.0,)).labels().observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["adsala_requests_total"]["type"] == "counter"
        assert snapshot["adsala_requests_total"]["series"][0]["value"] == 10
        assert snapshot["lat"]["series"][0]["counts"] == [1, 0]

    def test_set_counter_and_set_gauge_convenience(self):
        registry = MetricsRegistry()
        registry.set_counter("c_total", 4, routine="dgemm")
        registry.set_counter("c_total", 7, routine="dgemm")
        registry.set_gauge("g", 1.25)
        snapshot = registry.snapshot()
        assert snapshot["c_total"]["series"][0]["value"] == 7
        assert snapshot["g"]["series"][0]["value"] == 1.25

    def test_clear_empties_registry(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1.0)
        registry.clear()
        assert registry.snapshot() == {}
        assert registry.render_prometheus() == "\n"


class TestMetricsServer:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.read().decode(), response.headers.get("Content-Type")

    def test_serves_all_routes_on_ephemeral_port(self):
        registry = MetricsRegistry()
        registry.set_counter("adsala_requests_total", 5)
        with MetricsServer(registry, port=0) as server:
            assert server.port not in (None, 0)
            base = f"http://127.0.0.1:{server.port}"
            body, content_type = self._get(base + "/metrics")
            assert "adsala_requests_total 5" in body
            assert content_type == "text/plain; version=0.0.4; charset=utf-8"
            body, content_type = self._get(base + "/metrics.json")
            assert content_type == "application/json"
            doc = json.loads(body)
            assert doc["adsala_requests_total"]["series"][0]["value"] == 5
            body, _ = self._get(base + "/healthz")
            assert body == "ok\n"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(base + "/nope")
            assert excinfo.value.code == 404
        assert server.port is None  # stopped

    def test_collector_runs_before_every_scrape(self):
        registry = MetricsRegistry()
        scrapes = []

        def collector():
            scrapes.append(True)
            registry.set_gauge("adsala_scrapes", float(len(scrapes)))

        with MetricsServer(registry, collector=collector) as server:
            first, _ = self._get(server.url)
            second, _ = self._get(server.url)
        assert "adsala_scrapes 1" in first
        assert "adsala_scrapes 2" in second

    def test_start_stop_idempotent(self):
        server = MetricsServer(MetricsRegistry())
        server.start()
        port = server.port
        server.start()
        assert server.port == port
        server.stop()
        server.stop()
        assert server.url is None


_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"  # labels
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf)|NaN)$"  # value
)


def assert_parseable_prometheus(text):
    """Every non-comment line must match the exposition grammar."""
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _LINE_RE.match(line), f"unparseable exposition line: {line!r}"


class TestExpositionGrammar:
    def test_every_rendered_line_parses(self):
        registry = MetricsRegistry()
        registry.set_counter("a_total", 3, routine="dgemm", shard="0")
        registry.set_gauge("b", -1.5)
        registry.set_gauge("c", 2e-07)
        registry.histogram("d_seconds", "h", ("routine",)).labels(
            routine="dsyrk"
        ).observe(0.003)
        assert_parseable_prometheus(registry.render_prometheus())


def test_now_timestamps_keys():
    stamps = now_timestamps()
    assert set(stamps) == {"wall_time", "monotonic_time"}
    assert stamps["wall_time"] > 1e9
    assert stamps["monotonic_time"] >= 0.0
