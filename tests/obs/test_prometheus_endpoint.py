"""End-to-end tests for the Prometheus exposition over a live serve.

Satellite coverage for the exposition contract: scrape the endpoint while
an engine/frontend is actually serving, parse **every** line of the body,
assert the required series and labels exist, check histogram bucket
counts are cumulative-monotone, and scrape again after a hot reload.
"""

import re
import urllib.request

import pytest

from repro.adaptive.promote import ADAPTATION_LOG_FILE, AdaptationLog
from repro.obs.collectors import StatsCollector
from repro.obs.metrics import MetricsRegistry, MetricsServer
from repro.serving.engine import ServingEngine
from repro.serving.frontend import ShardedFrontend
from repro.serving.registry import BundleHandle
from repro.serving.workload import generate_workload

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf)|NaN)$"
)
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def scrape(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        assert response.headers["Content-Type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        return response.read().decode()


def parse_exposition(text):
    """Parse every line; returns ``{name: [(labels_dict, value), ...]}``.

    Raises (via assert) on any line that does not match the exposition
    grammar — the whole point of the test.
    """
    assert text.endswith("\n")
    samples = {}
    types = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            assert line.startswith("# HELP "), f"unknown comment line: {line!r}"
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        labels = {}
        if match.group("labels"):
            for part in match.group("labels").split(","):
                label_match = _LABEL_RE.match(part)
                assert label_match, f"unparseable label in line: {line!r}"
                labels[label_match.group("key")] = label_match.group("value")
        value = match.group("value")
        numeric = float("inf") if value == "+Inf" else float(value)
        samples.setdefault(match.group("name"), []).append((labels, numeric))
    return samples, types


def assert_histogram_contract(samples, name):
    """Bucket counts monotone in ``le`` and ``le="+Inf"`` equals _count."""
    buckets = samples[f"{name}_bucket"]
    counts = dict()
    for labels, value in samples[f"{name}_count"]:
        counts[tuple(sorted(labels.items()))] = value
    series = {}
    for labels, value in buckets:
        le = float("inf") if labels["le"] == "+Inf" else float(labels["le"])
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        series.setdefault(key, []).append((le, value))
    assert series, f"no {name}_bucket samples"
    for key, entries in series.items():
        entries.sort()
        values = [v for _, v in entries]
        assert all(b >= a for a, b in zip(values, values[1:])), (
            f"{name} buckets not monotone for {key}: {entries}"
        )
        assert entries[-1][0] == float("inf")
        assert entries[-1][1] == counts[key]


REQUIRED_ENGINE_SERIES = (
    "adsala_requests_total",
    "adsala_batches_total",
    "adsala_plans_total",
    "adsala_plan_latency_seconds_bucket",
    "adsala_plan_latency_seconds_count",
    "adsala_plan_latency_seconds_sum",
    "adsala_prediction_abs_rel_error",
    "adsala_predictor_cache_hits_total",
    "adsala_timing_cache_hits_total",
    "adsala_batch_size_limit",
    "adsala_stats_wall_time_seconds",
)

REQUIRED_FRONTEND_SERIES = REQUIRED_ENGINE_SERIES + (
    "adsala_shards",
    "adsala_inflight",
    "adsala_admission_capacity",
    "adsala_submitted_total",
    "adsala_completed_total",
    "adsala_shed_total",
    "adsala_shards_healthy",
    "adsala_shard_restarts_total",
    "adsala_shard_failures_total",
)


def _serve_some(target, n_requests=32, seed=21, observe=True):
    workload = generate_workload(["dgemm", "dsyrk"], n_requests, seed=seed)
    plans = target.plan_many(request.as_tuple() for request in workload)
    if observe:
        for plan in plans:
            target.record_observation(plan, plan.predicted_time * 1.1)
    return plans


class TestEngineScrape:
    def test_live_scrape_required_series_and_histogram_contract(self, obs_bundle):
        engine = ServingEngine(obs_bundle, max_batch_size=8)
        registry = MetricsRegistry()
        collector = StatsCollector(registry, stats_fn=engine.stats)
        with MetricsServer(registry, collector=collector) as server:
            _serve_some(engine)
            samples, types = parse_exposition(scrape(server.url))
        for name in REQUIRED_ENGINE_SERIES:
            assert name in samples, f"missing required series {name}"
        assert types["adsala_requests_total"] == "counter"
        assert types["adsala_plan_latency_seconds"] == "histogram"
        assert types["adsala_pending"] == "gauge"
        # Per-routine labels on the routine-level series.
        routines = {labels["routine"] for labels, _ in samples["adsala_plans_total"]}
        assert routines == {"dgemm", "dsyrk"}
        stats = {labels["stat"] for labels, _ in samples["adsala_prediction_abs_rel_error"]}
        assert {"mean", "p50", "p99", "max"} <= stats
        assert_histogram_contract(samples, "adsala_plan_latency_seconds")
        # The mirrored counters agree with the live stats().
        live = engine.stats()
        assert samples["adsala_requests_total"][0][1] == live["requests"]
        assert collector.n_failures == 0

    def test_second_scrape_consistent_after_hot_reload(self, obs_bundle_dir):
        engine = ServingEngine(BundleHandle(obs_bundle_dir), max_batch_size=8)
        registry = MetricsRegistry()
        collector = StatsCollector(
            registry, stats_fn=engine.stats, bundle_dir=obs_bundle_dir
        )
        with MetricsServer(registry, collector=collector) as server:
            _serve_some(engine, seed=1)
            first, _ = parse_exposition(scrape(server.url))
            assert engine.reload_source(force=True)
            _serve_some(engine, seed=2)
            second, types = parse_exposition(scrape(server.url))
        # Same families, counters monotone across the reload (telemetry
        # survives a reload; only source caches are invalidated).
        assert set(first) <= set(second)
        for name in ("adsala_requests_total", "adsala_batches_total"):
            assert second[name][0][1] > first[name][0][1]
        for labels, value in second["adsala_plans_total"]:
            before = [v for lb, v in first["adsala_plans_total"] if lb == labels]
            assert value >= before[0]
        assert_histogram_contract(second, "adsala_plan_latency_seconds")
        assert collector.n_failures == 0

    def test_adaptation_series_from_audit_trail(self, obs_bundle_dir):
        log = AdaptationLog(obs_bundle_dir / ADAPTATION_LOG_FILE)
        log.append("drift_detected", routine="dgemm", state="drifted")
        log.append("promoted", routine="dgemm", state="promoted")
        engine = ServingEngine(BundleHandle(obs_bundle_dir))
        registry = MetricsRegistry()
        collector = StatsCollector(
            registry, stats_fn=engine.stats, bundle_dir=obs_bundle_dir
        )
        with MetricsServer(registry, collector=collector) as server:
            samples, _ = parse_exposition(scrape(server.url))
        events = {
            labels["event"]: value
            for labels, value in samples["adsala_adaptation_events_total"]
        }
        assert events == {"drift_detected": 1, "promoted": 1}
        states = {
            (labels["routine"], labels["state"]): value
            for labels, value in samples["adsala_adaptation_state"]
        }
        # One-hot: latest state holds 1, superseded states 0.
        assert states[("dgemm", "promoted")] == 1.0
        assert states[("dgemm", "drifted")] == 0.0
        assert samples["adsala_bundle_version"][0][1] == 1.0


class TestFrontendScrape:
    @pytest.mark.parametrize("backend", ["thread"])
    def test_merged_scrape_covers_frontend_and_supervision(self, obs_bundle, backend):
        frontend = ShardedFrontend.from_bundle(
            obs_bundle, 2, max_batch_size=8, backend=backend
        )
        registry = MetricsRegistry()
        collector = StatsCollector(registry, stats_fn=frontend.stats)
        workload = generate_workload(["dgemm", "dsyrk"], 48, seed=21)
        with frontend:
            with MetricsServer(registry, collector=collector) as server:
                # submit() (not plan_many) so the admission counters move.
                futures = [
                    frontend.submit(request.routine, **request.dims)
                    for request in workload
                ]
                for future in futures:
                    future.result(timeout=30)
                samples, _ = parse_exposition(scrape(server.url))
        for name in REQUIRED_FRONTEND_SERIES:
            assert name in samples, f"missing required series {name}"
        assert samples["adsala_shards"][0][1] == 2.0
        assert samples["adsala_shards_healthy"][0][1] == 2.0
        assert samples["adsala_submitted_total"][0][1] == 48.0
        shard_labels = {
            labels["shard"] for labels, _ in samples["adsala_shard_restarts_total"]
        }
        assert shard_labels == {"0", "1"}
        assert_histogram_contract(samples, "adsala_plan_latency_seconds")
        # Merged latency histogram counts every plan exactly once.
        total = sum(v for _, v in samples["adsala_plan_latency_seconds_count"])
        assert total == 48.0
