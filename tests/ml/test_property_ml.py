"""Property-based tests (hypothesis) for the ML substrate invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.linear import LinearRegression, Ridge
from repro.ml.metrics import mean_squared_error, r2_score, root_mean_squared_error
from repro.ml.model_selection import KFold
from repro.ml.tree import DecisionTreeRegressor

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def regression_problem(draw, min_rows=8, max_rows=40, min_cols=1, max_cols=4):
    n_rows = draw(st.integers(min_rows, max_rows))
    n_cols = draw(st.integers(min_cols, max_cols))
    X = draw(
        hnp.arrays(
            np.float64,
            (n_rows, n_cols),
            elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
        )
    )
    y = draw(
        hnp.arrays(
            np.float64,
            (n_rows,),
            elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
        )
    )
    return X, y


class TestMetricProperties:
    @given(
        hnp.arrays(np.float64, st.integers(1, 30), elements=finite_floats)
    )
    @settings(max_examples=50, deadline=None)
    def test_perfect_prediction_has_zero_error(self, y):
        assert mean_squared_error(y, y) == 0.0
        assert root_mean_squared_error(y, y) == 0.0

    @given(regression_problem())
    @settings(max_examples=30, deadline=None)
    def test_rmse_nonnegative_and_r2_at_most_one(self, problem):
        _, y = problem
        rng = np.random.default_rng(0)
        y_pred = y + rng.normal(size=y.shape)
        assert root_mean_squared_error(y, y_pred) >= 0
        assert r2_score(y, y_pred) <= 1.0

    @given(
        hnp.arrays(np.float64, st.integers(2, 20), elements=finite_floats),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_mse_shift_invariance(self, y, shift):
        rng = np.random.default_rng(1)
        y_pred = y + rng.normal(size=y.shape)
        original = mean_squared_error(y, y_pred)
        shifted = mean_squared_error(y + shift, y_pred + shift)
        assert np.isclose(original, shifted, rtol=1e-9, atol=1e-9)


class TestLinearModelProperties:
    @given(regression_problem(min_rows=10))
    @settings(max_examples=25, deadline=None)
    def test_ols_residuals_orthogonal_to_features(self, problem):
        X, y = problem
        model = LinearRegression().fit(X, y)
        residual = y - model.predict(X)
        centred = X - X.mean(axis=0)
        # Normal equations: X_c^T r = 0 for the least-squares solution.
        dot = centred.T @ residual
        scale = max(1.0, np.abs(centred).max() * max(1.0, np.abs(residual).max()))
        assert np.all(np.abs(dot) / scale < 1e-5)

    @given(regression_problem(min_rows=10), st.floats(0.01, 100.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_ridge_never_beats_ols_on_training_sse(self, problem, alpha):
        X, y = problem
        ols_error = mean_squared_error(y, LinearRegression().fit(X, y).predict(X))
        ridge_error = mean_squared_error(y, Ridge(alpha=alpha).fit(X, y).predict(X))
        assert ridge_error >= ols_error - 1e-8 * max(1.0, abs(ols_error))


class TestTreeProperties:
    @given(regression_problem(min_rows=10))
    @settings(max_examples=25, deadline=None)
    def test_tree_predictions_within_target_range(self, problem):
        X, y = problem
        model = DecisionTreeRegressor(max_depth=4).fit(X, y)
        predictions = model.predict(X)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @given(regression_problem(min_rows=12))
    @settings(max_examples=20, deadline=None)
    def test_deeper_trees_never_increase_training_error(self, problem):
        X, y = problem
        shallow = DecisionTreeRegressor(max_depth=1).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=6).fit(X, y)
        shallow_error = mean_squared_error(y, shallow.predict(X))
        deep_error = mean_squared_error(y, deep.predict(X))
        assert deep_error <= shallow_error + 1e-9 * max(1.0, shallow_error)


class TestKFoldProperties:
    @given(st.integers(6, 60), st.integers(2, 5), st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_folds_partition_indices(self, n_samples, n_splits, seed):
        X = np.zeros((n_samples, 2))
        splitter = KFold(n_splits=min(n_splits, n_samples), shuffle=True, random_state=seed)
        all_test = []
        for train_idx, test_idx in splitter.split(X):
            assert set(train_idx).isdisjoint(set(test_idx))
            all_test.extend(test_idx.tolist())
        assert sorted(all_test) == list(range(n_samples))
