"""Tests for the candidate-model registry (paper Table II)."""

import pytest

from repro.ml.base import BaseRegressor
from repro.ml.model_zoo import (
    CANDIDATE_MODEL_NAMES,
    MODEL_CHARACTERISTICS,
    candidate_models,
    default_param_grid,
    make_model,
)


class TestCatalog:
    def test_ten_candidates_as_in_table2(self):
        assert len(CANDIDATE_MODEL_NAMES) == 10

    def test_expected_names_present(self):
        for name in ("LinearRegression", "ElasticNet", "BayesianRidge", "DecisionTree",
                     "XGBoost", "AdaBoost", "RandomForest", "LightGBM", "SVR", "KNN"):
            assert name in MODEL_CHARACTERISTICS

    def test_characteristics_have_table2_columns(self):
        for traits in MODEL_CHARACTERISTICS.values():
            assert set(traits) == {
                "category",
                "parametric",
                "good_with_imbalance",
                "data_size_requirement",
            }

    def test_linear_models_are_parametric(self):
        for name in ("LinearRegression", "ElasticNet", "BayesianRidge"):
            assert MODEL_CHARACTERISTICS[name]["parametric"] is True

    def test_tree_models_handle_imbalance(self):
        for name in ("DecisionTree", "XGBoost", "AdaBoost", "RandomForest", "LightGBM"):
            assert MODEL_CHARACTERISTICS[name]["good_with_imbalance"] is True

    def test_categories_match_paper_grouping(self):
        assert MODEL_CHARACTERISTICS["SVR"]["category"] == "Other Models"
        assert MODEL_CHARACTERISTICS["KNN"]["category"] == "Other Models"
        assert MODEL_CHARACTERISTICS["BayesianRidge"]["category"] == "Linear Models"


class TestFactories:
    @pytest.mark.parametrize("name", CANDIDATE_MODEL_NAMES)
    def test_every_candidate_instantiates(self, name):
        model = make_model(name)
        assert isinstance(model, BaseRegressor)

    def test_instances_are_fresh(self):
        assert make_model("XGBoost") is not make_model("XGBoost")

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="Unknown model"):
            make_model("CatBoost")

    def test_candidate_models_default_pool(self):
        pool = candidate_models()
        assert set(pool) == set(CANDIDATE_MODEL_NAMES)

    def test_candidate_models_subset(self):
        pool = candidate_models(["KNN", "SVR"])
        assert set(pool) == {"KNN", "SVR"}


class TestParamGrids:
    @pytest.mark.parametrize("name", CANDIDATE_MODEL_NAMES)
    def test_grid_params_are_valid_for_model(self, name):
        model = make_model(name)
        grid = default_param_grid(name)
        valid = model.get_params()
        for parameter in grid:
            assert parameter in valid

    def test_parameterless_models_have_empty_grids(self):
        assert default_param_grid("LinearRegression") == {}
        assert default_param_grid("BayesianRidge") == {}

    def test_grid_is_a_copy(self):
        grid = default_param_grid("KNN")
        grid["n_neighbors"].append(999)
        assert 999 not in default_param_grid("KNN")["n_neighbors"]

    def test_unknown_grid_raises(self):
        with pytest.raises(KeyError, match="Unknown model"):
            default_param_grid("CatBoost")


class TestFitAllCandidates:
    @pytest.mark.parametrize("name", CANDIDATE_MODEL_NAMES)
    def test_every_candidate_fits_and_predicts(self, name, regression_data):
        X, y = regression_data
        X, y = X[:120], y[:120]
        model = make_model(name)
        # Shrink the heavier ensembles so the full-pool test stays fast.
        if hasattr(model, "n_estimators"):
            model.n_estimators = min(model.n_estimators, 10)
        if hasattr(model, "max_iter"):
            model.max_iter = min(model.max_iter, 100)
        model.fit(X, y)
        predictions = model.predict(X[:10])
        assert predictions.shape == (10,)
