"""Tests for the whole-ensemble StackedTrees compilation (and native kernel)."""

import pickle

import numpy as np
import pytest

from repro.ml import _native
from repro.ml import tree as tree_mod
from repro.ml.boosting import (
    AdaBoostRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor, StackedTrees


@pytest.fixture()
def data():
    rng = np.random.default_rng(5)
    X = rng.uniform(-2.0, 2.0, size=(260, 6))
    y = X @ rng.normal(size=6) + np.sin(X[:, 0] * 3) + 0.05 * rng.normal(size=260)
    Xq = rng.uniform(-2.5, 2.5, size=(53, 6))
    return X, y, Xq


ENSEMBLES = [
    lambda: RandomForestRegressor(n_estimators=15, max_depth=7, random_state=0),
    lambda: AdaBoostRegressor(n_estimators=12, max_depth=3, random_state=0),
    lambda: GradientBoostingRegressor(n_estimators=20, max_depth=4),
    lambda: HistGradientBoostingRegressor(n_estimators=20, max_depth=4, max_bins=24),
]


@pytest.mark.parametrize("factory", ENSEMBLES)
class TestEnsembleEquivalence:
    def test_stacked_equals_unstacked_and_recursive(self, factory, data):
        X, y, Xq = data
        model = factory().fit(X, y)
        stacked = model.predict(Xq)
        with tree_mod.unstacked_mode():
            per_tree = model.predict(Xq)
        with tree_mod.reference_mode():
            recursive = model.predict(Xq)
        assert np.array_equal(stacked, per_tree)
        assert np.array_equal(stacked, recursive)

    def test_native_equals_numpy_descent(self, factory, data):
        X, y, Xq = data
        model = factory().fit(X, y)
        native = model.predict(Xq).copy()
        stack = model.stacked()
        saved = stack._native
        try:
            stack._native = None
            numpy_path = model.predict(Xq)
        finally:
            stack._native = saved
        assert np.array_equal(native, numpy_path)

    def test_stack_cache_not_pickled(self, factory, data):
        X, y, Xq = data
        model = factory().fit(X, y)
        before = model.predict(Xq)
        assert getattr(model, "_stacked_cache", None) is not None
        clone = pickle.loads(pickle.dumps(model))
        assert getattr(clone, "_stacked_cache", None) is None
        assert np.array_equal(clone.predict(Xq), before)


class TestStackedTrees:
    def test_rows_match_individual_flat_trees(self, data):
        X, y, Xq = data
        forest = RandomForestRegressor(
            n_estimators=9, max_depth=6, random_state=1
        ).fit(X, y)
        stacked = StackedTrees(t.flat_tree_ for t in forest.estimators_)
        per_tree = stacked.predict_per_tree(Xq)
        assert per_tree.shape == (9, Xq.shape[0])
        for row, tree in zip(per_tree, forest.estimators_):
            assert np.array_equal(row, tree.flat_tree_.predict(Xq))

    def test_fold_matches_sequential_accumulation(self, data):
        X, y, Xq = data
        booster = GradientBoostingRegressor(n_estimators=18, max_depth=3).fit(X, y)
        stacked = booster.stacked()
        expected = np.full(Xq.shape[0], booster.base_prediction_)
        for update in stacked.predict_per_tree(Xq):
            expected += booster.learning_rate * update
        assert np.array_equal(
            stacked.fold(Xq, booster.base_prediction_, booster.learning_rate),
            expected,
        )

    def test_single_tree_stack(self, data):
        X, y, Xq = data
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        stacked = StackedTrees([tree.flat_tree_])
        assert np.array_equal(
            stacked.predict_per_tree(Xq)[0], tree.flat_tree_.predict(Xq)
        )

    def test_empty_stack_raises(self):
        with pytest.raises(ValueError):
            StackedTrees([])

    def test_odd_sample_counts_hit_native_tail_path(self, data):
        """Row counts around the 8-lane native block boundary."""
        X, y, _ = data
        forest = RandomForestRegressor(
            n_estimators=7, max_depth=6, random_state=2
        ).fit(X, y)
        rng = np.random.default_rng(3)
        stack = forest.stacked()
        for n in (1, 2, 7, 8, 9, 16, 17):
            Xq = rng.uniform(-2.0, 2.0, size=(n, X.shape[1]))
            native = stack.predict_per_tree(Xq).copy()
            saved = stack._native
            try:
                stack._native = None
                numpy_path = stack.predict_per_tree(Xq)
            finally:
                stack._native = saved
            assert np.array_equal(native, numpy_path), n


class TestHistThresholdRemap:
    def test_unbinned_descent_matches_binned(self, data):
        """Raw-space thresholds route exactly like the binned descent."""
        X, y, Xq = data
        model = HistGradientBoostingRegressor(
            n_estimators=25, max_depth=5, max_bins=16
        ).fit(X, y)
        binned = model._transform_bins(Xq)
        expected = np.full(Xq.shape[0], model.base_prediction_)
        for tree in model.estimators_:
            expected += model.learning_rate * tree.flat_.predict(binned)
        assert np.array_equal(model._predict_stacked(Xq), expected)

    def test_exact_edge_values_route_identically(self, data):
        """Queries sitting exactly on bin edges are the remap's hard case."""
        X, y, _ = data
        model = HistGradientBoostingRegressor(
            n_estimators=10, max_depth=4, max_bins=8
        ).fit(X, y)
        # Build queries whose column j walks feature j's fitted edges, so
        # many comparisons hit the exact x == edges[s] tie case.
        n_rows = max(len(edges) for edges in model.bin_edges_)
        Xq = np.empty((n_rows, X.shape[1]))
        for j, edges in enumerate(model.bin_edges_):
            Xq[:, j] = np.resize(edges, n_rows)
        binned = model._transform_bins(Xq)
        expected = np.full(Xq.shape[0], model.base_prediction_)
        for tree in model.estimators_:
            expected += model.learning_rate * tree.flat_.predict(binned)
        assert np.array_equal(model._predict_stacked(Xq), expected)


class TestNativeKernelModule:
    def test_kernel_memoised(self):
        assert _native.load_kernel() is _native.load_kernel()

    def test_kernel_bundle_memoised(self):
        assert _native.load_kernels() is _native.load_kernels()

    def test_legacy_accessor_is_bundle_descent(self):
        bundle = _native.load_kernels()
        if bundle is None:
            assert _native.load_kernel() is None
        else:
            assert _native.load_kernel() is bundle.descent

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("ADSALA_NATIVE", "0")
        assert not _native.native_enabled()
        monkeypatch.delenv("ADSALA_NATIVE")
        assert _native.native_enabled()

    def test_per_stage_kill_switches(self, monkeypatch):
        for stage, env in [
            ("fill", "ADSALA_NATIVE_FILL"),
            ("transform", "ADSALA_NATIVE_TRANSFORM"),
            ("descent", "ADSALA_NATIVE_DESCENT"),
        ]:
            assert _native.stage_enabled(stage)
            monkeypatch.setenv(env, "0")
            assert not _native.stage_enabled(stage)
            monkeypatch.delenv(env)
        # The master switch overrides every stage.
        monkeypatch.setenv("ADSALA_NATIVE", "0")
        assert not any(
            _native.stage_enabled(stage)
            for stage in ("fill", "transform", "descent")
        )
