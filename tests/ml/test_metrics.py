"""Tests for regression metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    normalised_rmse,
    r2_score,
    root_mean_squared_error,
)


class TestBasicMetrics:
    def test_mse_perfect(self):
        assert mean_squared_error([1, 2, 3], [1, 2, 3]) == 0.0

    def test_mse_known_value(self):
        assert mean_squared_error([0, 0], [2, 0]) == pytest.approx(2.0)

    def test_rmse_is_sqrt_of_mse(self):
        y_true = [1.0, 2.0, 3.0]
        y_pred = [2.0, 2.0, 5.0]
        assert root_mean_squared_error(y_true, y_pred) == pytest.approx(
            np.sqrt(mean_squared_error(y_true, y_pred))
        )

    def test_mae_known_value(self):
        assert mean_absolute_error([1, -1], [2, 1]) == pytest.approx(1.5)

    def test_mape_guards_zero_denominator(self):
        value = mean_absolute_percentage_error([0.0, 1.0], [1.0, 1.0])
        assert np.isfinite(value)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="different shapes"):
            mean_squared_error([1, 2], [1, 2, 3])

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            mean_squared_error([], [])


class TestR2:
    def test_perfect_prediction(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_mean_prediction_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert r2_score(y, np.full_like(y, y.mean())) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        assert r2_score([1.0, 2.0, 3.0], [3.0, 3.0, -2.0]) < 0

    def test_constant_target_perfect(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0

    def test_constant_target_imperfect(self):
        assert r2_score([2.0, 2.0], [2.0, 3.0]) == 0.0


class TestNormalisedRmse:
    def test_reference_normalisation(self):
        rmse = root_mean_squared_error([0, 0], [1, 1])
        assert normalised_rmse([0, 0], [1, 1], reference_rmse=2.0) == pytest.approx(rmse / 2.0)

    def test_worst_model_scores_one(self):
        rmse = root_mean_squared_error([0, 2], [1, 1])
        assert normalised_rmse([0, 2], [1, 1], reference_rmse=rmse) == pytest.approx(1.0)

    def test_std_normalisation_fallback(self):
        value = normalised_rmse([0.0, 2.0, 4.0], [0.5, 2.0, 3.5])
        assert value > 0

    def test_invalid_reference_raises(self):
        with pytest.raises(ValueError, match="positive"):
            normalised_rmse([1, 2], [1, 2], reference_rmse=0.0)

    def test_constant_target_zero_error(self):
        assert normalised_rmse([1.0, 1.0], [1.0, 1.0]) == 0.0
