"""Tests for LinearRegression, Ridge and ElasticNet."""

import numpy as np
import pytest

from repro.ml.linear import ElasticNet, LinearRegression, Ridge
from repro.ml.metrics import r2_score


class TestLinearRegression:
    def test_recovers_exact_coefficients(self, linear_data):
        X, y, coef, intercept = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-8)
        assert model.intercept_ == pytest.approx(intercept, abs=1e-8)

    def test_prediction_matches_formula(self, linear_data):
        X, y, _, _ = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.predict(X), X @ model.coef_ + model.intercept_)

    def test_without_intercept(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = 2.0 * X[:, 0]
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0)

    def test_feature_count_mismatch_raises(self, linear_data):
        X, y, _, _ = linear_data
        model = LinearRegression().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(X[:, :2])

    def test_handles_rank_deficiency(self):
        # Duplicate column: lstsq should still return a finite solution.
        X = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [4.0, 4.0]])
        y = np.array([2.0, 4.0, 6.0, 8.0])
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-8)


class TestRidge:
    def test_zero_alpha_matches_ols(self, linear_data):
        X, y, _, _ = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_shrinkage_increases_with_alpha(self, linear_data):
        X, y, _, _ = linear_data
        small = Ridge(alpha=0.1).fit(X, y)
        large = Ridge(alpha=1000.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_negative_alpha_rejected(self, linear_data):
        X, y, _, _ = linear_data
        with pytest.raises(ValueError, match="non-negative"):
            Ridge(alpha=-1.0).fit(X, y)

    def test_reasonable_fit_quality(self, regression_data):
        X, y = regression_data
        model = Ridge(alpha=1.0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.3


class TestElasticNet:
    def test_recovers_sparse_signal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 10))
        true_coef = np.zeros(10)
        true_coef[[0, 3]] = [2.0, -1.5]
        y = X @ true_coef + rng.normal(0, 0.01, size=200)
        model = ElasticNet(alpha=0.05, l1_ratio=0.9, max_iter=2000).fit(X, y)
        # The two active coefficients dominate, the rest are (near) zero.
        assert abs(model.coef_[0]) > 1.0
        assert abs(model.coef_[3]) > 0.7
        inactive = np.delete(np.abs(model.coef_), [0, 3])
        assert np.all(inactive < 0.2)

    def test_high_alpha_zeroes_everything(self, regression_data):
        X, y = regression_data
        model = ElasticNet(alpha=1e6, l1_ratio=1.0).fit(X, y)
        np.testing.assert_allclose(model.coef_, 0.0, atol=1e-10)
        assert model.intercept_ == pytest.approx(float(np.mean(y)), rel=1e-6)

    def test_zero_alpha_approaches_ols(self, linear_data):
        X, y, coef, _ = linear_data
        model = ElasticNet(alpha=1e-8, l1_ratio=0.5, max_iter=5000, tol=1e-10).fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-3)

    def test_invalid_l1_ratio(self, linear_data):
        X, y, _, _ = linear_data
        with pytest.raises(ValueError, match="l1_ratio"):
            ElasticNet(l1_ratio=1.5).fit(X, y)

    def test_convergence_reported(self, linear_data):
        X, y, _, _ = linear_data
        model = ElasticNet(alpha=0.01, max_iter=500).fit(X, y)
        assert 1 <= model.n_iter_ <= 500

    def test_constant_feature_ignored(self):
        X = np.column_stack([np.ones(50), np.linspace(0, 1, 50)])
        y = 3.0 * X[:, 1] + 1.0
        model = ElasticNet(alpha=0.001, max_iter=2000).fit(X, y)
        assert model.coef_[0] == pytest.approx(0.0, abs=1e-8)
        assert model.coef_[1] == pytest.approx(3.0, abs=0.2)
