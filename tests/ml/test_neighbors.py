"""Tests for the k-nearest-neighbour regressor."""

import numpy as np
import pytest

from repro.ml.metrics import r2_score
from repro.ml.neighbors import KNeighborsRegressor


class TestKNN:
    def test_one_neighbor_memorises_training_data(self, regression_data):
        X, y = regression_data
        model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)

    def test_uniform_average_of_neighbors(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0]])
        y = np.array([0.0, 1.0, 2.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=3, weights="uniform").fit(X, y)
        # Query at 1.0: neighbours are 0, 1, 2 -> mean 1.0.
        assert model.predict([[1.0]])[0] == pytest.approx(1.0)

    def test_distance_weighting_prefers_closer_points(self):
        X = np.array([[0.0], [1.0], [4.0]])
        y = np.array([0.0, 10.0, 100.0])
        uniform = KNeighborsRegressor(n_neighbors=3, weights="uniform").fit(X, y)
        weighted = KNeighborsRegressor(n_neighbors=3, weights="distance").fit(X, y)
        query = [[0.9]]
        # The distance-weighted estimate should sit closer to the y of the
        # nearest training point (10.0) than the unweighted mean does.
        assert abs(weighted.predict(query)[0] - 10.0) < abs(uniform.predict(query)[0] - 10.0)

    def test_exact_match_with_distance_weights(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([5.0, 7.0, 9.0])
        model = KNeighborsRegressor(n_neighbors=3, weights="distance").fit(X, y)
        assert model.predict([[1.0]])[0] == pytest.approx(7.0)

    def test_generalises_smooth_function(self, regression_data):
        X, y = regression_data
        split = 200
        model = KNeighborsRegressor(n_neighbors=5, weights="distance").fit(X[:split], y[:split])
        assert r2_score(y[split:], model.predict(X[split:])) > 0.5

    def test_k_larger_than_dataset_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            KNeighborsRegressor(n_neighbors=10).fit(np.zeros((5, 2)), np.zeros(5))

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError, match="weights"):
            KNeighborsRegressor(weights="gaussian").fit(np.zeros((5, 2)), np.zeros(5))

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError, match="n_neighbors"):
            KNeighborsRegressor(n_neighbors=0).fit(np.zeros((5, 2)), np.zeros(5))

    def test_feature_mismatch_raises(self, regression_data):
        X, y = regression_data
        model = KNeighborsRegressor().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(X[:, :2])
