"""Equivalence tests: flattened tree inference vs the recursive reference.

Every tree-based model compiles its fitted node tree into a
struct-of-arrays :class:`~repro.ml.tree.FlatTree`; predictions through the
iterative vectorised descent must match the recursive node walk exactly,
and fitting through the vectorised 2-D split search must produce exactly
the same trees as the per-feature reference loop.
"""

import numpy as np
import pytest

from repro.ml.boosting import (
    AdaBoostRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor, FlatTree, active_impl, reference_mode


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(123)
    X = rng.normal(size=(400, 9))
    y = (
        X @ rng.normal(size=9)
        + 0.5 * np.sin(3 * X[:, 0])
        + rng.normal(0, 0.05, size=400)
    )
    X_query = rng.normal(size=(250, 9))
    return X, y, X_query


MODELS = [
    (DecisionTreeRegressor, dict(max_depth=10, random_state=0)),
    (DecisionTreeRegressor, dict(min_samples_leaf=5, max_features="sqrt", random_state=1)),
    (RandomForestRegressor, dict(n_estimators=8, max_depth=8, random_state=0)),
    (AdaBoostRegressor, dict(n_estimators=8, max_depth=3, random_state=0)),
    (GradientBoostingRegressor, dict(n_estimators=12, max_depth=4, random_state=0)),
    (GradientBoostingRegressor, dict(n_estimators=6, subsample=0.7, random_state=0)),
    (HistGradientBoostingRegressor, dict(n_estimators=12, max_depth=5)),
]


class TestFitEquivalence:
    @pytest.mark.parametrize("cls,kwargs", MODELS)
    def test_vectorised_fit_equals_reference_fit(self, data, cls, kwargs):
        X, y, X_query = data
        vectorised = cls(**kwargs).fit(X, y)
        with reference_mode():
            assert active_impl() == "reference"
            reference = cls(**kwargs).fit(X, y)
            reference_pred = reference.predict(X_query)
        np.testing.assert_array_equal(vectorised.predict(X_query), reference_pred)
        assert active_impl() == "vectorized"

    def test_weighted_fit_equals_reference_fit(self, data):
        X, y, X_query = data
        weights = np.random.default_rng(5).uniform(0.0, 2.0, size=X.shape[0])
        vectorised = DecisionTreeRegressor(max_depth=8, random_state=0).fit(
            X, y, sample_weight=weights
        )
        with reference_mode():
            reference = DecisionTreeRegressor(max_depth=8, random_state=0).fit(
                X, y, sample_weight=weights
            )
            reference_pred = reference.predict(X_query)
        np.testing.assert_array_equal(vectorised.predict(X_query), reference_pred)


class TestPredictEquivalence:
    def test_flat_predict_equals_recursive_reference(self, data):
        X, y, X_query = data
        model = DecisionTreeRegressor(max_depth=12, random_state=0).fit(X, y)
        np.testing.assert_array_equal(
            model.predict(X_query), model.predict_reference(X_query)
        )

    def test_single_row_and_empty_batches(self, data):
        X, y, _ = data
        model = DecisionTreeRegressor(max_depth=6, random_state=0).fit(X, y)
        np.testing.assert_array_equal(
            model.predict(X[:1]), model.predict_reference(X[:1])
        )
        assert model.flat_tree_.predict(np.empty((0, X.shape[1]))).shape == (0,)

    def test_stump_tree(self):
        X = np.zeros((5, 3))
        y = np.full(5, 2.5)
        model = DecisionTreeRegressor().fit(X, y)
        assert model.flat_tree_.depth == 0
        np.testing.assert_array_equal(model.predict(X), np.full(5, 2.5))

    def test_ensemble_predicts_match_recursive(self, data):
        X, y, X_query = data
        for cls, kwargs in MODELS[2:]:
            model = cls(**kwargs).fit(X, y)
            flat = model.predict(X_query)
            with reference_mode():
                recursive = model.predict(X_query)
            np.testing.assert_array_equal(flat, recursive)


class TestFlatTreeStructure:
    def test_flat_arrays_describe_the_fitted_tree(self, data):
        X, y, _ = data
        model = DecisionTreeRegressor(max_depth=7, random_state=0).fit(X, y)
        flat = model.flat_tree_
        assert isinstance(flat, FlatTree)
        assert flat.n_leaves == model.n_leaves_
        assert flat.depth == model.depth_
        assert flat.n_nodes == 2 * model.n_leaves_ - 1
        interior = flat.feature >= 0
        assert np.all(flat.left[interior] >= 0)
        assert np.all(flat.right[interior] >= 0)
        assert np.all(flat.left[~interior] == -1)

    def test_flat_tree_survives_pickle(self, data):
        import pickle

        X, y, X_query = data
        model = RandomForestRegressor(n_estimators=4, max_depth=6, random_state=0).fit(X, y)
        clone = pickle.loads(pickle.dumps(model))
        np.testing.assert_array_equal(clone.predict(X_query), model.predict(X_query))

    def test_nan_features_route_like_the_recursive_walk(self, data):
        # The public predict() rejects NaN (check_X), but the compiled
        # FlatTree is also used on raw arrays (e.g. binned boosting data):
        # its descent must route NaN exactly like the recursive walk
        # (NaN <= threshold is false -> right child).
        X, y, _ = data
        model = DecisionTreeRegressor(max_depth=8, random_state=0).fit(X, y)
        X_query = np.array(X[:20])
        X_query[::3, 0] = np.nan
        X_query[::4, 5] = np.nan
        out = np.empty(X_query.shape[0])
        model._predict_into(model.tree_, X_query, np.arange(X_query.shape[0]), out)
        np.testing.assert_array_equal(model.flat_tree_.predict(X_query), out)
