"""Tests for BayesianRidge regression."""

import numpy as np
import pytest

from repro.ml.bayes import BayesianRidge
from repro.ml.linear import LinearRegression
from repro.ml.metrics import r2_score


class TestBayesianRidge:
    def test_matches_ols_on_clean_linear_data(self, linear_data):
        X, y, coef, intercept = linear_data
        model = BayesianRidge().fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-3)
        assert model.intercept_ == pytest.approx(intercept, abs=1e-3)

    def test_close_to_ols_with_noise(self, regression_data):
        X, y = regression_data
        bayes = BayesianRidge().fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert r2_score(y, bayes.predict(X)) == pytest.approx(
            r2_score(y, ols.predict(X)), abs=0.05
        )

    def test_hyperparameters_are_positive(self, regression_data):
        X, y = regression_data
        model = BayesianRidge().fit(X, y)
        assert model.alpha_ > 0
        assert model.lambda_ > 0

    def test_noise_precision_tracks_noise_level(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 3))
        coef = np.array([1.0, -1.0, 0.5])
        quiet = X @ coef + rng.normal(0, 0.01, 300)
        loud = X @ coef + rng.normal(0, 1.0, 300)
        model_quiet = BayesianRidge().fit(X, quiet)
        model_loud = BayesianRidge().fit(X, loud)
        # alpha is the noise *precision*, so quiet data -> larger alpha.
        assert model_quiet.alpha_ > model_loud.alpha_ * 10

    def test_predict_with_std(self, regression_data):
        X, y = regression_data
        model = BayesianRidge().fit(X, y)
        mean, std = model.predict(X[:10], return_std=True)
        assert mean.shape == (10,)
        assert std.shape == (10,)
        assert np.all(std > 0)

    def test_uncertainty_grows_away_from_data(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, size=(100, 2))
        y = X @ np.array([1.0, 2.0]) + rng.normal(0, 0.5, 100)
        model = BayesianRidge().fit(X, y)
        _, std_near = model.predict(np.array([[0.0, 0.0]]), return_std=True)
        _, std_far = model.predict(np.array([[20.0, -20.0]]), return_std=True)
        assert std_far[0] > std_near[0]

    def test_converges_within_budget(self, regression_data):
        X, y = regression_data
        model = BayesianRidge(max_iter=300).fit(X, y)
        assert model.n_iter_ <= 300

    def test_feature_mismatch_raises(self, regression_data):
        X, y = regression_data
        model = BayesianRidge().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(X[:, :2])
