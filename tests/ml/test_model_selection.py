"""Tests for K-fold CV, splitting and grid search."""

import numpy as np
import pytest

from repro.ml.linear import Ridge
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    cross_val_score,
    stratified_train_test_split,
    train_test_split,
)
from repro.ml.tree import DecisionTreeRegressor


class TestKFold:
    def test_partitions_cover_everything_once(self):
        splitter = KFold(n_splits=4, shuffle=True, random_state=0)
        X = np.arange(22).reshape(-1, 1)
        seen = []
        for train_idx, test_idx in splitter.split(X):
            assert set(train_idx).isdisjoint(test_idx)
            assert len(train_idx) + len(test_idx) == 22
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(22))

    def test_number_of_folds(self):
        splitter = KFold(n_splits=5, shuffle=False)
        folds = list(splitter.split(np.zeros((20, 2))))
        assert len(folds) == 5

    def test_no_shuffle_is_contiguous(self):
        splitter = KFold(n_splits=2, shuffle=False)
        (train1, test1), _ = splitter.split(np.zeros((10, 1)))
        assert list(test1) == list(range(5))

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="Cannot split"):
            list(KFold(n_splits=5).split(np.zeros((3, 1))))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError, match="n_splits"):
            KFold(n_splits=1)

    def test_reproducible_shuffle(self):
        a = [t.tolist() for _, t in KFold(3, True, 7).split(np.zeros((12, 1)))]
        b = [t.tolist() for _, t in KFold(3, True, 7).split(np.zeros((12, 1)))]
        assert a == b


class TestSplits:
    def test_train_test_split_sizes(self, regression_data):
        X, y = regression_data
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25, random_state=0)
        assert len(X_test) == round(0.25 * len(X))
        assert len(X_train) + len(X_test) == len(X)
        assert len(y_train) == len(X_train)

    def test_train_test_split_disjoint(self, regression_data):
        X, y = regression_data
        X_train, X_test, _, _ = train_test_split(X, y, test_size=0.2, random_state=1)
        train_rows = {tuple(row) for row in X_train}
        test_rows = {tuple(row) for row in X_test}
        assert not train_rows & test_rows

    def test_invalid_test_size(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError, match="test_size"):
            train_test_split(X, y, test_size=1.5)

    def test_stratified_split_covers_target_range(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 3))
        # Heavily skewed target, as in the timing datasets.
        y = np.exp(rng.normal(0, 2, size=400))
        _, X_test, _, y_test = stratified_train_test_split(X, y, test_size=0.15, random_state=0)
        # The test split should include both small and large runtimes.
        assert y_test.min() < np.quantile(y, 0.3)
        assert y_test.max() > np.quantile(y, 0.7)
        assert 0.05 * len(y) < len(y_test) < 0.3 * len(y)

    def test_stratified_split_respects_fraction(self, regression_data):
        X, y = regression_data
        _, X_test, _, _ = stratified_train_test_split(X, y, test_size=0.15, random_state=0)
        assert abs(len(X_test) - 0.15 * len(X)) <= 0.05 * len(X)


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(combos) == 6
        assert len(grid) == 6
        assert {"a": 1, "b": "x"} in combos

    def test_empty_grid_yields_single_empty_dict(self):
        assert list(ParameterGrid({})) == [{}]

    def test_empty_value_list_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ParameterGrid({"a": []})

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            ParameterGrid([("a", [1])])


class TestCrossValidation:
    def test_cross_val_score_length(self, regression_data):
        X, y = regression_data
        scores = cross_val_score(Ridge(alpha=1.0), X, y, cv=4)
        assert scores.shape == (4,)
        assert np.all(scores <= 0)  # neg_rmse

    def test_r2_scoring(self, regression_data):
        X, y = regression_data
        scores = cross_val_score(Ridge(alpha=1.0), X, y, cv=3, scoring="r2")
        assert np.all(scores <= 1.0)

    def test_unknown_scoring(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError, match="scoring"):
            cross_val_score(Ridge(), X, y, cv=3, scoring="accuracy")


class TestGridSearch:
    def test_selects_better_depth(self, regression_data):
        X, y = regression_data
        search = GridSearchCV(
            estimator=DecisionTreeRegressor(random_state=0),
            param_grid={"max_depth": [1, 8]},
            cv=3,
        )
        search.fit(X, y)
        assert search.best_params_["max_depth"] == 8
        assert len(search.results_) == 2

    def test_best_estimator_is_fitted(self, regression_data):
        X, y = regression_data
        search = GridSearchCV(Ridge(), {"alpha": [0.1, 10.0]}, cv=3)
        search.fit(X, y)
        predictions = search.predict(X[:5])
        assert predictions.shape == (5,)

    def test_predict_before_fit_raises(self):
        search = GridSearchCV(Ridge(), {"alpha": [1.0]}, cv=3)
        with pytest.raises(RuntimeError, match="not fitted"):
            search.predict(np.zeros((1, 3)))
