"""Tests for the estimator base class, validation helpers and cloning."""

import numpy as np
import pytest

from repro.ml.base import BaseRegressor, check_X, check_X_y, clone
from repro.ml.linear import LinearRegression, Ridge
from repro.ml.tree import DecisionTreeRegressor


class TestCheckX:
    def test_accepts_2d_array(self):
        X = check_X([[1.0, 2.0], [3.0, 4.0]])
        assert X.shape == (2, 2)
        assert X.dtype == np.float64

    def test_promotes_1d_to_column(self):
        X = check_X([1.0, 2.0, 3.0])
        assert X.shape == (3, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_X(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_X(np.zeros((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_X([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_X([[1.0, np.inf]])


class TestCheckXY:
    def test_matching_lengths(self):
        X, y = check_X_y([[1.0], [2.0]], [3.0, 4.0])
        assert X.shape == (2, 1)
        assert y.shape == (2,)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="incompatible lengths"):
            check_X_y([[1.0], [2.0]], [3.0])

    def test_rejects_nan_target(self):
        with pytest.raises(ValueError, match="NaN"):
            check_X_y([[1.0], [2.0]], [np.nan, 1.0])

    def test_flattens_column_target(self):
        _, y = check_X_y([[1.0], [2.0]], [[3.0], [4.0]])
        assert y.shape == (2,)


class TestParams:
    def test_get_params_returns_constructor_args(self):
        model = Ridge(alpha=2.5, fit_intercept=False)
        params = model.get_params()
        assert params == {"alpha": 2.5, "fit_intercept": False}

    def test_set_params_roundtrip(self):
        model = Ridge()
        model.set_params(alpha=0.1)
        assert model.alpha == 0.1

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="Invalid parameter"):
            Ridge().set_params(bogus=1)

    def test_repr_contains_params(self):
        assert "alpha=3.0" in repr(Ridge(alpha=3.0))


class TestClone:
    def test_clone_copies_hyperparameters(self):
        original = DecisionTreeRegressor(max_depth=5, min_samples_leaf=3)
        copy = clone(original)
        assert copy is not original
        assert copy.max_depth == 5
        assert copy.min_samples_leaf == 3

    def test_clone_is_unfitted(self, regression_data):
        X, y = regression_data
        model = LinearRegression().fit(X, y)
        fresh = clone(model)
        assert not hasattr(fresh, "coef_")

    def test_clone_deep_copies_mutable_params(self):
        original = DecisionTreeRegressor(max_features=0.5)
        copy = clone(original)
        assert copy.max_features == 0.5


class TestBaseInterface:
    def test_score_is_r2(self, linear_data):
        X, y, _, _ = linear_data
        model = LinearRegression().fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0, abs=1e-9)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LinearRegression().predict([[1.0, 2.0]])

    def test_base_fit_not_implemented(self):
        with pytest.raises(NotImplementedError):
            BaseRegressor().fit([[1.0]], [1.0])
