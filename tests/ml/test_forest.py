"""Tests for the random-forest regressor."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


class TestRandomForest:
    def test_fits_nonlinear_data(self, regression_data):
        X, y = regression_data
        model = RandomForestRegressor(n_estimators=15, max_depth=8, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.8

    def test_number_of_estimators(self, regression_data):
        X, y = regression_data
        model = RandomForestRegressor(n_estimators=7, random_state=0).fit(X, y)
        assert len(model.estimators_) == 7
        assert all(isinstance(tree, DecisionTreeRegressor) for tree in model.estimators_)

    def test_prediction_is_mean_of_trees(self, regression_data):
        X, y = regression_data
        model = RandomForestRegressor(n_estimators=5, max_depth=4, random_state=1).fit(X, y)
        manual = np.mean([tree.predict(X[:20]) for tree in model.estimators_], axis=0)
        np.testing.assert_allclose(model.predict(X[:20]), manual)

    def test_reproducible_with_seed(self, regression_data):
        X, y = regression_data
        a = RandomForestRegressor(n_estimators=5, random_state=42).fit(X, y).predict(X[:10])
        b = RandomForestRegressor(n_estimators=5, random_state=42).fit(X, y).predict(X[:10])
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self, regression_data):
        X, y = regression_data
        a = RandomForestRegressor(n_estimators=5, random_state=1).fit(X, y).predict(X[:10])
        b = RandomForestRegressor(n_estimators=5, random_state=2).fit(X, y).predict(X[:10])
        assert not np.allclose(a, b)

    def test_oob_score_populated_with_bootstrap(self, regression_data):
        X, y = regression_data
        model = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        assert model.oob_score_ is not None
        assert model.oob_score_ > 0.3

    def test_no_bootstrap_mode(self, regression_data):
        X, y = regression_data
        model = RandomForestRegressor(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        assert model.oob_score_ is None
        assert r2_score(y, model.predict(X)) > 0.6

    def test_invalid_n_estimators(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestRegressor(n_estimators=0).fit(X, y)

    def test_feature_importances_normalised(self, regression_data):
        X, y = regression_data
        model = RandomForestRegressor(n_estimators=10, random_state=0).fit(X, y)
        importances = model.feature_importances()
        assert importances.shape == (X.shape[1],)
        assert importances.sum() == pytest.approx(1.0)

    def test_ensemble_smoother_than_single_tree(self, regression_data):
        """Bagging should not be (much) worse than a single deep tree out of sample."""
        X, y = regression_data
        split = 180
        tree = DecisionTreeRegressor(random_state=0).fit(X[:split], y[:split])
        forest = RandomForestRegressor(n_estimators=20, random_state=0).fit(X[:split], y[:split])
        tree_r2 = r2_score(y[split:], tree.predict(X[split:]))
        forest_r2 = r2_score(y[split:], forest.predict(X[split:]))
        assert forest_r2 > tree_r2 - 0.1
