"""The native kernels must run without the GIL (satellite check).

The process shard backend is the headline GIL escape, but the in-process
thread backend also leans on the native kernels dropping the GIL —
``ctypes.CDLL`` foreign calls release it, ``PyDLL`` calls do not.  These
tests pin the load path (CDLL with full explicit signatures) and prove
the release dynamically — on any core count, including one — by showing
Python threads make progress *while* a long kernel call is in flight.
With the GIL held for the call's duration no test here can pass: the
counter thread would be frozen and the second caller could not even
record its start timestamp until the first call returned.  Both the bare
``stacked_descent`` kernel and the whole-span ``fused_evaluate`` chain
(feature fill → transform → descent in one foreign call) are proven.
"""

import ctypes
import threading
import time

import numpy as np
import pytest

from repro.core.features import ColumnProgram
from repro.ml import _native

kernel = _native.load_kernel()
kernels = _native.load_kernels()

pytestmark = pytest.mark.skipif(
    kernel is None, reason="native descent kernel unavailable (no C compiler?)"
)


def _long_call_args(depth: int, n_samples: int = 1024):
    """A synthetic self-looping one-node tree: ``depth`` iterations/row.

    Node 0 is a leaf by the FlatTree convention (feature 0 against +inf,
    children self-referential), so the kernel spins ``depth * n_samples``
    branch-free visits — a tunable-duration call with trivially correct
    output (every row lands on the leaf value).
    """
    nodes = np.zeros(1, dtype=_native.NODE_DTYPE)
    nodes["thr"] = np.inf
    nodes["value"] = 7.25
    x = np.zeros((n_samples, 1), dtype=np.float64)
    roots = np.zeros(1, dtype=np.int64)
    depths = np.full(1, depth, dtype=np.int64)
    out = np.empty((1, n_samples), dtype=np.float64)
    return x, roots, depths, nodes, out


def _calibrated_depth(target_seconds: float = 0.25) -> int:
    """A depth that makes one kernel call take roughly ``target_seconds``."""
    probe = 200_000
    x, roots, depths, nodes, out = _long_call_args(probe)
    start = time.perf_counter()
    kernel(x, roots, depths, nodes, 0, 0.0, out)
    elapsed = max(time.perf_counter() - start, 1e-4)
    return max(probe, int(probe * target_seconds / elapsed))


def _long_fused_args(depth: int, n_shapes: int = 1024):
    """Long-running ``fused_evaluate`` arguments exercising all stages.

    A one-dimension identity column program (one base = the dim itself,
    one column publishing that base), the λ=1 Yeo-Johnson fast path (an
    exact identity for the positive inputs used) with a unit affine, and
    the same synthetic self-looping one-node tree as the descent tests —
    so the fused chain runs fill → transform → descent for ``depth``
    iterations per row with trivially correct output.
    """
    program = ColumnProgram(
        base_offsets=np.array([0, 1], dtype=np.int64),
        term_coef=np.array([1.0]),
        term_fac=np.array([[0, -1, -1]], dtype=np.int64),
        col_kind=np.array([1], dtype=np.int64),
        col_base=np.array([0], dtype=np.int64),
    )
    dims = np.full((n_shapes, 1), 3.0)
    nt = np.ones(1)
    grid = np.empty((n_shapes, 1))
    lambdas = np.ones(1)
    shift = np.zeros(1)
    scale = np.ones(1)
    nodes = np.zeros(1, dtype=_native.NODE_DTYPE)
    nodes["thr"] = np.inf
    nodes["value"] = 7.25
    roots = np.zeros(1, dtype=np.int64)
    depths = np.full(1, depth, dtype=np.int64)
    out = np.empty((1, n_shapes), dtype=np.float64)
    return (
        program, dims, nt, grid, lambdas, shift, scale,
        0, roots, depths, nodes, 0.0, 0.0, out,
    )


class TestLoadPath:
    def test_loaded_via_cdll_not_pydll(self):
        """PyDLL calls hold the GIL; the kernel must not be loaded that way."""
        fn = kernel.ctypes_fn
        assert isinstance(fn, ctypes._CFuncPtr)
        assert not (type(fn)._flags_ & ctypes._FUNCFLAG_PYTHONAPI)

    def test_explicit_signature_on_every_export(self):
        """Every exported symbol declares every argtype and its restype."""
        expected_arity = {
            "descent": 10,
            "feature_fill": 13,
            "fused_transform": 7,
            "fused_evaluate": 25,
        }
        for name, arity in expected_arity.items():
            wrapper = getattr(kernels, name)
            if wrapper is None:  # stage disabled / probe failed on host
                continue
            fn = wrapper.ctypes_fn
            assert isinstance(fn, ctypes._CFuncPtr), name
            assert not (type(fn)._flags_ & ctypes._FUNCFLAG_PYTHONAPI), name
            assert fn.restype is None, name
            assert fn.argtypes is not None and len(fn.argtypes) == arity, name
            assert all(argtype is not None for argtype in fn.argtypes), name

    def test_kernel_still_correct_on_synthetic_tree(self):
        x, roots, depths, nodes, out = _long_call_args(depth=64, n_samples=13)
        kernel(x, roots, depths, nodes, 0, 0.0, out)
        np.testing.assert_array_equal(out, np.full((1, 13), 7.25))


class TestGilRelease:
    def test_counter_thread_progresses_during_native_call(self):
        """A Python counter keeps running while the kernel call is in flight."""
        depth = _calibrated_depth()
        x, roots, depths, nodes, out = _long_call_args(depth)
        progress = {"count": 0}
        stop = threading.Event()

        def counter():
            while not stop.is_set():
                progress["count"] += 1

        thread = threading.Thread(target=counter, daemon=True)
        thread.start()
        try:
            time.sleep(0.05)  # let the counter reach steady state
            before = progress["count"]
            kernel(x, roots, depths, nodes, 0, 0.0, out)
            after = progress["count"]
        finally:
            stop.set()
            thread.join(timeout=10)
        # Held-GIL ctypes would freeze the counter for the whole call;
        # a released GIL timeshares it through thousands of iterations.
        assert after - before > 1000

    def test_two_native_calls_overlap_in_wall_clock(self):
        """Two threads' kernel-call intervals overlap (impossible GIL-held).

        Each thread records its own (start, end) around one long call.  If
        the foreign call held the GIL, the second thread could not execute
        the bytecode that records its start until the first call returned,
        so the intervals would be disjoint — on any number of cores.
        """
        depth = _calibrated_depth()
        barrier = threading.Barrier(2, timeout=30)
        intervals = [None, None]

        def caller(slot: int):
            x, roots, depths, nodes, out = _long_call_args(depth)
            barrier.wait()
            start = time.perf_counter()
            kernel(x, roots, depths, nodes, 0, 0.0, out)
            intervals[slot] = (start, time.perf_counter())

        threads = [
            threading.Thread(target=caller, args=(slot,)) for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert all(interval is not None for interval in intervals)
        (a_start, a_end), (b_start, b_end) = intervals
        overlap = min(a_end, b_end) - max(a_start, b_start)
        shortest = min(a_end - a_start, b_end - b_start)
        assert overlap > 0.25 * shortest


@pytest.mark.skipif(
    kernels is None or kernels.fused_evaluate is None,
    reason="fused evaluate kernel unavailable",
)
class TestFusedEvaluateGilRelease:
    """The end-to-end fused chain must release the GIL, not just descent."""

    def _calibrated_fused_depth(self, target_seconds: float = 0.25) -> int:
        probe = 200_000
        args = _long_fused_args(probe)
        start = time.perf_counter()
        kernels.fused_evaluate(*args)
        elapsed = max(time.perf_counter() - start, 1e-4)
        return max(probe, int(probe * target_seconds / elapsed))

    def test_fused_chain_still_correct_on_synthetic_program(self):
        args = _long_fused_args(depth=64, n_shapes=13)
        out = kernels.fused_evaluate(*args)
        grid = args[3]
        np.testing.assert_array_equal(grid, np.full((13, 1), 3.0))
        np.testing.assert_array_equal(out, np.full((1, 13), 7.25))

    def test_counter_thread_progresses_during_fused_call(self):
        depth = self._calibrated_fused_depth()
        args = _long_fused_args(depth)
        progress = {"count": 0}
        stop = threading.Event()

        def counter():
            while not stop.is_set():
                progress["count"] += 1

        thread = threading.Thread(target=counter, daemon=True)
        thread.start()
        try:
            time.sleep(0.05)
            before = progress["count"]
            kernels.fused_evaluate(*args)
            after = progress["count"]
        finally:
            stop.set()
            thread.join(timeout=10)
        assert after - before > 1000

    def test_two_fused_calls_overlap_in_wall_clock(self):
        depth = self._calibrated_fused_depth()
        barrier = threading.Barrier(2, timeout=30)
        intervals = [None, None]

        def caller(slot: int):
            args = _long_fused_args(depth)
            barrier.wait()
            start = time.perf_counter()
            kernels.fused_evaluate(*args)
            intervals[slot] = (start, time.perf_counter())

        threads = [
            threading.Thread(target=caller, args=(slot,)) for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert all(interval is not None for interval in intervals)
        (a_start, a_end), (b_start, b_end) = intervals
        overlap = min(a_end, b_end) - max(a_start, b_start)
        shortest = min(a_end - a_start, b_end - b_start)
        assert overlap > 0.25 * shortest
