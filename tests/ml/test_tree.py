"""Tests for the CART regression tree."""

import numpy as np
import pytest

from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


def step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 2))
    y = np.where(X[:, 0] > 0.5, 10.0, -10.0) + np.where(X[:, 1] > 0.3, 2.0, 0.0)
    return X, y


class TestFitting:
    def test_learns_piecewise_constant_function(self):
        X, y = step_data()
        model = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99

    def test_single_leaf_predicts_mean(self):
        X, y = step_data()
        model = DecisionTreeRegressor(max_depth=0).fit(X, y)
        np.testing.assert_allclose(model.predict(X), np.mean(y))
        assert model.n_leaves_ == 1

    def test_depth_limit_respected(self):
        X, y = step_data()
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert model.depth_ <= 3

    def test_min_samples_leaf_respected(self):
        X, y = step_data(n=100)
        model = DecisionTreeRegressor(min_samples_leaf=20).fit(X, y)

        def smallest_leaf(node):
            if node.is_leaf:
                return node.n_samples
            return min(smallest_leaf(node.left), smallest_leaf(node.right))

        assert smallest_leaf(model.tree_) >= 20

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        y = np.full(50, 7.0)
        model = DecisionTreeRegressor().fit(X, y)
        assert model.n_leaves_ == 1
        np.testing.assert_allclose(model.predict(X), 7.0)

    def test_overfits_training_data_when_unconstrained(self, regression_data):
        X, y = regression_data
        model = DecisionTreeRegressor(max_depth=None, min_samples_leaf=1).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95

    def test_sample_weight_changes_fit(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        # Heavily weight the left half: the root value reflects the weights.
        weights = np.array([100.0, 100.0, 1.0, 1.0])
        model = DecisionTreeRegressor(max_depth=0)
        model.fit(X, y, sample_weight=weights)
        assert model.tree_.value == pytest.approx(
            np.average(y, weights=weights)
        )

    def test_negative_sample_weight_rejected(self):
        X, y = step_data(n=20)
        with pytest.raises(ValueError, match="non-negative"):
            DecisionTreeRegressor().fit(X, y, sample_weight=-np.ones(20))


class TestValidation:
    def test_invalid_min_samples_split(self):
        X, y = step_data(n=20)
        with pytest.raises(ValueError, match="min_samples_split"):
            DecisionTreeRegressor(min_samples_split=1).fit(X, y)

    def test_invalid_min_samples_leaf(self):
        X, y = step_data(n=20)
        with pytest.raises(ValueError, match="min_samples_leaf"):
            DecisionTreeRegressor(min_samples_leaf=0).fit(X, y)

    def test_invalid_max_features_string(self):
        X, y = step_data(n=20)
        with pytest.raises(ValueError, match="max_features"):
            DecisionTreeRegressor(max_features="bogus").fit(X, y)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTreeRegressor().predict([[0.0, 0.0]])

    def test_feature_mismatch_raises(self):
        X, y = step_data()
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(X[:, :1])


class TestMaxFeatures:
    @pytest.mark.parametrize(
        "max_features,expected",
        [(None, 6), ("sqrt", 2), ("log2", 2), (3, 3), (0.5, 3)],
    )
    def test_resolution(self, max_features, expected):
        model = DecisionTreeRegressor(max_features=max_features)
        assert model._resolve_max_features(6) == expected

    def test_subsampled_tree_still_fits(self):
        X, y = step_data()
        model = DecisionTreeRegressor(max_features=1, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.5


class TestIntrospection:
    def test_feature_importances_sum_to_one(self):
        X, y = step_data()
        model = DecisionTreeRegressor(max_depth=5).fit(X, y)
        importances = model.feature_importances()
        assert importances.shape == (2,)
        assert importances.sum() == pytest.approx(1.0)

    def test_dominant_feature_has_higher_importance(self):
        X, y = step_data()
        model = DecisionTreeRegressor(max_depth=5).fit(X, y)
        importances = model.feature_importances()
        assert importances[0] > importances[1]

    def test_determinism_with_seed(self):
        X, y = step_data()
        a = DecisionTreeRegressor(max_features=1, random_state=3).fit(X, y)
        b = DecisionTreeRegressor(max_features=1, random_state=3).fit(X, y)
        np.testing.assert_allclose(a.predict(X), b.predict(X))
