"""Tests for AdaBoost.R2, XGBoost-style and LightGBM-style boosting."""

import numpy as np
import pytest

from repro.ml.boosting import (
    AdaBoostRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
)
from repro.ml.metrics import r2_score


class TestAdaBoost:
    def test_fits_nonlinear_data(self, regression_data):
        X, y = regression_data
        model = AdaBoostRegressor(n_estimators=15, max_depth=4, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.7

    def test_stops_early_on_perfect_fit(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]] * 5)
        y = np.where(X[:, 0] > 1.5, 1.0, 0.0)
        model = AdaBoostRegressor(n_estimators=50, max_depth=2, random_state=0).fit(X, y)
        assert len(model.estimators_) < 50

    def test_weights_match_estimators(self, regression_data):
        X, y = regression_data
        model = AdaBoostRegressor(n_estimators=10, random_state=0).fit(X, y)
        assert len(model.estimator_weights_) == len(model.estimators_)

    def test_invalid_loss_rejected(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError, match="loss"):
            AdaBoostRegressor(loss="hinge").fit(X, y)

    @pytest.mark.parametrize("loss", ["linear", "square", "exponential"])
    def test_all_losses_produce_finite_predictions(self, regression_data, loss):
        X, y = regression_data
        model = AdaBoostRegressor(n_estimators=5, loss=loss, random_state=0).fit(X, y)
        assert np.all(np.isfinite(model.predict(X[:20])))

    def test_weighted_median_within_prediction_range(self, regression_data):
        X, y = regression_data
        model = AdaBoostRegressor(n_estimators=8, random_state=0).fit(X, y)
        per_tree = np.column_stack([t.predict(X[:5]) for t in model.estimators_])
        combined = model.predict(X[:5])
        assert np.all(combined >= per_tree.min(axis=1) - 1e-9)
        assert np.all(combined <= per_tree.max(axis=1) + 1e-9)


class TestGradientBoosting:
    def test_fits_nonlinear_data(self, regression_data):
        X, y = regression_data
        model = GradientBoostingRegressor(n_estimators=60, max_depth=3).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9

    def test_more_rounds_reduce_training_error(self, regression_data):
        X, y = regression_data
        few = GradientBoostingRegressor(n_estimators=5, max_depth=3).fit(X, y)
        many = GradientBoostingRegressor(n_estimators=80, max_depth=3).fit(X, y)
        assert r2_score(y, many.predict(X)) > r2_score(y, few.predict(X))

    def test_base_prediction_is_mean(self, regression_data):
        X, y = regression_data
        model = GradientBoostingRegressor(n_estimators=1).fit(X, y)
        assert model.base_prediction_ == pytest.approx(float(np.mean(y)))

    def test_learning_rate_shrinks_steps(self, regression_data):
        X, y = regression_data
        slow = GradientBoostingRegressor(n_estimators=5, learning_rate=0.01).fit(X, y)
        fast = GradientBoostingRegressor(n_estimators=5, learning_rate=0.5).fit(X, y)
        # With few rounds, the tiny learning rate barely moves off the mean.
        slow_spread = np.ptp(slow.predict(X))
        fast_spread = np.ptp(fast.predict(X))
        assert slow_spread < fast_spread

    def test_subsampling_still_fits(self, regression_data):
        X, y = regression_data
        model = GradientBoostingRegressor(
            n_estimators=40, subsample=0.6, random_state=0
        ).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.7

    def test_invalid_subsample(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError, match="subsample"):
            GradientBoostingRegressor(subsample=0.0).fit(X, y)

    def test_gamma_prunes_splits(self, regression_data):
        X, y = regression_data
        pruned = GradientBoostingRegressor(n_estimators=10, gamma=1e9).fit(X, y)
        # With an enormous split penalty, every tree is a stump predicting ~0,
        # so the ensemble output stays at the base prediction.
        np.testing.assert_allclose(
            pruned.predict(X), pruned.base_prediction_, rtol=0, atol=1e-6
        )

    def test_reg_lambda_shrinks_leaf_values(self, regression_data):
        X, y = regression_data
        light = GradientBoostingRegressor(n_estimators=10, reg_lambda=0.0).fit(X, y)
        heavy = GradientBoostingRegressor(n_estimators=10, reg_lambda=1e4).fit(X, y)
        light_spread = np.ptp(light.predict(X))
        heavy_spread = np.ptp(heavy.predict(X))
        assert heavy_spread < light_spread


class TestHistGradientBoosting:
    def test_fits_nonlinear_data(self, regression_data):
        X, y = regression_data
        model = HistGradientBoostingRegressor(n_estimators=60, max_depth=4).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.85

    def test_binning_respects_max_bins(self, regression_data):
        X, y = regression_data
        model = HistGradientBoostingRegressor(max_bins=8, n_estimators=5).fit(X, y)
        binned = model._transform_bins(X)
        assert binned.max() < 8

    def test_invalid_max_bins(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError, match="max_bins"):
            HistGradientBoostingRegressor(max_bins=1).fit(X, y)

    def test_predictions_close_to_exact_boosting(self, regression_data):
        X, y = regression_data
        exact = GradientBoostingRegressor(n_estimators=40, max_depth=4).fit(X, y)
        hist = HistGradientBoostingRegressor(n_estimators=40, max_depth=4, max_bins=64).fit(X, y)
        exact_r2 = r2_score(y, exact.predict(X))
        hist_r2 = r2_score(y, hist.predict(X))
        assert abs(exact_r2 - hist_r2) < 0.15

    def test_feature_mismatch_raises(self, regression_data):
        X, y = regression_data
        model = HistGradientBoostingRegressor(n_estimators=3).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(X[:, :2])

    def test_handles_constant_feature(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([np.ones(100), rng.normal(size=100)])
        y = 2.0 * X[:, 1]
        model = HistGradientBoostingRegressor(n_estimators=20).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.8
