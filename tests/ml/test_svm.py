"""Tests for support vector regression."""

import numpy as np
import pytest

from repro.ml.metrics import r2_score
from repro.ml.svm import SVR, _kernel_matrix


class TestKernels:
    def test_linear_kernel_is_dot_product(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        K = _kernel_matrix(X, X, "linear", gamma=1.0, degree=3, coef0=0.0)
        np.testing.assert_allclose(K, X @ X.T)

    def test_rbf_kernel_diagonal_is_one(self):
        X = np.random.default_rng(0).normal(size=(5, 3))
        K = _kernel_matrix(X, X, "rbf", gamma=0.5, degree=3, coef0=0.0)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_rbf_kernel_bounded(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        K = _kernel_matrix(X, X, "rbf", gamma=0.5, degree=3, coef0=0.0)
        assert np.all(K <= 1.0 + 1e-12)
        assert np.all(K > 0.0)

    def test_poly_kernel_degree_one_matches_linear(self):
        X = np.random.default_rng(1).normal(size=(4, 2))
        linear = _kernel_matrix(X, X, "linear", 1.0, 3, 0.0)
        poly = _kernel_matrix(X, X, "poly", gamma=1.0, degree=1, coef0=0.0)
        np.testing.assert_allclose(linear, poly)

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError, match="kernel"):
            _kernel_matrix(np.zeros((2, 2)), np.zeros((2, 2)), "sigmoid", 1.0, 3, 0.0)


class TestSVR:
    def test_fits_linear_trend(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(80, 2))
        y = 3.0 * X[:, 0] - 2.0 * X[:, 1]
        model = SVR(kernel="linear", C=10.0, epsilon=0.01, max_iter=1000).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9

    def test_rbf_fits_nonlinear_function(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(120, 1))
        y = np.sin(2.0 * X[:, 0])
        model = SVR(kernel="rbf", C=50.0, epsilon=0.01, gamma=2.0, max_iter=2000).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.8

    def test_dual_coefficients_respect_box_constraint(self, regression_data):
        X, y = regression_data
        model = SVR(C=2.0, max_iter=200).fit(X, y)
        assert np.all(np.abs(model.dual_coef_) <= 2.0 + 1e-9)

    def test_support_vectors_subset_of_training(self, regression_data):
        X, y = regression_data
        model = SVR(C=1.0, max_iter=200).fit(X, y)
        assert model.support_.size <= X.shape[0]

    def test_wide_epsilon_gives_flat_model(self, regression_data):
        X, y = regression_data
        model = SVR(epsilon=1e6, C=1.0, max_iter=200).fit(X, y)
        # With everything inside the tube the dual solution is all zeros.
        np.testing.assert_allclose(model.dual_coef_, 0.0, atol=1e-9)
        np.testing.assert_allclose(model.predict(X), model.intercept_)

    def test_gamma_scale_and_auto(self, regression_data):
        X, y = regression_data
        for gamma in ("scale", "auto"):
            model = SVR(gamma=gamma, max_iter=50).fit(X, y)
            assert model._gamma_ > 0

    def test_invalid_parameters(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError, match="C must be positive"):
            SVR(C=0.0).fit(X, y)
        with pytest.raises(ValueError, match="epsilon"):
            SVR(epsilon=-1.0).fit(X, y)
        with pytest.raises(ValueError, match="gamma"):
            SVR(gamma=-2.0).fit(X, y)
