"""Tests for the ``adsala`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def installed_dir(tmp_path_factory):
    """A tiny bundle installed once through the CLI and shared read-only."""
    directory = tmp_path_factory.mktemp("cli") / "bundle"
    exit_code = main(
        [
            "install",
            "--platform", "laptop",
            "--routines", "dgemm", "dsyrk",
            "--output", str(directory),
            "--samples", "8",
            "--threads-per-shape", "3",
            "--test-shapes", "4",
            "--bundle-version", "2",
        ]
    )
    assert exit_code == 0
    return directory


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_install_arguments(self):
        args = build_parser().parse_args(
            ["install", "--platform", "gadi", "--output", "/tmp/x", "--samples", "10"]
        )
        assert args.command == "install"
        assert args.platform == "gadi"
        assert args.samples == 10

    def test_bench_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "table99"])


class TestPlatformsCommand:
    def test_lists_all_presets(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "setonix" in out and "gadi" in out and "laptop" in out


class TestRoutinesCommand:
    def test_table_lists_builtin_catalog(self, capsys):
        assert main(["routines"]) == 0
        out = capsys.readouterr().out
        assert "Registered routines" in out
        assert "dgemm" in out
        assert "builtin-blas3" in out

    def test_json_mode_reports_provenance(self, capsys):
        assert main(["routines", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        rows = {row["key"]: row for row in report["routines"]}
        assert len(rows) >= 12
        assert rows["dgemm"]["source"] == "builtin"
        assert rows["dgemm"]["simulator"] == "yes"
        assert rows["strsm"]["dims"] == "m n"


class TestBenchCommand:
    def test_static_tables_print(self, capsys):
        for table in ("table1", "table2", "table3"):
            assert main(["bench", table]) == 0
        out = capsys.readouterr().out
        assert "GEMM" in out
        assert "LinearRegression" in out
        assert "memory_footprint" in out


class TestInstallAndPredict:
    def test_install_then_predict_roundtrip(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        exit_code = main(
            [
                "install",
                "--platform", "laptop",
                "--routines", "dgemm",
                "--output", str(bundle_dir),
                "--samples", "8",
                "--threads-per-shape", "3",
                "--test-shapes", "4",
            ]
        )
        assert exit_code == 0
        assert (bundle_dir / "bundle.json").exists()
        out = capsys.readouterr().out
        assert "dgemm" in out

        exit_code = main(
            [
                "predict",
                "--bundle", str(bundle_dir),
                "--routine", "dgemm",
                "--dims", "512", "256", "128",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "use" in out and "threads" in out

    def test_predict_with_wrong_dimension_count(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        main(
            [
                "install",
                "--platform", "laptop",
                "--routines", "dsyrk",
                "--output", str(bundle_dir),
                "--samples", "6",
                "--threads-per-shape", "3",
                "--test-shapes", "3",
            ]
        )
        capsys.readouterr()
        exit_code = main(
            ["predict", "--bundle", str(bundle_dir), "--routine", "dsyrk", "--dims", "100"]
        )
        assert exit_code == 2
        assert "expects" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_generated_workload(self, installed_dir, capsys):
        exit_code = main(
            [
                "serve",
                "--bundle", str(installed_dir),
                "--requests", "48",
                "--mix", "cycling",
                "--batch-size", "16",
                "--seed", "3",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "plans/sec" in out
        assert "bundle v2, schema v3" in out
        assert "dgemm" in out and "dsyrk" in out

    def test_serve_workload_file(self, installed_dir, tmp_path, capsys):
        from repro.serving.workload import generate_workload, save_workload

        workload_path = tmp_path / "requests.jsonl"
        save_workload(
            workload_path,
            generate_workload(["dgemm", "dsyrk"], 20, "uniform", seed=1),
        )
        exit_code = main(
            ["serve", "--bundle", str(installed_dir), "--workload", str(workload_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Served 20 plans" in out

    def test_serve_observe_reports_drift_section(self, installed_dir, capsys):
        exit_code = main(
            [
                "serve",
                "--bundle", str(installed_dir),
                "--requests", "32",
                "--observe",
                "--seed", "5",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "mean_err" in out
        assert "drift" in out.lower()

    def test_serve_empty_workload_fails(self, installed_dir, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        exit_code = main(
            ["serve", "--bundle", str(installed_dir), "--workload", str(empty)]
        )
        assert exit_code == 2
        assert "empty" in capsys.readouterr().err

    def test_serve_sharded_multi_client(self, installed_dir, capsys):
        exit_code = main(
            [
                "serve",
                "--bundle", str(installed_dir),
                "--requests", "64",
                "--mix", "skewed",
                "--shards", "2",
                "--clients", "4",
                "--seed", "7",
                "--observe",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Served 64 plans" in out  # nothing lost across clients
        assert "2 thread shards x 4 clients" in out
        assert "0 shed (block mode" in out

    def test_serve_process_backend(self, installed_dir, capsys):
        exit_code = main(
            [
                "serve",
                "--bundle", str(installed_dir),
                "--requests", "48",
                "--mix", "cycling",
                "--shards", "2",
                "--backend", "process",
                "--clients", "2",
                "--seed", "11",
                "--observe",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Served 48 plans" in out  # zero lost, zero shed
        assert "2 process shards x 2 clients" in out
        assert "0 shed (block mode" in out

    def test_serve_invalid_shard_count_fails(self, installed_dir, capsys):
        exit_code = main(
            ["serve", "--bundle", str(installed_dir), "--shards", "0"]
        )
        assert exit_code == 2
        assert "--shards" in capsys.readouterr().err


class TestBundleCommand:
    def test_inspect(self, installed_dir, capsys):
        assert main(["bundle", "inspect", "--bundle", str(installed_dir)]) == 0
        out = capsys.readouterr().out
        assert "schema version: 3" in out
        assert "sha256" not in out  # checksums shown truncated, without prefix
        assert "dgemm" in out

    def test_verify_ok(self, installed_dir, capsys):
        assert main(["bundle", "verify", "--bundle", str(installed_dir)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_detects_corruption(self, installed_dir, tmp_path, capsys):
        import shutil

        corrupt = tmp_path / "corrupt"
        shutil.copytree(installed_dir, corrupt)
        (corrupt / "dgemm.model.pkl").write_bytes(b"junk")
        assert main(["bundle", "verify", "--bundle", str(corrupt)]) == 1
        captured = capsys.readouterr()
        assert "checksum mismatch" in captured.out
        assert "FAILED" in captured.err

    def test_migrate_upgrades_v1_manifest(self, installed_dir, tmp_path, capsys):
        import shutil

        legacy = tmp_path / "legacy"
        shutil.copytree(installed_dir, legacy)
        manifest_path = legacy / "bundle.json"
        manifest = json.loads(manifest_path.read_text())
        manifest.pop("schema_version")
        manifest.pop("bundle_version")
        manifest["format_version"] = 1
        for meta in manifest["routines"].values():
            meta.pop("checksum")
        manifest_path.write_text(json.dumps(manifest))

        assert main(["bundle", "verify", "--bundle", str(legacy)]) == 1
        capsys.readouterr()
        assert main(["bundle", "migrate", "--bundle", str(legacy)]) == 0
        assert "v1 -> v3" in capsys.readouterr().out
        assert main(["bundle", "verify", "--bundle", str(legacy)]) == 0

    def test_missing_bundle_reports_error(self, tmp_path, capsys):
        assert main(["bundle", "inspect", "--bundle", str(tmp_path / "nope")]) == 1
        assert "error" in capsys.readouterr().err


class TestRegistryRoundTripViaCli:
    def test_cli_bundle_serves_through_registry(self, installed_dir):
        from repro.serving.engine import ServingEngine
        from repro.serving.registry import ModelRegistry

        registry = ModelRegistry()
        handle = registry.register(installed_dir, name="cli")
        assert handle.bundle_version == 2
        engine = ServingEngine(handle)
        plan = engine.plan("dgemm", m=128, k=128, n=64)
        assert plan.threads >= 1
        assert handle.loaded_routines == ["dgemm"]


class TestServeErrorPaths:
    def test_unknown_routine_reports_clean_error(self, installed_dir, capsys):
        exit_code = main(
            ["serve", "--bundle", str(installed_dir), "--routines", "bogus"]
        )
        assert exit_code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_zero_requests_reports_clean_error(self, installed_dir, capsys):
        exit_code = main(
            ["serve", "--bundle", str(installed_dir), "--requests", "0"]
        )
        assert exit_code == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_bundle_reports_clean_error(self, tmp_path, capsys):
        exit_code = main(["serve", "--bundle", str(tmp_path / "nope")])
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err


@pytest.fixture()
def adaptable_dir(installed_dir, tmp_path):
    """A private copy of the installed bundle (adaptation mutates it)."""
    import shutil

    target = tmp_path / "adaptable"
    shutil.copytree(installed_dir, target)
    return target


ADAPT_ARGS = [
    "--requests", "200",
    "--drift-clock", "0.55",
    "--drift-sync", "2.5",
    "--regather-shapes", "10",
    "--threads-per-shape", "4",
    "--test-shapes", "6",
    "--candidates", "LinearRegression", "DecisionTree",
    "--max-latency-regression", "2.0",
]


class TestAdaptCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["adapt", "--bundle", "/tmp/x"])
        assert args.command == "adapt"
        assert args.mix == "skewed"
        assert args.drift_clock == 1.0
        assert not args.watch

    def test_no_drift_means_no_promotion(self, adaptable_dir, capsys):
        exit_code = main(["adapt", "--bundle", str(adaptable_dir), "--requests", "64"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "nothing to do" in out
        assert "Bundle at version v2" in out  # installed at --bundle-version 2

    def test_injected_drift_promotes_and_recovers(self, adaptable_dir, capsys):
        exit_code = main(
            ["adapt", "--bundle", str(adaptable_dir), "--require-promotion"]
            + ADAPT_ARGS
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "Injected drift" in out
        assert "promoted" in out
        assert "Bundle at version v3" in out
        assert (adaptable_dir / "adaptation_log.jsonl").exists()
        assert (adaptable_dir / "history" / "v2").is_dir()

    def test_require_promotion_fails_without_drift(self, adaptable_dir, capsys):
        exit_code = main(
            [
                "adapt", "--bundle", str(adaptable_dir),
                "--requests", "64", "--require-promotion",
            ]
        )
        assert exit_code == 1
        assert "did not promote" in capsys.readouterr().err

    def test_missing_bundle_reports_clean_error(self, tmp_path, capsys):
        exit_code = main(["adapt", "--bundle", str(tmp_path / "nope")])
        assert exit_code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestRollbackCommand:
    def test_rollback_after_adapt_restores_bytes(self, adaptable_dir, capsys):
        before = {
            name: (adaptable_dir / name).read_bytes()
            for name in ("bundle.json", "dgemm.model.pkl", "dsyrk.model.pkl")
        }
        assert (
            main(["adapt", "--bundle", str(adaptable_dir)] + ADAPT_ARGS) == 0
        )
        capsys.readouterr()
        assert main(["bundle", "rollback", "--bundle", str(adaptable_dir)]) == 0
        out = capsys.readouterr().out
        assert "v3 -> v2" in out
        after = {
            name: (adaptable_dir / name).read_bytes()
            for name in ("bundle.json", "dgemm.model.pkl", "dsyrk.model.pkl")
        }
        assert after == before

    def test_rollback_without_history_fails_cleanly(self, adaptable_dir, capsys):
        exit_code = main(["bundle", "rollback", "--bundle", str(adaptable_dir)])
        assert exit_code == 1
        assert "No archived version" in capsys.readouterr().err

    def test_rollback_to_explicit_version(self, adaptable_dir, capsys):
        assert (
            main(["adapt", "--bundle", str(adaptable_dir)] + ADAPT_ARGS) == 0
        )
        assert main(["bundle", "rollback", "--bundle", str(adaptable_dir)]) == 0
        capsys.readouterr()
        exit_code = main(
            [
                "bundle", "rollback", "--bundle", str(adaptable_dir),
                "--to-version", "3",
            ]
        )
        assert exit_code == 0
        assert "v2 -> v3" in capsys.readouterr().out


class TestServeShowsAdaptationState:
    def test_observe_reports_lifecycle_from_audit_trail(
        self, adaptable_dir, capsys
    ):
        assert (
            main(["adapt", "--bundle", str(adaptable_dir)] + ADAPT_ARGS) == 0
        )
        capsys.readouterr()
        exit_code = main(
            [
                "serve", "--bundle", str(adaptable_dir),
                "--requests", "64", "--observe",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Adaptation state" in out
        assert "promoted" in out
        # The promoted, calibrated bundle serves without drift flags.
        assert "No routine drifted" in out

    def test_observe_without_audit_trail_stays_quiet(self, installed_dir, capsys):
        exit_code = main(
            [
                "serve", "--bundle", str(installed_dir),
                "--requests", "32", "--observe",
            ]
        )
        assert exit_code == 0
        assert "Adaptation state" not in capsys.readouterr().out


class TestObservabilityCli:
    def test_parser_accepts_observability_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--bundle", "/b", "--metrics-port", "0",
                "--journal", "/tmp/j.jsonl", "--journal-max-bytes", "1000",
            ]
        )
        assert args.metrics_port == 0 and args.journal == "/tmp/j.jsonl"
        args = build_parser().parse_args(
            ["analyze", "--journal", "/tmp/j.jsonl", "--window", "0.5", "--json"]
        )
        assert args.command == "analyze" and args.as_json is True
        with pytest.raises(SystemExit):  # --journal is required
            build_parser().parse_args(["analyze"])

    def test_serve_journal_metrics_then_analyze(self, installed_dir, tmp_path, capsys):
        journal = tmp_path / "journal.jsonl"
        exit_code = main(
            [
                "serve",
                "--bundle", str(installed_dir),
                "--requests", "48",
                "--mix", "cycling",
                "--shards", "2",
                "--clients", "2",
                "--seed", "9",
                "--observe",
                "--journal", str(journal),
                "--metrics-port", "0",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "metrics: http://127.0.0.1:" in out
        assert f"journal: {journal}" in out
        assert journal.exists()

        from repro.obs.journal import read_journal

        rows = list(read_journal(journal))
        events = {row["event"] for row in rows}
        assert {"run_start", "plan", "observation", "run_end"} <= events
        plans = [row for row in rows if row["event"] == "plan"]
        assert len(plans) == 48
        assert all(row["version"] == 2 for row in plans)  # bundle v2 fixture
        assert all(row["shard"] in (0, 1) for row in plans)

        assert main(["analyze", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "Realized speedup vs max-threads baseline" in out
        assert "observed" in out  # --observe gives the measured basis
        assert "dgemm" in out and "dsyrk" in out
        assert "Prediction error by routine x bundle version" in out
        assert "Supervision" in out and "Capacity" in out

    def test_serve_process_backend_with_observability(
        self, installed_dir, tmp_path, capsys
    ):
        journal = tmp_path / "journal.jsonl"
        exit_code = main(
            [
                "serve",
                "--bundle", str(installed_dir),
                "--requests", "32",
                "--shards", "2",
                "--backend", "process",
                "--clients", "2",
                "--seed", "13",
                "--journal", str(journal),
                "--metrics-port", "0",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Served 32 plans" in out
        assert "metrics: http://127.0.0.1:" in out
        assert main(["analyze", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        # No --observe: speedup falls back to the model's own predictions.
        assert "predicted" in out

    def test_analyze_json_output(self, installed_dir, tmp_path, capsys):
        journal = tmp_path / "journal.jsonl"
        assert main(
            [
                "serve",
                "--bundle", str(installed_dir),
                "--requests", "24",
                "--seed", "4",
                "--observe",
                "--journal", str(journal),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["analyze", "--journal", str(journal), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["plans"] == 24
        assert set(report["speedup_by_routine"]) <= {"dgemm", "dsyrk"}
        for entry in report["speedup_by_routine"].values():
            assert entry["basis"] == "observed"
            assert entry["speedup"] > 0
        assert report["capacity"]["windows"]
        # Single-engine run: the run_end snapshot has no supervision or
        # admission block, just the request total.
        assert report["supervision"] == {"requests": 24}

    def test_analyze_missing_journal_fails(self, tmp_path, capsys):
        exit_code = main(["analyze", "--journal", str(tmp_path / "nope.jsonl")])
        assert exit_code == 1
        assert "no journal" in capsys.readouterr().err
