"""Tests for the ``adsala`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_install_arguments(self):
        args = build_parser().parse_args(
            ["install", "--platform", "gadi", "--output", "/tmp/x", "--samples", "10"]
        )
        assert args.command == "install"
        assert args.platform == "gadi"
        assert args.samples == 10

    def test_bench_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "table99"])


class TestPlatformsCommand:
    def test_lists_all_presets(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "setonix" in out and "gadi" in out and "laptop" in out


class TestBenchCommand:
    def test_static_tables_print(self, capsys):
        for table in ("table1", "table2", "table3"):
            assert main(["bench", table]) == 0
        out = capsys.readouterr().out
        assert "GEMM" in out
        assert "LinearRegression" in out
        assert "memory_footprint" in out


class TestInstallAndPredict:
    def test_install_then_predict_roundtrip(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        exit_code = main(
            [
                "install",
                "--platform", "laptop",
                "--routines", "dgemm",
                "--output", str(bundle_dir),
                "--samples", "8",
                "--threads-per-shape", "3",
                "--test-shapes", "4",
            ]
        )
        assert exit_code == 0
        assert (bundle_dir / "bundle.json").exists()
        out = capsys.readouterr().out
        assert "dgemm" in out

        exit_code = main(
            [
                "predict",
                "--bundle", str(bundle_dir),
                "--routine", "dgemm",
                "--dims", "512", "256", "128",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "use" in out and "threads" in out

    def test_predict_with_wrong_dimension_count(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        main(
            [
                "install",
                "--platform", "laptop",
                "--routines", "dsyrk",
                "--output", str(bundle_dir),
                "--samples", "6",
                "--threads-per-shape", "3",
                "--test-shapes", "3",
            ]
        )
        capsys.readouterr()
        exit_code = main(
            ["predict", "--bundle", str(bundle_dir), "--routine", "dsyrk", "--dims", "100"]
        )
        assert exit_code == 2
        assert "expects" in capsys.readouterr().err
