"""Tests for the runtime thread-count predictor and its last-call cache."""

import numpy as np
import pytest

from repro.core.features import feature_names
from repro.core.gather import DataGatherer
from repro.core.predictor import ThreadPredictor
from repro.ml.tree import DecisionTreeRegressor
from repro.preprocessing.pipeline import PreprocessingPipeline


@pytest.fixture(scope="module")
def trained_predictor(laptop):
    """A predictor trained on a small simulated dgemm campaign."""
    from repro.machine.simulator import TimingSimulator

    simulator = TimingSimulator(laptop, seed=0)
    dataset = DataGatherer(simulator, "dgemm", n_shapes=20, threads_per_shape=6, seed=0).gather()
    pipeline = PreprocessingPipeline(feature_names=dataset.feature_names, remove_outliers=False)
    X, y = pipeline.fit_transform(dataset.feature_matrix(), dataset.target())
    model = DecisionTreeRegressor(max_depth=10).fit(X, y)
    return ThreadPredictor(
        routine="dgemm",
        pipeline=pipeline,
        model=model,
        candidate_threads=laptop.candidate_thread_counts(),
        model_name="DecisionTree",
    )


DIMS = {"m": 200, "k": 300, "n": 150}


class TestPrediction:
    def test_predict_runtimes_one_per_candidate(self, trained_predictor, laptop):
        runtimes = trained_predictor.predict_runtimes(DIMS)
        assert runtimes.shape == (laptop.max_threads,)
        assert np.all(np.isfinite(runtimes))

    def test_plan_selects_argmin(self, trained_predictor):
        runtimes = trained_predictor.predict_runtimes(DIMS)
        plan = trained_predictor.plan(DIMS, use_cache=False)
        assert plan.threads == trained_predictor.candidate_threads[int(np.argmin(runtimes))]
        assert plan.predicted_time == pytest.approx(runtimes.min())

    def test_plan_threads_within_candidates(self, trained_predictor, laptop):
        plan = trained_predictor.plan(DIMS, use_cache=False)
        assert 1 <= plan.threads <= laptop.max_threads

    def test_predict_threads_shortcut(self, trained_predictor):
        assert trained_predictor.predict_threads(DIMS) == trained_predictor.plan(DIMS).threads


class TestCache:
    def test_repeated_identical_call_hits_cache(self, trained_predictor):
        trained_predictor.clear_cache()
        evaluations_before = trained_predictor.n_model_evaluations
        first = trained_predictor.plan(DIMS)
        second = trained_predictor.plan(DIMS)
        assert not first.from_cache
        assert second.from_cache
        assert second.threads == first.threads
        assert trained_predictor.n_model_evaluations == evaluations_before + 1
        assert trained_predictor.n_cache_hits >= 1

    def test_different_dims_miss_cache(self, trained_predictor):
        trained_predictor.clear_cache()
        trained_predictor.plan(DIMS)
        other = trained_predictor.plan({"m": 512, "k": 64, "n": 64})
        assert not other.from_cache

    def test_cache_can_be_bypassed(self, trained_predictor):
        trained_predictor.clear_cache()
        trained_predictor.plan(DIMS)
        plan = trained_predictor.plan(DIMS, use_cache=False)
        assert not plan.from_cache

    def test_clear_cache(self, trained_predictor):
        trained_predictor.plan(DIMS)
        trained_predictor.clear_cache()
        assert not trained_predictor.plan(DIMS).from_cache


class TestEvalTime:
    def test_measured_eval_time_positive(self, trained_predictor):
        t = trained_predictor.measure_eval_time(DIMS, repeats=2)
        assert 0 < t < 1.0

    def test_default_dims_used_when_missing(self, trained_predictor):
        assert trained_predictor.measure_eval_time(repeats=1) > 0

    def test_invalid_repeats(self, trained_predictor):
        with pytest.raises(ValueError):
            trained_predictor.measure_eval_time(DIMS, repeats=0)


class TestValidation:
    def test_empty_candidates_rejected(self, trained_predictor):
        with pytest.raises(ValueError, match="candidate_threads"):
            ThreadPredictor(
                routine="dgemm",
                pipeline=trained_predictor.pipeline,
                model=trained_predictor.model,
                candidate_threads=[],
            )

    def test_nonpositive_candidates_rejected(self, trained_predictor):
        with pytest.raises(ValueError, match="positive"):
            ThreadPredictor(
                routine="dgemm",
                pipeline=trained_predictor.pipeline,
                model=trained_predictor.model,
                candidate_threads=[0, 1],
            )

    def test_candidates_deduplicated_and_sorted(self, trained_predictor):
        predictor = ThreadPredictor(
            routine="dgemm",
            pipeline=trained_predictor.pipeline,
            model=trained_predictor.model,
            candidate_threads=[4, 2, 4, 1],
        )
        assert predictor.candidate_threads == [1, 2, 4]

    def test_feature_names_match_routine(self, trained_predictor):
        assert trained_predictor.feature_names == feature_names("dgemm")
