"""Property-based tests (hypothesis) for the ADSALA core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.blas.flops import flop_count, memory_bytes, memory_words
from repro.core.features import compute_features, feature_matrix_for_threads, feature_names
from repro.core.sampling import DomainSampler, ScrambledHaltonSequence
from repro.machine.perfmodel import PerformanceModel
from repro.machine.platforms import LAPTOP

dims_3d = st.fixed_dictionaries(
    {
        "m": st.integers(1, 5000),
        "k": st.integers(1, 5000),
        "n": st.integers(1, 5000),
    }
)
dims_2d_syrk = st.fixed_dictionaries(
    {"n": st.integers(1, 5000), "k": st.integers(1, 5000)}
)
threads = st.integers(1, 16)


class TestFeatureProperties:
    @given(dims_3d, threads)
    @settings(max_examples=60, deadline=None)
    def test_gemm_features_finite_positive_and_consistent(self, dims, nt):
        vector = compute_features("dgemm", dims, nt)
        names = feature_names("dgemm")
        assert vector.shape == (len(names),)
        assert np.all(np.isfinite(vector)) and np.all(vector > 0)
        named = dict(zip(names, vector))
        assert named["memory_footprint"] == memory_words("dgemm", dims)
        assert named["m*k*n"] == dims["m"] * dims["k"] * dims["n"]
        assert np.isclose(named["m*k*n/nt"] * nt, named["m*k*n"], rtol=1e-12)

    @given(dims_2d_syrk, threads)
    @settings(max_examples=60, deadline=None)
    def test_two_dim_features_scale_inversely_with_threads(self, dims, nt):
        base = compute_features("dsyrk", dims, 1)
        scaled = compute_features("dsyrk", dims, nt)
        names = feature_names("dsyrk")
        idx = names.index("memory_footprint/nt")
        assert np.isclose(scaled[idx] * nt, base[idx])

    @given(dims_3d)
    @settings(max_examples=30, deadline=None)
    def test_vectorised_matrix_matches_scalar_path(self, dims):
        nts = np.array([1, 2, 5, 9, 16])
        matrix = feature_matrix_for_threads("dgemm", dims, nts)
        for row, nt in zip(matrix, nts):
            np.testing.assert_allclose(row, compute_features("dgemm", dims, int(nt)))


class TestAccountingProperties:
    @given(dims_3d)
    @settings(max_examples=60, deadline=None)
    def test_flops_and_memory_monotone_in_every_dimension(self, dims):
        for key in dims:
            grown = dict(dims, **{key: dims[key] + 1})
            assert flop_count("dgemm", grown) > flop_count("dgemm", dims)
            assert memory_bytes("dgemm", grown) > memory_bytes("dgemm", dims)


class TestPerfModelProperties:
    model = PerformanceModel(LAPTOP)

    @given(dims_3d.filter(lambda d: max(d.values()) <= 2048), threads)
    @settings(max_examples=40, deadline=None)
    def test_breakdown_components_positive_and_finite(self, dims, nt):
        breakdown = self.model.breakdown("dgemm", dims, nt)
        for value in (breakdown.kernel, breakdown.copy, breakdown.sync, breakdown.other):
            assert np.isfinite(value) and value > 0

    @given(dims_2d_syrk.filter(lambda d: max(d.values()) <= 2048), threads)
    @settings(max_examples=40, deadline=None)
    def test_runtime_scales_with_problem_volume(self, dims, nt):
        bigger = {"n": dims["n"] * 2, "k": dims["k"] * 2}
        assert self.model.time("dsyrk", bigger, nt) > self.model.time("dsyrk", dims, nt)


class TestSamplingProperties:
    @given(st.integers(0, 50), st.integers(2, 40))
    @settings(max_examples=30, deadline=None)
    def test_scrambled_halton_stays_in_unit_cube(self, seed, n):
        points = ScrambledHaltonSequence([2, 3, 4], seed=seed).take(n)
        assert points.shape == (n, 3)
        assert np.all((points >= 0.0) & (points < 1.0))

    @given(st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_domain_sampler_always_respects_cap_and_bounds(self, seed):
        sampler = DomainSampler("ssymm", memory_cap_bytes=200e6, min_dim=16, seed=seed)
        for dims in sampler.sample(10):
            assert memory_bytes("ssymm", dims, "s") <= 200e6
            assert all(16 <= v <= sampler.max_dim for v in dims.values())
