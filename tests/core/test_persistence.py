"""Tests for saving and loading installation bundles."""

import json

import numpy as np
import pytest

from repro.core.persistence import (
    SCHEMA_VERSION,
    BundleFormatError,
    load_bundle,
    migrate_manifest,
    read_manifest,
    save_bundle,
    verify_bundle,
)


def _downgrade_to_v1(directory, strip_optional=False):
    """Rewrite a saved bundle's manifest in the original seed (v1) format."""
    manifest_path = directory / "bundle.json"
    manifest = json.loads(manifest_path.read_text())
    manifest.pop("schema_version", None)
    manifest.pop("bundle_version", None)
    manifest["format_version"] = 1
    for meta in manifest["routines"].values():
        meta.pop("checksum", None)
        if strip_optional:
            meta.pop("selection", None)
            meta.pop("dataset", None)
            meta.pop("test_shapes", None)
    manifest_path.write_text(json.dumps(manifest))
    return manifest_path


@pytest.fixture()
def saved_dir(small_bundle, tmp_path):
    return save_bundle(small_bundle, tmp_path / "bundle")


class TestSave:
    def test_manifest_written(self, saved_dir):
        manifest_path = saved_dir / "bundle.json"
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["platform"] == "laptop"
        assert set(manifest["routines"]) == {"dgemm", "dsyrk"}

    def test_model_files_written(self, saved_dir):
        assert (saved_dir / "dgemm.model.pkl").exists()
        assert (saved_dir / "dsyrk.model.pkl").exists()

    def test_manifest_contains_preprocessing_config(self, saved_dir):
        manifest = json.loads((saved_dir / "bundle.json").read_text())
        preprocessing = manifest["routines"]["dgemm"]["preprocessing"]
        assert "feature_names" in preprocessing
        assert "correlation" in preprocessing

    def test_selection_summary_serialised(self, saved_dir):
        manifest = json.loads((saved_dir / "bundle.json").read_text())
        selection = manifest["routines"]["dgemm"]["selection"]
        assert selection["best_model_name"]
        assert len(selection["evaluations"]) == 2


class TestLoad:
    def test_roundtrip_preserves_structure(self, small_bundle, saved_dir):
        restored = load_bundle(saved_dir)
        assert restored.platform.name == small_bundle.platform.name
        assert restored.installed_routines == small_bundle.installed_routines
        assert restored.best_models() == small_bundle.best_models()

    def test_roundtrip_preserves_predictions(self, small_bundle, saved_dir):
        restored = load_bundle(saved_dir)
        dims = {"m": 300, "k": 200, "n": 100}
        original_runtimes = small_bundle.predictor("dgemm").predict_runtimes(dims)
        restored_runtimes = restored.predictor("dgemm").predict_runtimes(dims)
        np.testing.assert_allclose(restored_runtimes, original_runtimes, rtol=1e-12)

    def test_roundtrip_preserves_thread_choice(self, small_bundle, saved_dir):
        restored = load_bundle(saved_dir)
        for routine in small_bundle.installed_routines:
            dims_list = small_bundle.routines[routine].test_shapes[:3]
            for dims in dims_list:
                assert restored.predictor(routine).predict_threads(
                    dims, use_cache=False
                ) == small_bundle.predictor(routine).predict_threads(dims, use_cache=False)

    def test_roundtrip_preserves_datasets(self, small_bundle, saved_dir):
        restored = load_bundle(saved_dir)
        original = small_bundle.routines["dgemm"].dataset
        loaded = restored.routines["dgemm"].dataset
        assert len(loaded) == len(original)
        np.testing.assert_allclose(loaded.target(), original.target())

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path / "does-not-exist")

    def test_settings_survive_roundtrip(self, small_bundle, saved_dir):
        restored = load_bundle(saved_dir)
        assert restored.settings["n_samples"] == small_bundle.settings["n_samples"]


class TestSchemaVersioning:
    def test_manifest_carries_schema_and_checksums(self, saved_dir):
        manifest = json.loads((saved_dir / "bundle.json").read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["bundle_version"] == 1
        for meta in manifest["routines"].values():
            assert meta["checksum"].startswith("sha256:")

    def test_bundle_version_parameter(self, small_bundle, tmp_path):
        directory = save_bundle(small_bundle, tmp_path / "v5", bundle_version=5)
        assert read_manifest(directory)["bundle_version"] == 5

    def test_newer_schema_rejected_with_clear_error(self, saved_dir):
        manifest_path = saved_dir / "bundle.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(BundleFormatError, match="schema version"):
            load_bundle(saved_dir)

    def test_invalid_json_rejected(self, saved_dir):
        (saved_dir / "bundle.json").write_text("{ not json")
        with pytest.raises(BundleFormatError, match="not valid JSON"):
            load_bundle(saved_dir)

    def test_missing_required_keys_rejected(self, saved_dir):
        (saved_dir / "bundle.json").write_text(json.dumps({"schema_version": 2}))
        with pytest.raises(BundleFormatError, match="required keys"):
            load_bundle(saved_dir)


class TestChecksums:
    def test_corrupt_model_raises_clear_error(self, saved_dir):
        (saved_dir / "dgemm.model.pkl").write_bytes(b"corrupted bytes")
        with pytest.raises(BundleFormatError, match="Checksum mismatch"):
            load_bundle(saved_dir)

    def test_checksum_check_can_be_disabled(self, saved_dir):
        # Flipping verify_checksums off tolerates a stale checksum as long
        # as the pickle itself still parses.
        manifest_path = saved_dir / "bundle.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["routines"]["dgemm"]["checksum"] = "sha256:" + "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(BundleFormatError):
            load_bundle(saved_dir)
        assert load_bundle(saved_dir, verify_checksums=False)

    def test_missing_model_file_raises(self, saved_dir):
        (saved_dir / "dsyrk.model.pkl").unlink()
        with pytest.raises(BundleFormatError, match="does not exist"):
            load_bundle(saved_dir)

    def test_unpicklable_model_without_checksum_raises(self, saved_dir):
        _downgrade_to_v1(saved_dir)
        (saved_dir / "dgemm.model.pkl").write_bytes(b"corrupted bytes")
        with pytest.raises(BundleFormatError, match="unpickle"):
            load_bundle(saved_dir)

    def test_verify_bundle_reports_per_routine(self, saved_dir):
        assert verify_bundle(saved_dir)["ok"]
        (saved_dir / "dgemm.model.pkl").write_bytes(b"corrupted bytes")
        (saved_dir / "dsyrk.model.pkl").unlink()
        report = verify_bundle(saved_dir)
        assert not report["ok"]
        assert report["routines"]["dgemm"] == "checksum mismatch"
        assert report["routines"]["dsyrk"] == "missing file"


class TestOldSchemaCompatibility:
    def test_v1_manifest_loads(self, small_bundle, saved_dir):
        _downgrade_to_v1(saved_dir)
        restored = load_bundle(saved_dir)
        assert restored.installed_routines == small_bundle.installed_routines

    def test_v1_with_missing_optional_keys_loads(self, small_bundle, saved_dir):
        _downgrade_to_v1(saved_dir, strip_optional=True)
        restored = load_bundle(saved_dir)
        installation = restored.routines["dgemm"]
        assert installation.test_shapes == []
        assert len(installation.dataset) == 0
        assert installation.selection.best_model_name == installation.predictor.model_name
        dims = {"m": 200, "k": 150, "n": 100}
        np.testing.assert_allclose(
            restored.predictor("dgemm").predict_runtimes(dims),
            small_bundle.predictor("dgemm").predict_runtimes(dims),
            rtol=1e-12,
        )

    def test_verify_flags_missing_checksums(self, saved_dir):
        _downgrade_to_v1(saved_dir)
        report = verify_bundle(saved_dir)
        assert not report["ok"]
        assert set(report["routines"].values()) == {"no checksum"}


class TestMigration:
    def test_migrate_v1_to_current(self, saved_dir):
        _downgrade_to_v1(saved_dir)
        manifest = migrate_manifest(saved_dir)
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert "format_version" not in manifest
        assert verify_bundle(saved_dir)["ok"]
        assert load_bundle(saved_dir)

    def test_migrate_is_idempotent(self, saved_dir):
        before = (saved_dir / "bundle.json").read_text()
        migrate_manifest(saved_dir)
        assert (saved_dir / "bundle.json").read_text() == before

    def test_migrate_with_missing_model_fails(self, saved_dir):
        _downgrade_to_v1(saved_dir)
        (saved_dir / "dgemm.model.pkl").unlink()
        with pytest.raises(BundleFormatError, match="missing"):
            migrate_manifest(saved_dir)


class TestChecksumAlgorithms:
    def test_unsupported_algo_fails_verify_and_load(self, saved_dir):
        manifest_path = saved_dir / "bundle.json"
        manifest = json.loads(manifest_path.read_text())
        digest = manifest["routines"]["dgemm"]["checksum"].split(":", 1)[1]
        manifest["routines"]["dgemm"]["checksum"] = f"sha999:{digest}"
        manifest_path.write_text(json.dumps(manifest))
        report = verify_bundle(saved_dir)
        assert not report["ok"]
        assert report["routines"]["dgemm"] == "unsupported checksum"
        with pytest.raises(BundleFormatError, match="checksum format"):
            load_bundle(saved_dir)


class TestWriteRoutineModel:
    def test_default_filename_matches_save_bundle(self, small_bundle, tmp_path):
        from repro.core.persistence import write_routine_model

        directory = tmp_path / "staged"
        directory.mkdir()
        installation = small_bundle.routines["dgemm"]
        meta = write_routine_model(directory, installation)
        assert meta["model_file"] == "dgemm.model.pkl"
        assert meta["checksum"].startswith("sha256:")
        assert (directory / "dgemm.model.pkl").exists()
        assert meta["model_name"] == installation.predictor.model_name
        assert meta["preprocessing"] == (
            installation.predictor.pipeline.to_config().to_dict()
        )

    def test_versioned_filename_leaves_live_file_alone(self, saved_dir, small_bundle):
        from repro.core.persistence import load_routine, write_routine_model

        live_bytes = (saved_dir / "dgemm.model.pkl").read_bytes()
        installation = small_bundle.routines["dgemm"]
        meta = write_routine_model(
            saved_dir, installation, filename="dgemm.model.v2.pkl"
        )
        assert meta["model_file"] == "dgemm.model.v2.pkl"
        assert (saved_dir / "dgemm.model.pkl").read_bytes() == live_bytes
        # The staged file is loadable through the ordinary routine loader.
        restored = load_routine(
            saved_dir, "dgemm", meta, small_bundle.platform
        )
        assert restored.predictor.model_name == installation.predictor.model_name

    def test_no_tmp_residue(self, small_bundle, tmp_path):
        from repro.core.persistence import write_routine_model

        directory = tmp_path / "staged"
        directory.mkdir()
        write_routine_model(directory, small_bundle.routines["dgemm"])
        assert not list(directory.glob("*.tmp"))


class TestCalibratedSettings:
    def test_simulator_from_settings_applies_calibration(self, laptop):
        from repro.core.persistence import simulator_from_settings

        settings = {"seed": 3, "noise_level": 0.02,
                    "calibration": {"clock_ghz": 0.5}}
        simulator = simulator_from_settings(laptop, settings)
        assert simulator.seed == 3
        assert simulator.noise_level == 0.02
        assert simulator.platform.clock_ghz == pytest.approx(laptop.clock_ghz * 0.5)
        assert simulator.platform.name == laptop.name

    def test_missing_calibration_keeps_platform(self, laptop):
        from repro.core.persistence import simulator_from_settings

        simulator = simulator_from_settings(laptop, {"calibration": None})
        assert simulator.platform is laptop

    def test_calibrated_bundle_round_trips_through_load(
        self, small_bundle, tmp_path, laptop
    ):
        directory = save_bundle(small_bundle, tmp_path / "bundle")
        manifest = json.loads((directory / "bundle.json").read_text())
        manifest["settings"]["calibration"] = {"sync_cost_per_thread": 2.0}
        (directory / "bundle.json").write_text(json.dumps(manifest))
        restored = load_bundle(directory)
        assert restored.simulator.platform.sync_cost_per_thread == pytest.approx(
            laptop.sync_cost_per_thread * 2.0
        )
