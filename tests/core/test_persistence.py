"""Tests for saving and loading installation bundles."""

import json

import numpy as np
import pytest

from repro.core.persistence import load_bundle, save_bundle


@pytest.fixture()
def saved_dir(small_bundle, tmp_path):
    return save_bundle(small_bundle, tmp_path / "bundle")


class TestSave:
    def test_manifest_written(self, saved_dir):
        manifest_path = saved_dir / "bundle.json"
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["platform"] == "laptop"
        assert set(manifest["routines"]) == {"dgemm", "dsyrk"}

    def test_model_files_written(self, saved_dir):
        assert (saved_dir / "dgemm.model.pkl").exists()
        assert (saved_dir / "dsyrk.model.pkl").exists()

    def test_manifest_contains_preprocessing_config(self, saved_dir):
        manifest = json.loads((saved_dir / "bundle.json").read_text())
        preprocessing = manifest["routines"]["dgemm"]["preprocessing"]
        assert "feature_names" in preprocessing
        assert "correlation" in preprocessing

    def test_selection_summary_serialised(self, saved_dir):
        manifest = json.loads((saved_dir / "bundle.json").read_text())
        selection = manifest["routines"]["dgemm"]["selection"]
        assert selection["best_model_name"]
        assert len(selection["evaluations"]) == 2


class TestLoad:
    def test_roundtrip_preserves_structure(self, small_bundle, saved_dir):
        restored = load_bundle(saved_dir)
        assert restored.platform.name == small_bundle.platform.name
        assert restored.installed_routines == small_bundle.installed_routines
        assert restored.best_models() == small_bundle.best_models()

    def test_roundtrip_preserves_predictions(self, small_bundle, saved_dir):
        restored = load_bundle(saved_dir)
        dims = {"m": 300, "k": 200, "n": 100}
        original_runtimes = small_bundle.predictor("dgemm").predict_runtimes(dims)
        restored_runtimes = restored.predictor("dgemm").predict_runtimes(dims)
        np.testing.assert_allclose(restored_runtimes, original_runtimes, rtol=1e-12)

    def test_roundtrip_preserves_thread_choice(self, small_bundle, saved_dir):
        restored = load_bundle(saved_dir)
        for routine in small_bundle.installed_routines:
            dims_list = small_bundle.routines[routine].test_shapes[:3]
            for dims in dims_list:
                assert restored.predictor(routine).predict_threads(
                    dims, use_cache=False
                ) == small_bundle.predictor(routine).predict_threads(dims, use_cache=False)

    def test_roundtrip_preserves_datasets(self, small_bundle, saved_dir):
        restored = load_bundle(saved_dir)
        original = small_bundle.routines["dgemm"].dataset
        loaded = restored.routines["dgemm"].dataset
        assert len(loaded) == len(original)
        np.testing.assert_allclose(loaded.target(), original.target())

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path / "does-not-exist")

    def test_settings_survive_roundtrip(self, small_bundle, saved_dir):
        restored = load_bundle(saved_dir)
        assert restored.settings["n_samples"] == small_bundle.settings["n_samples"]
