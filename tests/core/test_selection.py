"""Tests for candidate evaluation and model selection by estimated speedup."""

import numpy as np
import pytest

from repro.core.gather import DataGatherer
from repro.core.selection import (
    CandidateEvaluation,
    SelectionReport,
    evaluate_candidates,
    select_best_model,
)
from repro.machine.simulator import TimingSimulator


@pytest.fixture(scope="module")
def selection_inputs(laptop):
    simulator = TimingSimulator(laptop, seed=0)
    gatherer = DataGatherer(simulator, "dsyrk", n_shapes=20, threads_per_shape=6, seed=0)
    dataset = gatherer.gather()
    test_shapes = gatherer.gather_test_set(10)
    return simulator, dataset, test_shapes


CANDIDATES = ["LinearRegression", "DecisionTree", "KNN"]


@pytest.fixture(scope="module")
def report(selection_inputs):
    simulator, dataset, test_shapes = selection_inputs
    return evaluate_candidates(
        dataset=dataset,
        simulator=simulator,
        test_shapes=test_shapes,
        candidate_names=CANDIDATES,
        seed=0,
    )


class TestReportStructure:
    def test_one_evaluation_per_candidate(self, report):
        assert {e.model_name for e in report.evaluations} == set(CANDIDATES)

    def test_best_model_is_a_candidate(self, report):
        assert report.best_model_name in CANDIDATES

    def test_best_model_maximises_estimated_mean_speedup(self, report):
        best = max(report.evaluations, key=lambda e: e.estimated_mean_speedup)
        assert report.best_model_name == best.model_name
        assert report.best_evaluation is best

    def test_normalised_rmse_in_unit_interval(self, report):
        values = [e.normalised_rmse for e in report.evaluations]
        assert max(values) == pytest.approx(1.0)
        assert all(0 < v <= 1.0 for v in values)

    def test_estimated_never_exceeds_ideal(self, report):
        for e in report.evaluations:
            assert e.estimated_mean_speedup <= e.ideal_mean_speedup + 1e-9
            assert e.estimated_aggregate_speedup <= e.ideal_aggregate_speedup + 1e-9

    def test_eval_times_positive(self, report):
        assert all(e.eval_time_us > 0 for e in report.evaluations)

    def test_rows_have_table6_columns(self, report):
        for row in report.as_rows():
            assert set(row) == {
                "model",
                "normalised_test_rmse",
                "ideal_mean_speedup",
                "ideal_aggregate_speedup",
                "eval_time_us",
                "estimated_mean_speedup",
                "estimated_aggregate_speedup",
            }

    def test_missing_best_evaluation_raises(self):
        broken = SelectionReport(routine="dgemm", platform="x", evaluations=[], best_model_name="Z")
        with pytest.raises(LookupError):
            broken.best_evaluation

    def test_fitted_models_stashed_for_reuse(self, report):
        assert set(report._fitted_models) == set(CANDIDATES)
        assert report._pipeline is not None


class TestEvalTimeModes:
    def test_measured_mode_gives_larger_eval_times(self, selection_inputs):
        simulator, dataset, test_shapes = selection_inputs
        native = evaluate_candidates(
            dataset, simulator, test_shapes, candidate_names=["LinearRegression"],
            eval_time_mode="native", seed=0,
        )
        measured = evaluate_candidates(
            dataset, simulator, test_shapes, candidate_names=["LinearRegression"],
            eval_time_mode="measured", seed=0,
        )
        assert (
            measured.evaluations[0].eval_time_us > native.evaluations[0].eval_time_us
        )

    def test_invalid_mode_rejected(self, selection_inputs):
        simulator, dataset, test_shapes = selection_inputs
        with pytest.raises(ValueError, match="eval_time_mode"):
            evaluate_candidates(dataset, simulator, test_shapes, eval_time_mode="guess")


class TestValidation:
    def test_empty_candidates(self, selection_inputs):
        simulator, dataset, test_shapes = selection_inputs
        with pytest.raises(ValueError, match="candidate_names"):
            evaluate_candidates(dataset, simulator, test_shapes, candidate_names=[])

    def test_empty_test_shapes(self, selection_inputs):
        simulator, dataset, _ = selection_inputs
        with pytest.raises(ValueError, match="test_shapes"):
            evaluate_candidates(dataset, simulator, [], candidate_names=CANDIDATES)


class TestSelectBestModel:
    def _make_report(self, routine, scores):
        return SelectionReport(
            routine=routine,
            platform="x",
            evaluations=[
                CandidateEvaluation(
                    model_name=name,
                    rmse=1.0,
                    normalised_rmse=1.0,
                    eval_time_us=10.0,
                    ideal_mean_speedup=s,
                    ideal_aggregate_speedup=s,
                    estimated_mean_speedup=s,
                    estimated_aggregate_speedup=s,
                )
                for name, s in scores.items()
            ],
            best_model_name=max(scores, key=scores.get),
        )

    def test_highest_average_across_routines_wins(self):
        reports = [
            self._make_report("dgemm", {"A": 1.0, "B": 1.4}),
            self._make_report("dsymm", {"A": 2.0, "B": 1.5}),
        ]
        # A: mean 1.5, B: mean 1.45 -> A wins the library-wide selection.
        assert select_best_model(reports) == "A"

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError):
            select_best_model([])
