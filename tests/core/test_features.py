"""Tests for the Table III feature engineering."""

import numpy as np
import pytest

from repro.blas.flops import memory_words
from repro.core.features import (
    THREE_DIM_FEATURES,
    TWO_DIM_FEATURES,
    build_feature_matrix,
    compute_features,
    feature_matrix_for_threads,
    feature_names,
)


class TestFeatureNames:
    def test_gemm_uses_three_dim_set(self):
        assert feature_names("dgemm") == THREE_DIM_FEATURES
        assert len(feature_names("sgemm")) == 17

    @pytest.mark.parametrize("routine", ["dsymm", "ssyrk", "dsyr2k", "strmm", "dtrsm"])
    def test_others_use_two_dim_set(self, routine):
        assert feature_names(routine) == TWO_DIM_FEATURES
        assert len(feature_names(routine)) == 9

    def test_thread_count_is_a_feature_in_both_sets(self):
        assert "nt" in THREE_DIM_FEATURES
        assert "nt" in TWO_DIM_FEATURES

    def test_names_are_copies(self):
        names = feature_names("dgemm")
        names.append("bogus")
        assert "bogus" not in feature_names("dgemm")


class TestComputeFeatures:
    def test_gemm_feature_values(self):
        dims = {"m": 10, "k": 20, "n": 30}
        vector = compute_features("dgemm", dims, threads=4)
        named = dict(zip(THREE_DIM_FEATURES, vector))
        assert named["m"] == 10 and named["k"] == 20 and named["n"] == 30
        assert named["nt"] == 4
        assert named["m*k"] == 200
        assert named["m*k*n"] == 6000
        assert named["memory_footprint"] == memory_words("dgemm", dims)
        assert named["m*k*n/nt"] == pytest.approx(1500)
        assert named["memory_footprint/nt"] == pytest.approx(named["memory_footprint"] / 4)

    def test_syrk_feature_values(self):
        dims = {"n": 8, "k": 16}
        vector = compute_features("dsyrk", dims, threads=2)
        named = dict(zip(TWO_DIM_FEATURES, vector))
        assert named["d1"] == 8 and named["d2"] == 16
        assert named["d1*d2"] == 128
        assert named["d1*d2/nt"] == 64
        assert named["memory_footprint"] == memory_words("dsyrk", dims)

    def test_invalid_threads(self):
        with pytest.raises(ValueError, match="threads"):
            compute_features("dgemm", {"m": 4, "k": 4, "n": 4}, threads=0)

    def test_all_features_finite_and_positive(self):
        vector = compute_features("dtrsm", {"m": 5000, "n": 3}, threads=96)
        assert np.all(np.isfinite(vector))
        assert np.all(vector > 0)


class TestMatrices:
    def test_build_matrix_shape(self):
        dims_list = [{"m": 10, "k": 10, "n": 10}, {"m": 20, "k": 5, "n": 8}]
        X = build_feature_matrix("dgemm", dims_list, [2, 4])
        assert X.shape == (2, 17)

    def test_build_matrix_broadcasts_scalar_threads(self):
        dims_list = [{"n": 10, "k": 10}] * 3
        X = build_feature_matrix("dsyrk", dims_list, 8)
        assert X.shape == (3, 9)
        assert np.all(X[:, TWO_DIM_FEATURES.index("nt")] == 8)

    def test_build_matrix_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths"):
            build_feature_matrix("dgemm", [{"m": 1, "k": 1, "n": 1}], [1, 2])

    def test_build_matrix_empty(self):
        with pytest.raises(ValueError, match="empty"):
            build_feature_matrix("dgemm", [], [])

    def test_vectorised_path_matches_row_by_row(self):
        dims = {"m": 123, "k": 456, "n": 789}
        threads = np.array([1, 3, 7, 16, 96])
        fast = feature_matrix_for_threads("dgemm", dims, threads)
        slow = build_feature_matrix("dgemm", [dims] * len(threads), list(threads))
        np.testing.assert_allclose(fast, slow)

    def test_vectorised_path_two_dims(self):
        dims = {"m": 50, "n": 70}
        threads = np.arange(1, 17)
        fast = feature_matrix_for_threads("dtrmm", dims, threads)
        slow = build_feature_matrix("dtrmm", [dims] * 16, list(threads))
        np.testing.assert_allclose(fast, slow)

    def test_vectorised_invalid_threads(self):
        with pytest.raises(ValueError):
            feature_matrix_for_threads("dgemm", {"m": 1, "k": 1, "n": 1}, [])
        with pytest.raises(ValueError):
            feature_matrix_for_threads("dgemm", {"m": 1, "k": 1, "n": 1}, [0, 1])


class TestFeatureGridWriter:
    def _grid_writer(self, routine, threads, columns=None):
        from repro.core.features import FeatureGridWriter

        return FeatureGridWriter(routine, threads, columns=columns)

    @pytest.mark.parametrize("routine", ["dgemm", "ssymm", "dsyrk", "strsm"])
    def test_matches_feature_matrix_grid(self, routine):
        from repro.core.features import feature_matrix_grid
        from repro.blas.api import parse_routine

        _, _, spec = parse_routine(routine)
        rng = np.random.default_rng(4)
        dims_list = [
            {name: int(rng.integers(16, 5000)) for name in spec.dim_names}
            for _ in range(7)
        ]
        threads = np.array([1, 2, 5, 13, 48])
        writer = self._grid_writer(routine, threads)
        grid = writer.write_dicts(dims_list)
        assert np.array_equal(grid, feature_matrix_grid(routine, dims_list, threads))

    def test_column_subset(self):
        from repro.core.features import feature_matrix_grid

        dims_list = [{"m": 100, "k": 200, "n": 300}, {"m": 7, "k": 9, "n": 11}]
        threads = [1, 4, 16]
        columns = [0, 3, 8, 16]
        writer = self._grid_writer("dgemm", threads, columns=columns)
        full = feature_matrix_grid("dgemm", dims_list, np.asarray(threads, float))
        assert np.array_equal(writer.write_dicts(dims_list), full[:, columns])

    def test_buffer_reused_and_grows(self):
        writer = self._grid_writer("dgemm", [1, 2])
        first = writer.write_dicts([{"m": 10, "k": 20, "n": 30}])
        buffer_id = id(writer._buffer)
        second = writer.write_dicts([{"m": 11, "k": 21, "n": 31}])
        assert id(writer._buffer) == buffer_id  # same storage reused
        assert first.base is second.base or first is second  # view into it
        big = writer.write_dicts(
            [{"m": i + 1, "k": 2, "n": 3} for i in range(10)]
        )
        assert big.shape == (20, 17)
        assert id(writer._buffer) != buffer_id  # grown geometrically

    def test_validation_matches_grid_errors(self):
        writer = self._grid_writer("dgemm", [1, 2])
        with pytest.raises(ValueError):
            writer.write_dicts([])
        with pytest.raises(ValueError):
            writer.write_dicts([{"m": 1, "k": 1}])
        with pytest.raises(ValueError):
            writer.write_dicts([{"m": 1, "k": 1, "n": 0}])
        with pytest.raises(ValueError):
            self._grid_writer("dgemm", [])
        with pytest.raises(ValueError):
            self._grid_writer("dgemm", [0, 1])
        with pytest.raises(ValueError):
            self._grid_writer("dgemm", [1, 2], columns=[17])
