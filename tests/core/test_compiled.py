"""Equivalence tests: compiled prediction kernel == object-graph reference.

The compiled path promises *bit-identical* outputs — every test here
compares with exact array equality, not tolerances.
"""

import numpy as np
import pytest

from repro.blas.api import ROUTINE_KEYS, parse_routine
from repro.core import compiled as compiled_mod
from repro.core.compiled import CompiledPredictor, compile_model_evaluator
from repro.core.install import install_adsala
from repro.core.predictor import ThreadPredictor
from repro.machine.platforms import get_platform
from repro.ml import tree as tree_mod
from repro.ml.model_zoo import CANDIDATE_MODEL_NAMES, make_model
from repro.preprocessing.pipeline import PreprocessingPipeline


@pytest.fixture(scope="module")
def platform():
    return get_platform("laptop")


@pytest.fixture(scope="module")
def quick_bundle(platform):
    """A small bundle covering every routine in both precisions."""
    return install_adsala(
        platform=platform,
        routines=list(ROUTINE_KEYS),
        n_samples=10,
        threads_per_shape=4,
        n_test_shapes=3,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=0,
    )


def _random_dims(routine, n, seed):
    _, _, spec = parse_routine(routine)
    rng = np.random.default_rng(seed)
    return [
        {name: int(rng.integers(32, 2048)) for name in spec.dim_names}
        for _ in range(n)
    ]


class TestBundleEquivalence:
    def test_all_routines_both_precisions_randomized_dims(self, quick_bundle):
        for index, routine in enumerate(ROUTINE_KEYS):
            predictor = quick_bundle.routines[routine].predictor
            dims_list = _random_dims(routine, 25, seed=100 + index)
            compiled = predictor.predict_runtimes_batch(dims_list)
            with compiled_mod.reference_mode():
                reference = predictor.predict_runtimes_batch(dims_list)
            assert np.array_equal(compiled, reference), routine

    def test_plans_and_cache_timeline_identical(self, quick_bundle, platform):
        """Same plans, predicted times, hit/miss counters and final cache."""
        for routine in ("dgemm", "ssyrk"):
            source = quick_bundle.routines[routine].predictor
            workload = _random_dims(routine, 6, seed=3) * 3  # repeats hit LRU
            results = {}
            for mode in ("compiled", "reference"):
                predictor = ThreadPredictor(
                    routine=routine,
                    pipeline=source.pipeline,
                    model=source.model,
                    candidate_threads=source.candidate_threads,
                    cache_capacity=4,
                )
                if mode == "reference":
                    with compiled_mod.reference_mode():
                        plans = [predictor.plan(d) for d in workload]
                else:
                    plans = [predictor.plan(d) for d in workload]
                results[mode] = (
                    plans,
                    predictor.cache_info(),
                    list(predictor._cache),
                )
            compiled_plans, compiled_info, compiled_keys = results["compiled"]
            reference_plans, reference_info, reference_keys = results["reference"]
            assert compiled_info == reference_info
            assert compiled_keys == reference_keys
            for left, right in zip(compiled_plans, reference_plans):
                assert left == right

    def test_plan_batch_identical(self, quick_bundle):
        predictor = quick_bundle.routines["dsymm"].predictor
        dims_list = _random_dims("dsymm", 12, seed=9)
        predictor.clear_cache()
        compiled = predictor.plan_batch(dims_list)
        predictor.clear_cache()
        with compiled_mod.reference_mode():
            reference = predictor.plan_batch(dims_list)
        assert compiled == reference


class TestModelEvaluators:
    """compile_model_evaluator == model.predict for every Table II model."""

    @pytest.mark.parametrize("model_name", CANDIDATE_MODEL_NAMES)
    def test_evaluator_matches_predict(self, model_name):
        rng = np.random.default_rng(11)
        X = rng.uniform(-2.0, 2.0, size=(220, 7))
        y = X @ rng.normal(size=7) + 0.05 * rng.normal(size=220)
        model = make_model(model_name)
        model.fit(X, y)
        evaluate = compile_model_evaluator(model)
        Xq = rng.uniform(-2.0, 2.0, size=(40, 7))
        assert np.array_equal(evaluate(Xq), model.predict(Xq))

    @pytest.mark.parametrize(
        "model_name", ["RandomForest", "XGBoost", "LightGBM", "AdaBoost"]
    )
    def test_evaluator_matches_recursive_reference(self, model_name):
        rng = np.random.default_rng(12)
        X = rng.uniform(-1.0, 3.0, size=(180, 5))
        y = np.sin(X).sum(axis=1) + 0.02 * rng.normal(size=180)
        model = make_model(model_name)
        model.fit(X, y)
        evaluate = compile_model_evaluator(model)
        Xq = rng.uniform(-1.0, 3.0, size=(30, 5))
        with tree_mod.reference_mode():
            reference = model.predict(Xq)
        assert np.array_equal(evaluate(Xq), reference)


class TestCompiledPredictor:
    def test_build_once_and_reuse(self, quick_bundle):
        predictor = quick_bundle.routines["dgemm"].predictor
        assert predictor.compile() is predictor.compile()

    def test_compiled_validates_dims(self, quick_bundle):
        predictor = quick_bundle.routines["dgemm"].predictor
        with pytest.raises(ValueError):
            predictor.predict_runtimes({"m": 128, "k": 128, "n": 0})
        with pytest.raises(ValueError):
            predictor.predict_runtimes({"m": 128, "k": 128})

    def test_single_shape_matches_batch_row(self, quick_bundle):
        predictor = quick_bundle.routines["dtrsm"].predictor
        dims_list = _random_dims("dtrsm", 5, seed=21)
        batch = predictor.predict_runtimes_batch(dims_list)
        for i, dims in enumerate(dims_list):
            assert np.array_equal(predictor.predict_runtimes(dims), batch[i])

    def test_direct_compiled_predictor(self, quick_bundle):
        installation = quick_bundle.routines["dsyr2k"]
        predictor = installation.predictor
        compiled = CompiledPredictor(
            "dsyr2k",
            predictor.pipeline,
            predictor.model,
            predictor.candidate_threads,
        )
        dims_list = _random_dims("dsyr2k", 8, seed=5)
        with compiled_mod.reference_mode():
            reference = predictor.predict_runtimes_batch(dims_list)
        assert np.array_equal(
            compiled.predict_runtimes_batch(dims_list), reference
        )

    def test_reference_mode_restores(self, quick_bundle):
        assert compiled_mod.active_impl() == "compiled"
        with compiled_mod.reference_mode():
            assert compiled_mod.active_impl() == "reference"
            assert not tree_mod.stacking_active()
        assert compiled_mod.active_impl() == "compiled"
        assert tree_mod.stacking_active()


class TestFallbackEvaluator:
    def test_unknown_model_falls_back_to_predict(self):
        class Weird:
            def predict(self, X):
                return np.asarray(X).sum(axis=1)

        model = Weird()
        evaluate = compile_model_evaluator(model)
        X = np.arange(12.0).reshape(4, 3)
        assert np.array_equal(evaluate(X), model.predict(X))

    def test_pipeline_compile_requires_fit(self):
        with pytest.raises(RuntimeError):
            PreprocessingPipeline().compile()
