"""Tests for Halton sequences and the domain sampler (paper Section IV-B)."""

import numpy as np
import pytest

from repro.blas.flops import memory_bytes
from repro.core.sampling import (
    DomainSampler,
    HaltonSequence,
    ScrambledHaltonSequence,
    van_der_corput,
)


class TestVanDerCorput:
    def test_base2_sequence(self):
        values = [van_der_corput(i, 2) for i in range(1, 8)]
        np.testing.assert_allclose(
            values, [0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875]
        )

    def test_base3_first_values(self):
        np.testing.assert_allclose(
            [van_der_corput(i, 3) for i in (1, 2, 3)], [1 / 3, 2 / 3, 1 / 9]
        )

    def test_values_in_unit_interval(self):
        for base in (2, 3, 4, 5):
            values = [van_der_corput(i, base) for i in range(1, 200)]
            assert all(0.0 <= v < 1.0 for v in values)

    def test_permutation_changes_values(self):
        plain = van_der_corput(5, 3)
        permuted = van_der_corput(5, 3, permutation=[0, 2, 1])
        assert plain != permuted

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            van_der_corput(-1, 2)
        with pytest.raises(ValueError):
            van_der_corput(3, 1)


class TestHaltonSequence:
    def test_shape_of_take(self):
        points = HaltonSequence([2, 3]).take(50)
        assert points.shape == (50, 2)
        assert np.all((points >= 0) & (points < 1))

    def test_sequence_advances(self):
        seq = HaltonSequence([2, 3])
        first = seq.take(10)
        second = seq.take(10)
        assert not np.allclose(first, second)

    def test_reset(self):
        seq = HaltonSequence([2, 3])
        first = seq.take(5)
        seq.reset()
        np.testing.assert_allclose(seq.take(5), first)

    def test_low_discrepancy_coverage(self):
        # Halton points cover [0,1)^2 far more evenly than the worst case:
        # every quadrant receives a fair share of 200 points.
        points = HaltonSequence([2, 3]).take(200)
        for dim in range(2):
            for lo in (0.0, 0.5):
                in_bin = np.sum((points[:, dim] >= lo) & (points[:, dim] < lo + 0.5))
                assert 80 <= in_bin <= 120

    def test_invalid_bases(self):
        with pytest.raises(ValueError):
            HaltonSequence([])
        with pytest.raises(ValueError):
            HaltonSequence([2, 1])

    def test_invalid_take(self):
        with pytest.raises(ValueError):
            HaltonSequence([2]).take(0)


class TestScrambledHalton:
    def test_differs_from_plain_halton(self):
        plain = HaltonSequence([2, 3, 4]).take(30)
        scrambled = ScrambledHaltonSequence([2, 3, 4], seed=1).take(30)
        assert not np.allclose(plain, scrambled)

    def test_seed_reproducibility(self):
        a = ScrambledHaltonSequence([2, 3], seed=5).take(20)
        b = ScrambledHaltonSequence([2, 3], seed=5).take(20)
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self):
        a = ScrambledHaltonSequence([3, 4], seed=1).take(20)
        b = ScrambledHaltonSequence([3, 4], seed=2).take(20)
        assert not np.allclose(a, b)

    def test_scrambling_reduces_high_base_correlation(self):
        # The classic Halton artefact: bases 3 and 4 are strongly correlated
        # in the first points; scrambling should reduce |corr|.
        n = 60
        plain = HaltonSequence([3, 4]).take(n)
        scrambled = ScrambledHaltonSequence([3, 4], seed=0).take(n)
        plain_corr = abs(np.corrcoef(plain[:, 0], plain[:, 1])[0, 1])
        scrambled_corr = abs(np.corrcoef(scrambled[:, 0], scrambled[:, 1])[0, 1])
        assert scrambled_corr < plain_corr

    def test_values_stay_in_unit_cube(self):
        points = ScrambledHaltonSequence([2, 3, 4], seed=3).take(500)
        assert np.all((points >= 0) & (points < 1))


class TestDomainSampler:
    def test_gemm_sampler_produces_three_dims(self):
        sampler = DomainSampler("dgemm", seed=0)
        samples = sampler.sample(20)
        assert len(samples) == 20
        assert all(set(s) == {"m", "k", "n"} for s in samples)

    def test_two_dim_routines_use_their_dim_names(self):
        assert set(DomainSampler("dsyrk", seed=0).sample(5)[0]) == {"n", "k"}
        assert set(DomainSampler("dtrsm", seed=0).sample(5)[0]) == {"m", "n"}

    def test_memory_cap_respected(self):
        cap = 100e6
        sampler = DomainSampler("dgemm", memory_cap_bytes=cap, seed=0)
        for dims in sampler.sample(50):
            assert memory_bytes("dgemm", dims) <= cap

    def test_min_dim_respected(self):
        sampler = DomainSampler("dsymm", min_dim=64, seed=0)
        for dims in sampler.sample(30):
            assert all(v >= 64 for v in dims.values())

    def test_auto_max_dim_scales_with_cap(self):
        small_cap = DomainSampler("dgemm", memory_cap_bytes=50e6)
        large_cap = DomainSampler("dgemm", memory_cap_bytes=500e6)
        assert large_cap.max_dim > small_cap.max_dim

    def test_single_precision_allows_larger_dims(self):
        assert DomainSampler("sgemm").max_dim > DomainSampler("dgemm").max_dim

    def test_scales_produce_different_size_distributions(self):
        log_samples = DomainSampler("dgemm", scale="log", seed=0).sample(60)
        sqrt_samples = DomainSampler("dgemm", scale="sqrt", seed=0).sample(60)
        log_median = np.median([s["m"] for s in log_samples])
        sqrt_median = np.median([s["m"] for s in sqrt_samples])
        assert sqrt_median > log_median

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            DomainSampler("dgemm", scale="cubic")

    def test_invalid_skew(self):
        with pytest.raises(ValueError, match="skew"):
            DomainSampler("dgemm", skew=0.5)

    def test_deterministic_given_seed(self):
        a = DomainSampler("dtrmm", seed=9).sample(10)
        b = DomainSampler("dtrmm", seed=9).sample(10)
        assert a == b

    def test_plain_halton_option(self):
        scrambled = DomainSampler("dgemm", scrambled=True, seed=0).sample(10)
        plain = DomainSampler("dgemm", scrambled=False, seed=0).sample(10)
        assert scrambled != plain

    def test_impossible_domain_raises(self):
        # A 1-byte cap can never be satisfied with min_dim 32.
        sampler = DomainSampler("dgemm", memory_cap_bytes=1.0, max_dim=64)
        with pytest.raises(RuntimeError, match="accepted only"):
            sampler.sample(5, max_attempts_factor=3)

    def test_iteration_protocol(self):
        iterator = iter(DomainSampler("dsyr2k", seed=0))
        first = next(iterator)
        assert set(first) == {"n", "k"}
