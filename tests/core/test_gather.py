"""Tests for installation-time data gathering."""

import numpy as np
import pytest

from repro.blas.flops import memory_bytes
from repro.core.gather import DataGatherer, spread_thread_counts


class TestSpreadThreadCounts:
    def test_includes_endpoints(self):
        counts = spread_thread_counts(96, 10)
        assert counts[0] == 1
        assert counts[-1] == 96

    def test_requested_number_of_counts(self):
        counts = spread_thread_counts(96, 12)
        assert len(counts) == 12
        assert counts == sorted(set(counts))

    def test_clamped_to_max_threads(self):
        counts = spread_thread_counts(4, 10)
        assert counts == [1, 2, 3, 4]

    def test_single_count_returns_max(self):
        assert spread_thread_counts(8, 1) == [8]

    def test_two_counts(self):
        assert spread_thread_counts(8, 2) == [1, 8]

    def test_jitter_with_rng_still_valid(self):
        rng = np.random.default_rng(0)
        counts = spread_thread_counts(256, 14, rng=rng)
        assert counts[0] >= 1 and counts[-1] <= 256
        assert 256 in counts and 1 in counts

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            spread_thread_counts(0, 4)
        with pytest.raises(ValueError):
            spread_thread_counts(8, 0)


class TestDataGatherer:
    def test_gather_produces_expected_row_count(self, simulator):
        gatherer = DataGatherer(simulator, "dgemm", n_shapes=6, threads_per_shape=4, seed=0)
        dataset = gatherer.gather()
        # Every shape is timed at between 2 and threads_per_shape counts.
        assert 6 * 2 <= len(dataset) <= 6 * 4
        assert len(dataset.unique_shapes()) == 6

    def test_gather_respects_memory_cap(self, simulator):
        cap = 50e6
        gatherer = DataGatherer(
            simulator, "dsymm", n_shapes=10, threads_per_shape=3,
            memory_cap_bytes=cap, seed=1,
        )
        dataset = gatherer.gather()
        for dims in dataset.dims:
            assert memory_bytes("dsymm", dims) <= cap

    def test_gather_times_are_positive_and_platform_labelled(self, simulator, laptop):
        dataset = DataGatherer(simulator, "dtrsm", n_shapes=4, threads_per_shape=3, seed=0).gather()
        assert dataset.platform == laptop.name
        assert min(dataset.times) > 0

    def test_thread_counts_within_platform_limit(self, simulator, laptop):
        dataset = DataGatherer(simulator, "dsyrk", n_shapes=5, threads_per_shape=6, seed=0).gather()
        assert max(dataset.threads) <= laptop.max_threads
        assert min(dataset.threads) >= 1

    def test_gather_deterministic_for_seed(self, laptop):
        from repro.machine.simulator import TimingSimulator

        a = DataGatherer(TimingSimulator(laptop, seed=0), "dgemm", n_shapes=4,
                         threads_per_shape=3, seed=7).gather()
        b = DataGatherer(TimingSimulator(laptop, seed=0), "dgemm", n_shapes=4,
                         threads_per_shape=3, seed=7).gather()
        assert a.dims == b.dims
        np.testing.assert_allclose(a.times, b.times)

    def test_test_set_disjoint_from_training_shapes(self, simulator):
        gatherer = DataGatherer(simulator, "dgemm", n_shapes=10, threads_per_shape=2, seed=0)
        train = gatherer.gather()
        test_shapes = gatherer.gather_test_set(10)
        train_keys = {tuple(sorted(d.items())) for d in train.unique_shapes()}
        test_keys = {tuple(sorted(d.items())) for d in test_shapes}
        assert len(test_keys & train_keys) <= 1  # quasi-random collision is unlikely

    def test_invalid_parameters(self, simulator):
        with pytest.raises(ValueError):
            DataGatherer(simulator, "dgemm", n_shapes=0)
        with pytest.raises(ValueError):
            DataGatherer(simulator, "dgemm", threads_per_shape=0)
        gatherer = DataGatherer(simulator, "dgemm", n_shapes=2)
        with pytest.raises(ValueError):
            gatherer.gather_test_set(0)
