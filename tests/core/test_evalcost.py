"""Tests for the native model-evaluation cost estimates (the paper's t_eval)."""

import numpy as np
import pytest

from repro.core.evalcost import estimate_native_eval_time
from repro.ml.bayes import BayesianRidge
from repro.ml.boosting import GradientBoostingRegressor, HistGradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.svm import SVR
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture(scope="module")
def fitted_models():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(400, 9))
    y = X @ rng.uniform(0, 1, size=9) + rng.normal(0, 0.05, 400)
    models = {
        "linear": LinearRegression().fit(X, y),
        "bayes": BayesianRidge().fit(X, y),
        "tree": DecisionTreeRegressor(max_depth=8).fit(X, y),
        "forest": RandomForestRegressor(n_estimators=10, random_state=0).fit(X, y),
        "xgboost": GradientBoostingRegressor(n_estimators=20, max_depth=4).fit(X, y),
        "lightgbm": HistGradientBoostingRegressor(n_estimators=20, max_depth=4).fit(X, y),
        "knn": KNeighborsRegressor(n_neighbors=5).fit(X, y),
        "svr": SVR(max_iter=20).fit(X, y),
    }
    return models


N_CANDIDATES = 96
N_FEATURES = 9


class TestMagnitudes:
    """The estimates should land in the ranges of the paper's Table VI."""

    def test_linear_models_are_microseconds(self, fitted_models):
        for key in ("linear", "bayes"):
            t = estimate_native_eval_time(fitted_models[key], N_CANDIDATES, N_FEATURES)
            assert 1e-6 < t < 3e-5

    def test_single_tree_is_cheap(self, fitted_models):
        t = estimate_native_eval_time(fitted_models["tree"], N_CANDIDATES, N_FEATURES)
        assert t < 1e-4

    def test_knn_is_milliseconds(self, fitted_models):
        t = estimate_native_eval_time(fitted_models["knn"], N_CANDIDATES, N_FEATURES)
        assert 5e-4 < t < 2e-2

    def test_ensembles_sit_between_linear_and_knn(self, fitted_models):
        linear = estimate_native_eval_time(fitted_models["linear"], N_CANDIDATES, N_FEATURES)
        knn = estimate_native_eval_time(fitted_models["knn"], N_CANDIDATES, N_FEATURES)
        for key in ("forest", "xgboost", "lightgbm"):
            t = estimate_native_eval_time(fitted_models[key], N_CANDIDATES, N_FEATURES)
            assert linear < t < knn * 10

    def test_ordering_matches_paper(self, fitted_models):
        """Linear < tree < boosted ensemble < kNN, as in Table VI."""
        times = {
            key: estimate_native_eval_time(fitted_models[key], N_CANDIDATES, N_FEATURES)
            for key in ("bayes", "tree", "xgboost", "knn")
        }
        assert times["bayes"] < times["tree"] < times["xgboost"] < times["knn"]


class TestScaling:
    def test_cost_grows_with_candidates(self, fitted_models):
        small = estimate_native_eval_time(fitted_models["xgboost"], 16, N_FEATURES)
        large = estimate_native_eval_time(fitted_models["xgboost"], 256, N_FEATURES)
        assert large > small

    def test_linear_cost_grows_with_features(self, fitted_models):
        narrow = estimate_native_eval_time(fitted_models["linear"], N_CANDIDATES, 5)
        wide = estimate_native_eval_time(fitted_models["linear"], N_CANDIDATES, 17)
        assert wide > narrow

    def test_svr_estimate_positive(self, fitted_models):
        assert estimate_native_eval_time(fitted_models["svr"], N_CANDIDATES, N_FEATURES) > 0

    def test_unknown_model_falls_back_to_linear_cost(self):
        class Mystery:
            pass

        assert estimate_native_eval_time(Mystery(), 96, 9) < 1e-4

    def test_invalid_arguments(self, fitted_models):
        with pytest.raises(ValueError):
            estimate_native_eval_time(fitted_models["linear"], 0, 9)
        with pytest.raises(ValueError):
            estimate_native_eval_time(fitted_models["linear"], 96, 0)
