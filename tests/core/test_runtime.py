"""Tests for the ADSALA runtime (planner and BLAS front-end)."""

import numpy as np
import pytest

from repro.blas import reference
from repro.core.runtime import AdsalaBlas, AdsalaRuntime, ExecutionPlan


@pytest.fixture()
def runtime(small_bundle):
    return AdsalaRuntime(small_bundle)


@pytest.fixture()
def blas(small_bundle):
    return AdsalaBlas(small_bundle, execution_thread_cap=2, tile=64)


class TestRuntimePlanning:
    def test_plan_fields(self, runtime, laptop):
        plan = runtime.plan("dgemm", m=256, k=512, n=128)
        assert isinstance(plan, ExecutionPlan)
        assert 1 <= plan.threads <= laptop.max_threads
        assert plan.predicted_time > 0
        assert plan.baseline_time > 0
        assert plan.dims == {"m": 256, "k": 512, "n": 128}

    def test_estimated_speedup_definition(self, runtime):
        plan = runtime.plan("dgemm", m=100, k=100, n=100)
        assert plan.estimated_speedup == pytest.approx(plan.baseline_time / plan.predicted_time)

    def test_bare_routine_name_defaults_to_double(self, runtime):
        plan = runtime.plan("gemm", m=64, k=64, n=64)
        assert plan.routine == "dgemm"

    def test_uninstalled_routine_raises(self, runtime):
        with pytest.raises(KeyError):
            runtime.plan("dsymm", m=100, n=100)

    def test_repeated_call_served_from_cache(self, runtime):
        runtime.plan("dsyrk", n=300, k=100)
        plan = runtime.plan("dsyrk", n=300, k=100)
        assert plan.from_cache

    def test_cache_statistics_aggregate(self, runtime):
        runtime.plan("dgemm", m=64, k=64, n=64)
        stats = runtime.cache_statistics()
        assert stats["model_evaluations"] >= 1
        assert stats["cache_hits"] >= 0

    def test_calls_planned_counter(self, runtime):
        before = runtime.calls_planned
        runtime.plan("dgemm", m=32, k=32, n=32)
        assert runtime.calls_planned == before + 1


class TestAdsalaBlasExecution:
    def test_gemm_correctness(self, blas):
        rng = np.random.default_rng(0)
        A, B = rng.normal(size=(120, 80)), rng.normal(size=(80, 60))
        np.testing.assert_allclose(blas.gemm(A, B), A @ B, rtol=1e-10)
        assert blas.last_plan.routine == "dgemm"

    def test_gemm_single_precision_routes_to_sgemm(self, blas):
        rng = np.random.default_rng(1)
        A = rng.normal(size=(32, 16)).astype(np.float32)
        B = rng.normal(size=(16, 24)).astype(np.float32)
        result = blas.gemm(A, B)
        assert blas.last_plan.routine == "sgemm" or blas.last_plan.routine == "dgemm"
        # dgemm is the installed routine; sgemm was not installed in the small
        # bundle, so planning must have used a valid installed routine.
        assert result.shape == (32, 24)

    def test_syrk_correctness(self, blas):
        rng = np.random.default_rng(2)
        A = rng.normal(size=(90, 40))
        result = blas.syrk(A)
        np.testing.assert_allclose(result, A @ A.T, rtol=1e-10)
        assert blas.last_plan.dims == {"n": 90, "k": 40}

    def test_syrk_transposed_dims(self, blas):
        rng = np.random.default_rng(3)
        A = rng.normal(size=(30, 70))
        blas.syrk(A, trans=True)
        assert blas.last_plan.dims == {"n": 70, "k": 30}

    def test_execution_thread_cap_respected(self, small_bundle):
        blas = AdsalaBlas(small_bundle, execution_thread_cap=1)
        executor = blas._executor(blas.plan("dgemm", m=64, k=64, n=64))
        assert executor.n_threads == 1

    def test_invalid_thread_cap(self, small_bundle):
        with pytest.raises(ValueError, match="execution_thread_cap"):
            AdsalaBlas(small_bundle, execution_thread_cap=0)

    def test_plan_without_execution(self, blas):
        plan = blas.plan("dgemm", m=500, k=500, n=500)
        assert plan.threads >= 1


class TestAdsalaBlasFullBundle:
    """Routines beyond the small bundle need a wider installation."""

    @pytest.fixture(scope="class")
    def full_blas(self, laptop):
        from repro.core.install import install_adsala

        bundle = install_adsala(
            platform=laptop,
            routines=["dgemm", "dsymm", "dsyrk", "dsyr2k", "dtrmm", "dtrsm"],
            n_samples=10,
            threads_per_shape=4,
            n_test_shapes=4,
            candidate_models=["DecisionTree"],
            seed=1,
        )
        return AdsalaBlas(bundle, execution_thread_cap=2, tile=64)

    def test_symm(self, full_blas):
        rng = np.random.default_rng(4)
        A, B = rng.normal(size=(50, 50)), rng.normal(size=(50, 30))
        np.testing.assert_allclose(full_blas.symm(A, B), reference.symm(A, B), rtol=1e-10)

    def test_syr2k(self, full_blas):
        rng = np.random.default_rng(5)
        A, B = rng.normal(size=(40, 20)), rng.normal(size=(40, 20))
        np.testing.assert_allclose(
            full_blas.syr2k(A, B), A @ B.T + B @ A.T, rtol=1e-10
        )

    def test_trmm(self, full_blas):
        rng = np.random.default_rng(6)
        A, B = rng.normal(size=(45, 45)), rng.normal(size=(45, 25))
        np.testing.assert_allclose(full_blas.trmm(A, B), reference.trmm(A, B), rtol=1e-10)

    def test_trsm(self, full_blas):
        rng = np.random.default_rng(7)
        A = rng.normal(size=(40, 40)) + 40 * np.eye(40)
        B = rng.normal(size=(40, 15))
        np.testing.assert_allclose(full_blas.trsm(A, B), reference.trsm(A, B), rtol=1e-8)

    def test_all_plans_recorded(self, full_blas):
        assert full_blas.last_plan is not None
