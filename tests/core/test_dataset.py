"""Tests for the timing dataset container."""

import numpy as np
import pytest

from repro.core.dataset import TimingDataset


@pytest.fixture()
def dataset():
    data = TimingDataset(routine="dgemm", platform="laptop")
    rng = np.random.default_rng(0)
    for i in range(40):
        dims = {"m": int(rng.integers(32, 512)), "k": int(rng.integers(32, 512)),
                "n": int(rng.integers(32, 512))}
        for threads in (1, 4, 16):
            data.append(dims, threads, float(rng.uniform(1e-4, 1e-1)))
    return data


class TestConstruction:
    def test_append_and_len(self, dataset):
        assert len(dataset) == 120

    def test_append_validates_threads(self):
        data = TimingDataset(routine="dgemm", platform="x")
        with pytest.raises(ValueError, match="threads"):
            data.append({"m": 1, "k": 1, "n": 1}, 0, 0.1)

    def test_append_validates_time(self):
        data = TimingDataset(routine="dgemm", platform="x")
        with pytest.raises(ValueError, match="time"):
            data.append({"m": 1, "k": 1, "n": 1}, 1, 0.0)

    def test_mismatched_lists_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            TimingDataset(routine="dgemm", platform="x", dims=[{}], threads=[], times=[])

    def test_extend_merges_same_routine(self, dataset):
        other = TimingDataset(routine="dgemm", platform="laptop")
        other.append({"m": 2, "k": 2, "n": 2}, 2, 0.5)
        n_before = len(dataset)
        dataset.extend(other)
        assert len(dataset) == n_before + 1

    def test_extend_rejects_different_routine(self, dataset):
        other = TimingDataset(routine="dsyrk", platform="laptop")
        with pytest.raises(ValueError, match="different routines"):
            dataset.extend(other)


class TestViews:
    def test_feature_matrix_shape(self, dataset):
        X = dataset.feature_matrix()
        assert X.shape == (len(dataset), 17)

    def test_target_matches_times(self, dataset):
        np.testing.assert_allclose(dataset.target(), dataset.times)

    def test_empty_dataset_feature_matrix_raises(self):
        with pytest.raises(ValueError, match="empty"):
            TimingDataset(routine="dgemm", platform="x").feature_matrix()

    def test_unique_shapes(self, dataset):
        shapes = dataset.unique_shapes()
        assert len(shapes) == 40
        keys = {tuple(sorted(s.items())) for s in shapes}
        assert len(keys) == 40

    def test_describe_summary(self, dataset):
        summary = dataset.describe()
        assert summary["n_samples"] == 120
        assert summary["n_shapes"] == 40
        assert summary["min_threads"] == 1
        assert summary["max_threads"] == 16
        assert summary["min_time"] > 0


class TestSplit:
    def test_split_fractions(self, dataset):
        X_train, X_test, y_train, y_test = dataset.train_test_split(test_size=0.15, random_state=0)
        assert len(X_train) + len(X_test) == len(dataset)
        assert abs(len(X_test) - 0.15 * len(dataset)) <= 0.05 * len(dataset)
        assert len(y_train) == len(X_train)

    def test_split_reproducible(self, dataset):
        a = dataset.train_test_split(random_state=3)
        b = dataset.train_test_split(random_state=3)
        np.testing.assert_allclose(a[0], b[0])


class TestSerialisation:
    def test_roundtrip(self, dataset):
        restored = TimingDataset.from_dict(dataset.to_dict())
        assert restored.routine == dataset.routine
        assert restored.platform == dataset.platform
        assert len(restored) == len(dataset)
        np.testing.assert_allclose(restored.target(), dataset.target())
        assert restored.dims[0] == dataset.dims[0]

    def test_to_dict_is_json_friendly(self, dataset):
        import json

        text = json.dumps(dataset.to_dict())
        assert "dgemm" in text
