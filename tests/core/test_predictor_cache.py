"""Tests for the multi-entry LRU prediction cache of ThreadPredictor."""

import numpy as np
import pytest

from repro.core.install import install_adsala
from repro.core.predictor import ThreadPredictor


DIMS_A = {"m": 256, "k": 256, "n": 256}
DIMS_B = {"m": 512, "k": 128, "n": 640}
DIMS_C = {"m": 1024, "k": 64, "n": 96}


@pytest.fixture(scope="module")
def base_predictor(laptop):
    bundle = install_adsala(
        platform=laptop,
        routines=["dgemm"],
        n_samples=14,
        threads_per_shape=5,
        n_test_shapes=5,
        candidate_models=["LinearRegression"],
        seed=0,
    )
    return bundle.predictor("dgemm")


def _clone(base: ThreadPredictor, capacity: int) -> ThreadPredictor:
    return ThreadPredictor(
        routine=base.routine,
        pipeline=base.pipeline,
        model=base.model,
        candidate_threads=base.candidate_threads,
        model_name=base.model_name,
        cache_capacity=capacity,
    )


class TestLruCache:
    def test_capacity_must_be_positive(self, base_predictor):
        with pytest.raises(ValueError, match="cache_capacity"):
            _clone(base_predictor, 0)

    def test_multi_entry_hits(self, base_predictor):
        predictor = _clone(base_predictor, 4)
        plans = {key: predictor.plan(dims) for key, dims in
                 (("a", DIMS_A), ("b", DIMS_B), ("c", DIMS_C))}
        assert all(not plan.from_cache for plan in plans.values())
        # All three shapes fit in the cache; every revisit hits.
        for key, dims in (("a", DIMS_A), ("b", DIMS_B), ("c", DIMS_C)):
            hit = predictor.plan(dims)
            assert hit.from_cache
            assert hit.threads == plans[key].threads
        assert predictor.cache_info() == {
            "hits": 3, "misses": 3, "size": 3, "capacity": 4,
        }

    def test_hit_returns_precomputed_plan_object(self, base_predictor):
        # The from_cache=True variant is built once at store time
        # (dataclasses.replace), not rebuilt on every hit.
        predictor = _clone(base_predictor, 4)
        predictor.plan(DIMS_A)
        first_hit = predictor.plan(DIMS_A)
        second_hit = predictor.plan(DIMS_A)
        assert first_hit is second_hit
        assert first_hit.from_cache

    def test_lru_eviction_order(self, base_predictor):
        predictor = _clone(base_predictor, 2)
        predictor.plan(DIMS_A)
        predictor.plan(DIMS_B)
        predictor.plan(DIMS_A)      # A becomes most recent
        predictor.plan(DIMS_C)      # evicts B (least recent)
        assert predictor.plan(DIMS_A).from_cache
        assert predictor.plan(DIMS_C).from_cache
        assert not predictor.plan(DIMS_B).from_cache   # was evicted

    def test_capacity_one_behaves_like_last_call_cache(self, base_predictor):
        predictor = _clone(base_predictor, 1)
        assert not predictor.plan(DIMS_A).from_cache
        assert predictor.plan(DIMS_A).from_cache
        assert not predictor.plan(DIMS_B).from_cache
        assert not predictor.plan(DIMS_A).from_cache   # evicted by B

    def test_use_cache_false_bypasses_lookup_but_stores(self, base_predictor):
        predictor = _clone(base_predictor, 4)
        plan = predictor.plan(DIMS_A, use_cache=False)
        assert not plan.from_cache
        assert predictor.plan(DIMS_A).from_cache
        again = predictor.plan(DIMS_A, use_cache=False)
        assert not again.from_cache

    def test_clear_cache(self, base_predictor):
        predictor = _clone(base_predictor, 4)
        predictor.plan(DIMS_A)
        predictor.clear_cache()
        assert predictor.cache_info()["size"] == 0
        assert not predictor.plan(DIMS_A).from_cache

    def test_cached_decision_matches_uncached(self, base_predictor):
        predictor = _clone(base_predictor, 4)
        uncached = predictor.plan(DIMS_A, use_cache=False)
        cached = predictor.plan(DIMS_A)
        assert cached.threads == uncached.threads
        assert cached.predicted_time == uncached.predicted_time


class TestBatchPrediction:
    def test_batch_matches_per_shape_predictions(self, base_predictor):
        shapes = [DIMS_A, DIMS_B, DIMS_C]
        batch_runtimes = base_predictor.predict_runtimes_batch(shapes)
        batch_threads = base_predictor.predict_threads_batch(shapes)
        for i, dims in enumerate(shapes):
            np.testing.assert_allclose(
                batch_runtimes[i], base_predictor.predict_runtimes(dims),
                rtol=1e-12,
            )
            assert batch_threads[i] == base_predictor.predict_threads(
                dims, use_cache=False
            )

    def test_batch_counts_one_model_evaluation(self, base_predictor):
        predictor = _clone(base_predictor, 4)
        before = predictor.n_model_evaluations
        predictor.predict_threads_batch([DIMS_A, DIMS_B, DIMS_C])
        assert predictor.n_model_evaluations == before + 1
