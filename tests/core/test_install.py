"""Tests for the installation workflow."""

import pytest

from repro.core.install import InstallationBundle, install_adsala
from repro.core.predictor import ThreadPredictor
from repro.machine.simulator import TimingSimulator


class TestBundleContents:
    def test_requested_routines_installed(self, small_bundle):
        assert small_bundle.installed_routines == ["dgemm", "dsyrk"]

    def test_predictor_lookup(self, small_bundle):
        predictor = small_bundle.predictor("dgemm")
        assert isinstance(predictor, ThreadPredictor)
        assert predictor.routine == "dgemm"

    def test_predictor_lookup_unknown_routine(self, small_bundle):
        with pytest.raises(KeyError, match="not installed"):
            small_bundle.predictor("dsymm")

    def test_best_models_mapping(self, small_bundle):
        best = small_bundle.best_models()
        assert set(best) == {"dgemm", "dsyrk"}
        assert all(name in ("LinearRegression", "DecisionTree") for name in best.values())

    def test_winning_model_used_by_predictor(self, small_bundle):
        for routine, installation in small_bundle.routines.items():
            assert installation.predictor.model_name == installation.best_model_name

    def test_dataset_sizes_match_campaign(self, small_bundle):
        for installation in small_bundle.routines.values():
            assert len(installation.dataset.unique_shapes()) == 18
            assert len(installation.test_shapes) == 8

    def test_candidate_threads_cover_platform(self, small_bundle, laptop):
        predictor = small_bundle.predictor("dgemm")
        assert predictor.candidate_threads[-1] == laptop.max_threads

    def test_settings_recorded(self, small_bundle):
        assert small_bundle.settings["n_samples"] == 18
        assert small_bundle.settings["use_yeo_johnson"] is True

    def test_candidate_names_recorded(self, small_bundle):
        assert set(small_bundle.candidate_names) == {"LinearRegression", "DecisionTree"}


class TestInstallOptions:
    def test_routine_names_normalised(self, laptop):
        bundle = install_adsala(
            platform=laptop,
            routines=["GEMM"],  # bare upper-case name -> double precision
            n_samples=6,
            threads_per_shape=3,
            n_test_shapes=3,
            candidate_models=["LinearRegression"],
            seed=0,
        )
        assert bundle.installed_routines == ["dgemm"]

    def test_empty_routines_rejected(self, laptop):
        with pytest.raises(ValueError, match="routines"):
            install_adsala(platform=laptop, routines=[])

    def test_external_simulator_reused(self, laptop):
        simulator = TimingSimulator(laptop, seed=3)
        bundle = install_adsala(
            platform=laptop,
            routines=["dtrsm"],
            n_samples=6,
            threads_per_shape=3,
            n_test_shapes=3,
            candidate_models=["LinearRegression"],
            simulator=simulator,
        )
        assert bundle.simulator is simulator

    def test_mismatched_simulator_rejected(self, laptop, gadi):
        simulator = TimingSimulator(gadi, seed=0)
        with pytest.raises(ValueError, match="platform"):
            install_adsala(platform=laptop, routines=["dgemm"], simulator=simulator)

    def test_isinstance_of_bundle(self, small_bundle):
        assert isinstance(small_bundle, InstallationBundle)
