"""Fused native evaluate: bit-identical to NumPy and the object path.

The native module promises three independently switchable stages (feature
fill, fused Yeo-Johnson + affine transform, stacked descent) plus one
end-to-end ``fused_evaluate`` chain, each **bit-identical** to the NumPy
expressions it replaces.  Every comparison here is exact array equality.
"""

import numpy as np
import pytest

from repro.blas.api import ROUTINE_KEYS, parse_routine
from repro.core import compiled as compiled_mod
from repro.core.compiled import CompiledPredictor, ModelKernel
from repro.core.features import FeatureGridWriter
from repro.core.predictor import ThreadPredictor
from repro.ml import _native
from repro.ml.model_zoo import CANDIDATE_MODEL_NAMES, make_model
from repro.preprocessing.pipeline import FusedTransform, PreprocessingPipeline

kernels = _native.load_kernels()

pytestmark = pytest.mark.skipif(
    kernels is None or kernels.fused_evaluate is None,
    reason="fused native kernels unavailable (no C compiler, or the "
    "transform probe failed on this host)",
)

THREADS = [1, 2, 4, 8]


def _random_dims(routine, n, seed):
    _, _, spec = parse_routine(routine)
    rng = np.random.default_rng(seed)
    return [
        {name: int(rng.integers(16, 4096)) for name in spec.dim_names}
        for _ in range(n)
    ]


def _trained_predictor(routine, model_name, seed=0, n=120):
    """A ThreadPredictor fitted on synthetic runtimes for one routine."""
    rng = np.random.default_rng(seed)
    writer = FeatureGridWriter(routine, np.asarray(THREADS, dtype=np.float64))
    X = writer.write_dicts(_random_dims(routine, n, seed)).copy()
    y = rng.random(X.shape[0]) * 10
    pipeline = PreprocessingPipeline()
    Xt, yt = pipeline.fit_transform(X, y)
    model = make_model(model_name)
    model.fit(Xt, yt)
    return ThreadPredictor(
        routine, pipeline, model, THREADS, model_name=model_name
    )


def _numpy_staged(compiled, dims_list):
    """The pure-NumPy staged result from the same compiled predictor."""
    grid = compiled._writer.write_dicts(dims_list)
    transformed = compiled._fused.transform_kept(grid)
    predictions = np.asarray(compiled._evaluate_model(transformed), dtype=float)
    return predictions.reshape(len(dims_list), compiled.n_candidates)


class TestFusedEquivalence:
    def test_all_routines_both_precisions(self):
        """Fused == staged NumPy == object reference, all 12 routine keys."""
        for index, routine in enumerate(ROUTINE_KEYS):
            predictor = _trained_predictor(routine, "DecisionTree", seed=index)
            compiled = predictor.compile()
            assert compiled._fused_call is not None, routine
            dims_list = _random_dims(routine, 23, seed=500 + index)
            fused = predictor.predict_runtimes_batch(dims_list)
            assert np.array_equal(fused, _numpy_staged(compiled, dims_list))
            with compiled_mod.reference_mode():
                reference = predictor.predict_runtimes_batch(dims_list)
            assert np.array_equal(fused, reference), routine

    @pytest.mark.parametrize("model_name", CANDIDATE_MODEL_NAMES)
    def test_every_model_kind(self, model_name):
        """Every zoo model rides the fused path (mode 0/1/2) bit-identically."""
        predictor = _trained_predictor("dgemm", model_name)
        compiled = predictor.compile()
        assert compiled._fused_call is not None
        dims_list = _random_dims("dgemm", 17, seed=9)
        fused = predictor.predict_runtimes_batch(dims_list)
        assert np.array_equal(fused, _numpy_staged(compiled, dims_list))
        with compiled_mod.reference_mode():
            reference = predictor.predict_runtimes_batch(dims_list)
        assert np.array_equal(fused, reference)

    @pytest.mark.parametrize("n_shapes", [1, 2, 3, 5, 7, 8, 9, 16, 31])
    def test_tail_sizes_around_lane_boundaries(self, n_shapes):
        """Row counts straddling the 8-lane block boundary (rows = 4·shapes)."""
        predictor = _trained_predictor("ssyr2k", "RandomForest")
        compiled = predictor.compile()
        dims_list = _random_dims("ssyr2k", n_shapes, seed=n_shapes)
        fused = predictor.predict_runtimes_batch(dims_list)
        assert np.array_equal(fused, _numpy_staged(compiled, dims_list))

    def test_lambda_fast_path_columns(self):
        """Transform kernel: every special-λ dispatch branch, bit for bit.

        Covers the scalar fast paths λ∈{-1, 0, .5, 1, 1.5, 2, 3}, generic
        λ, near-special λ just outside the 1e-12 thresholds, and the
        negative-branch exponents, over matrices with mixed-sign values
        and non-multiple-of-8 row counts.
        """
        lambdas = np.array(
            [-1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 0.37, -0.84, 2.5,
             1e-13, 2.0 - 1e-13, 2.0 + 1e-13, -2.2]
        )
        n_cols = lambdas.size
        rng = np.random.default_rng(42)
        for n_rows in (1, 7, 8, 13, 64, 101):
            X = rng.normal(scale=3.0, size=(n_rows, n_cols))
            X[rng.random(X.shape) < 0.4] *= -1.0
            shift = rng.normal(size=n_cols)
            scale = rng.random(n_cols) + 0.5
            fused = FusedTransform(
                kept_indices=np.arange(n_cols),
                lambdas=lambdas,
                shift=shift,
                scale=scale,
            )
            expected = fused.transform_kept(X)
            got = kernels.fused_transform(X.copy(), lambdas, shift, scale)
            assert np.array_equal(got, expected)

    def test_affine_only_transform(self):
        """Plain-scaler pipelines (lambdas=None) stay bit-identical."""
        rng = np.random.default_rng(5)
        X = rng.normal(size=(13, 6)) * 100
        shift = rng.normal(size=6)
        scale = rng.random(6) + 0.25
        fused = FusedTransform(
            kept_indices=np.arange(6), lambdas=None, shift=shift, scale=scale
        )
        got = kernels.fused_transform(X.copy(), None, shift, scale)
        assert np.array_equal(got, fused.transform_kept(X))

    def test_feature_fill_all_routines(self):
        """The column-program fill matches ``write_dicts`` bit for bit."""
        for index, routine in enumerate(ROUTINE_KEYS):
            writer = FeatureGridWriter(
                routine, np.asarray(THREADS, dtype=np.float64)
            )
            program = writer.column_program()
            assert program is not None, routine
            assert writer.column_program() is program  # memoised
            dims_list = _random_dims(routine, 11, seed=700 + index)
            expected = writer.write_dicts(dims_list).copy()
            dims = writer.load_dims(dims_list)
            grid = writer.grid_view(dims.shape[0])
            grid.fill(np.nan)
            kernels.feature_fill(program, dims, writer.nt, grid)
            assert np.array_equal(grid, expected), routine


class TestKillSwitches:
    @pytest.fixture(autouse=True)
    def _restore_kernel_cache(self):
        yield
        _native._reset_kernel_cache()
        assert _native.load_kernels() is not None

    def test_master_switch_disables_everything(self, monkeypatch):
        monkeypatch.setenv("ADSALA_NATIVE", "0")
        _native._reset_kernel_cache()
        assert _native.load_kernels() is None
        assert _native.load_kernel() is None
        predictor = _trained_predictor("strmm", "DecisionTree")
        compiled = predictor.compile()
        assert compiled._fused_call is None
        assert compiled._native_fill is None
        assert compiled._native_transform is None
        dims_list = _random_dims("strmm", 9, seed=1)
        disabled = predictor.predict_runtimes_batch(dims_list)
        with compiled_mod.reference_mode():
            reference = predictor.predict_runtimes_batch(dims_list)
        assert np.array_equal(disabled, reference)

    @pytest.mark.parametrize(
        "env,stage",
        [
            ("ADSALA_NATIVE_FILL", "feature_fill"),
            ("ADSALA_NATIVE_TRANSFORM", "fused_transform"),
            ("ADSALA_NATIVE_DESCENT", "descent"),
        ],
    )
    def test_per_stage_switch_disables_stage_and_fused(
        self, monkeypatch, env, stage
    ):
        monkeypatch.setenv(env, "0")
        _native._reset_kernel_cache()
        bundle = _native.load_kernels()
        assert bundle is not None
        assert getattr(bundle, stage) is None
        assert bundle.fused_evaluate is None  # chain needs all stages
        others = {"feature_fill", "fused_transform", "descent"} - {stage}
        for other in others:
            assert getattr(bundle, other) is not None

    def test_staged_fallback_matches_reference(self, monkeypatch):
        """With descent off, fill+transform still run natively, same bits."""
        monkeypatch.setenv("ADSALA_NATIVE_DESCENT", "0")
        _native._reset_kernel_cache()
        predictor = _trained_predictor("dsymm", "RandomForest")
        compiled = predictor.compile()
        assert compiled._fused_call is None
        assert compiled._native_fill is not None
        assert compiled._native_transform is not None
        dims_list = _random_dims("dsymm", 13, seed=2)
        staged = predictor.predict_runtimes_batch(dims_list)
        with compiled_mod.reference_mode():
            reference = predictor.predict_runtimes_batch(dims_list)
        assert np.array_equal(staged, reference)


class TestSelfCheck:
    def test_selfcheck_clears_after_first_batch(self):
        predictor = _trained_predictor("dtrsm", "DecisionTree")
        compiled = predictor.compile()
        assert compiled._selfcheck_pending
        predictor.predict_runtimes_batch(_random_dims("dtrsm", 3, seed=3))
        assert not compiled._selfcheck_pending
        assert compiled._fused_call is not None  # check passed, stays on

    def test_selfcheck_catches_divergence_and_falls_back(self):
        """A tampered flat state must trip the guard, not ship wrong plans."""
        predictor = _trained_predictor("sgemm", "DecisionTree")
        compiled = predictor.compile()
        lambdas, shift, scale = compiled._flat_state
        compiled._flat_state = (lambdas, shift + 10.0, scale)
        dims_list = _random_dims("sgemm", 7, seed=4)
        with pytest.warns(RuntimeWarning, match="diverged"):
            out = predictor.predict_runtimes_batch(dims_list)
        assert compiled._fused_call is None
        assert compiled._native_fill is None
        assert compiled._native_transform is None
        with compiled_mod.reference_mode():
            reference = predictor.predict_runtimes_batch(dims_list)
        assert np.array_equal(out, reference)

    def test_selfcheck_opt_out(self, monkeypatch):
        monkeypatch.setenv("ADSALA_NATIVE_SELFCHECK", "0")
        predictor = _trained_predictor("dsyrk", "DecisionTree")
        compiled = predictor.compile()
        assert not compiled._selfcheck_pending


class TestPrebuiltHandoff:
    @pytest.fixture(autouse=True)
    def _restore(self):
        previous = _native._PREBUILT
        yield
        _native._PREBUILT = previous
        _native._reset_kernel_cache()
        assert _native.load_kernels() is not None

    def test_library_path_round_trip(self):
        path = _native.library_path()
        assert path is not None
        _native._PREBUILT = None
        _native.adopt_library(path)
        assert _native._PREBUILT is not None
        assert str(_native._PREBUILT) == path
        _native._reset_kernel_cache()
        assert _native.load_kernels() is not None

    def test_adopt_rejects_missing_path(self):
        _native._PREBUILT = None
        _native.adopt_library("/nonexistent/kernels_feedfacefeedface.so")
        assert _native._PREBUILT is None

    def test_adopt_rejects_digest_mismatch(self, tmp_path):
        _native._PREBUILT = None
        stale = tmp_path / "kernels_0000000000000000.so"
        stale.write_bytes(b"not a library")
        _native.adopt_library(str(stale))
        assert _native._PREBUILT is None

    def test_adopt_none_is_noop(self):
        _native._PREBUILT = None
        _native.adopt_library(None)
        assert _native._PREBUILT is None


class TestFromState:
    def test_bare_callable_still_accepted(self):
        """Old-style ``from_state`` with a bare evaluator keeps working."""
        predictor = _trained_predictor("dgemm", "LinearRegression")
        source = predictor.compile()
        rebuilt = CompiledPredictor.from_state(
            "dgemm", THREADS, source._fused, source._evaluate_model
        )
        assert rebuilt._model_kernel.kind == "opaque"
        dims_list = _random_dims("dgemm", 8, seed=6)
        assert np.array_equal(
            rebuilt.predict_runtimes_batch(dims_list),
            predictor.predict_runtimes_batch(dims_list),
        )

    def test_model_kernel_from_state_keeps_fused(self):
        """ModelKernel state (the procshard path) keeps the fused call."""
        kernel = ModelKernel(kind="linear", evaluate=lambda X: X.sum(axis=1))
        predictor = _trained_predictor("ssymm", "LinearRegression")
        source = predictor.compile()
        rebuilt = CompiledPredictor.from_state(
            "ssymm", THREADS, source._fused, source._model_kernel
        )
        assert rebuilt._fused_call is not None
        dims_list = _random_dims("ssymm", 8, seed=7)
        assert np.array_equal(
            rebuilt.predict_runtimes_batch(dims_list),
            predictor.predict_runtimes_batch(dims_list),
        )
        assert kernel.kind == "linear"  # silence unused-var linters
