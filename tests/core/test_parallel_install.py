"""Determinism tests for the parallel installation pipeline.

``map_parallel`` fans work out over processes/threads; every seed flows
through the payloads explicitly, so serial and parallel runs must produce
bit-identical results at every level (folds, grid search, candidate
evaluation, whole bundles).
"""

import os

import numpy as np
import pytest

from repro.core.gather import DataGatherer
from repro.core.install import install_adsala
from repro.core.selection import evaluate_candidates
from repro.machine.simulator import TimingSimulator
from repro.ml.linear import Ridge
from repro.ml.model_selection import GridSearchCV, cross_val_score
from repro.ml.tree import DecisionTreeRegressor
from repro.parallel import ADSALA_JOBS_ENV, map_parallel, resolve_n_jobs


def _square(x):
    return x * x


class TestMapParallel:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_agree_and_preserve_order(self, backend):
        items = list(range(12))
        assert map_parallel(_square, items, n_jobs=3, backend=backend) == [
            x * x for x in items
        ]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            map_parallel(_square, [1], backend="gpu")

    def test_empty_items(self):
        assert map_parallel(_square, [], n_jobs=4) == []

    def test_resolve_defaults_and_env(self, monkeypatch):
        monkeypatch.delenv(ADSALA_JOBS_ENV, raising=False)
        assert resolve_n_jobs(None) == 1
        monkeypatch.setenv(ADSALA_JOBS_ENV, "3")
        assert resolve_n_jobs(None) == 3
        assert resolve_n_jobs(5) == 5
        assert resolve_n_jobs(-1) == max(1, os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_n_jobs(0)

    def test_env_garbage_raises_clear_error(self, monkeypatch):
        # Regression: a bare int() used to raise "invalid literal for
        # int()" with no hint that $ADSALA_JOBS was the culprit.
        monkeypatch.setenv(ADSALA_JOBS_ENV, "lots")
        with pytest.raises(ValueError, match=r"ADSALA_JOBS.*'lots'"):
            resolve_n_jobs(None)
        monkeypatch.setenv(ADSALA_JOBS_ENV, "4.5")
        with pytest.raises(ValueError, match="ADSALA_JOBS"):
            resolve_n_jobs(None)


class TestModelSelectionParallel:
    def test_cross_val_score_parallel_matches_serial(self, regression_data):
        X, y = regression_data
        estimator = DecisionTreeRegressor(max_depth=4, random_state=0)
        serial = cross_val_score(estimator, X, y, cv=4, n_jobs=1)
        parallel = cross_val_score(estimator, X, y, cv=4, n_jobs=2)
        np.testing.assert_array_equal(serial, parallel)

    def test_grid_search_parallel_matches_serial(self, regression_data):
        X, y = regression_data
        grid = {"alpha": [0.01, 0.1, 1.0, 10.0]}
        serial = GridSearchCV(Ridge(), grid, cv=3, n_jobs=1).fit(X, y)
        parallel = GridSearchCV(Ridge(), grid, cv=3, n_jobs=2).fit(X, y)
        assert serial.best_params_ == parallel.best_params_
        assert serial.best_score_ == parallel.best_score_
        assert serial.results_ == parallel.results_


class TestInstallationParallel:
    CANDIDATES = ["LinearRegression", "DecisionTree"]

    def _install(self, laptop, routines, n_jobs, backend="process"):
        return install_adsala(
            platform=laptop,
            routines=routines,
            n_samples=14,
            threads_per_shape=5,
            n_test_shapes=6,
            candidate_models=self.CANDIDATES,
            seed=0,
            n_jobs=n_jobs,
            parallel_backend=backend,
        )

    def _assert_bundles_identical(self, a, b, routines):
        assert a.best_models() == b.best_models()
        assert a.simulator.n_evaluations == b.simulator.n_evaluations
        for routine in routines:
            left = a.routines[routine]
            right = b.routines[routine]
            assert left.dataset.times == right.dataset.times
            assert left.test_shapes == right.test_shapes
            rows_left = [e.__dict__ for e in left.selection.evaluations]
            rows_right = [e.__dict__ for e in right.selection.evaluations]
            assert rows_left == rows_right
            for dims in left.test_shapes:
                assert left.predictor.predict_threads(
                    dims, use_cache=False
                ) == right.predictor.predict_threads(dims, use_cache=False)

    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_multi_routine_parallel_bundle_matches_serial(self, laptop, backend):
        routines = ["dgemm", "dsyrk"]
        serial = self._install(laptop, routines, n_jobs=1)
        parallel = self._install(laptop, routines, n_jobs=2, backend=backend)
        self._assert_bundles_identical(serial, parallel, routines)

    def test_single_routine_candidate_fanout_matches_serial(self, laptop):
        routines = ["dsymm"]
        serial = self._install(laptop, routines, n_jobs=1)
        parallel = self._install(laptop, routines, n_jobs=2)
        self._assert_bundles_identical(serial, parallel, routines)

    def test_evaluate_candidates_parallel_matches_serial(self, laptop):
        simulator = TimingSimulator(laptop, seed=0)
        gatherer = DataGatherer(
            simulator, "dgemm", n_shapes=14, threads_per_shape=5, seed=0
        )
        dataset = gatherer.gather()
        test_shapes = gatherer.gather_test_set(6)
        reports = [
            evaluate_candidates(
                dataset=dataset,
                simulator=TimingSimulator(laptop, seed=0),
                test_shapes=test_shapes,
                candidate_names=self.CANDIDATES,
                seed=0,
                n_jobs=n_jobs,
            )
            for n_jobs in (1, 2)
        ]
        assert reports[0].best_model_name == reports[1].best_model_name
        assert [e.__dict__ for e in reports[0].evaluations] == [
            e.__dict__ for e in reports[1].evaluations
        ]

    def test_baseline_times_hoisted_out_of_candidate_loop(self, laptop):
        # The max-thread baseline of each held-out shape is candidate-
        # independent: the simulator must be consulted (1 + n_candidates)
        # times per shape, not 2 * n_candidates times as before.
        simulator = TimingSimulator(laptop, seed=0)
        gatherer = DataGatherer(
            simulator, "dgemm", n_shapes=14, threads_per_shape=5, seed=0
        )
        dataset = gatherer.gather()
        test_shapes = gatherer.gather_test_set(6)
        before = simulator.n_evaluations
        evaluate_candidates(
            dataset=dataset,
            simulator=simulator,
            test_shapes=test_shapes,
            candidate_names=self.CANDIDATES,
            seed=0,
        )
        consumed = simulator.n_evaluations - before
        assert consumed == len(test_shapes) * (len(self.CANDIDATES) + 1)
