"""Tests for installation-time hyper-parameter tuning."""

import numpy as np
import pytest

from repro.core.tuning import TuningResult, fit_candidate, tune_model


@pytest.fixture(scope="module")
def timing_like_data():
    """Synthetic data shaped like a (features, runtime) regression problem."""
    rng = np.random.default_rng(0)
    size = rng.uniform(1e2, 1e6, size=150)
    threads = rng.integers(1, 17, size=150).astype(float)
    X = np.column_stack([size, threads, size / threads])
    y = 1e-8 * size / threads + 1e-5 * threads + rng.normal(0, 1e-5, 150)
    return X, y


class TestTuneModel:
    def test_parameterless_model_is_just_fitted(self, timing_like_data):
        X, y = timing_like_data
        result = tune_model("LinearRegression", X, y)
        assert isinstance(result, TuningResult)
        assert result.best_params == {}
        assert np.isnan(result.cv_score)
        assert hasattr(result.model, "coef_")

    def test_grid_model_returns_best_params(self, timing_like_data):
        X, y = timing_like_data
        result = tune_model("DecisionTree", X, y, cv=3)
        assert set(result.best_params) <= {"max_depth", "min_samples_leaf"}
        assert result.best_params  # non-empty
        assert np.isfinite(result.cv_score)

    def test_custom_grid_overrides_default(self, timing_like_data):
        X, y = timing_like_data
        result = tune_model("KNN", X, y, cv=3, param_grid={"n_neighbors": [2, 4]})
        assert result.best_params["n_neighbors"] in (2, 4)

    def test_unknown_model_raises(self, timing_like_data):
        X, y = timing_like_data
        with pytest.raises(KeyError):
            tune_model("CatBoost", X, y)


class TestFitCandidate:
    def test_without_tuning_uses_defaults(self, timing_like_data):
        X, y = timing_like_data
        result = fit_candidate("DecisionTree", X, y, tune=False)
        assert result.best_params == {}
        predictions = result.model.predict(X[:5])
        assert predictions.shape == (5,)

    def test_with_tuning_selects_params(self, timing_like_data):
        X, y = timing_like_data
        result = fit_candidate("ElasticNet", X, y, tune=True, cv=3)
        assert "alpha" in result.best_params

    def test_fitted_model_predicts_reasonably(self, timing_like_data):
        from repro.ml.metrics import r2_score

        X, y = timing_like_data
        result = fit_candidate("XGBoost", X, y, tune=False)
        assert r2_score(y, result.model.predict(X)) > 0.7
