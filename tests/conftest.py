"""Shared fixtures for the test suite.

Everything that needs a trained installation uses the small ``laptop``
platform preset with a scaled-down campaign so the whole suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.install import install_adsala
from repro.machine.platforms import get_platform
from repro.machine.simulator import TimingSimulator


@pytest.fixture(scope="session")
def laptop():
    """The small 8-core test platform."""
    return get_platform("laptop")


@pytest.fixture(scope="session")
def gadi():
    return get_platform("gadi")


@pytest.fixture(scope="session")
def setonix():
    return get_platform("setonix")


@pytest.fixture()
def simulator(laptop):
    """A fresh timing simulator on the laptop platform."""
    return TimingSimulator(laptop, seed=0)


@pytest.fixture(scope="session")
def regression_data():
    """Synthetic non-linear regression data shared by the ML tests."""
    rng = np.random.default_rng(42)
    X = rng.uniform(-2.0, 2.0, size=(240, 4))
    y = (
        2.0 * X[:, 0]
        - 1.5 * X[:, 1] ** 2
        + 0.8 * X[:, 2] * X[:, 3]
        + 0.3 * np.sin(3.0 * X[:, 0])
        + rng.normal(0.0, 0.05, size=X.shape[0])
    )
    return X, y


@pytest.fixture(scope="session")
def linear_data():
    """Exactly linear data (no noise) for closed-form recovery tests."""
    rng = np.random.default_rng(7)
    X = rng.normal(size=(120, 3))
    coef = np.array([1.5, -2.0, 0.5])
    y = X @ coef + 3.0
    return X, y, coef, 3.0


@pytest.fixture(scope="session")
def small_bundle(laptop):
    """A tiny but complete ADSALA installation used across the suite."""
    return install_adsala(
        platform=laptop,
        routines=["dgemm", "dsyrk"],
        n_samples=18,
        threads_per_shape=5,
        n_test_shapes=8,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=0,
    )
