"""End-to-end integration tests: install -> predict -> execute -> evaluate.

These tests exercise the whole pipeline the way the paper's evaluation does,
on the small laptop platform so they stay fast, and assert the *qualitative*
claims of the paper rather than exact numbers:

* the installed predictor beats (or at worst matches) the maximum-thread
  baseline on average over held-out problems,
* the SYMM speedup exceeds the GEMM speedup,
* the executed results remain numerically correct,
* the whole state survives a save/load round trip.
"""

import numpy as np
import pytest

from repro.core.install import install_adsala
from repro.core.persistence import load_bundle, save_bundle
from repro.core.runtime import AdsalaBlas, AdsalaRuntime


@pytest.fixture(scope="module")
def eval_bundle(laptop):
    """A moderately sized installation for speedup evaluation."""
    return install_adsala(
        platform=laptop,
        routines=["dgemm", "dsymm"],
        n_samples=48,
        threads_per_shape=8,
        n_test_shapes=25,
        candidate_models=["LinearRegression", "DecisionTree", "XGBoost"],
        seed=0,
    )


def mean_speedup(bundle, routine):
    simulator = bundle.simulator
    installation = bundle.routines[routine]
    predictor = installation.predictor
    ratios = []
    for dims in installation.test_shapes:
        threads = predictor.predict_threads(dims, use_cache=False)
        ratios.append(
            simulator.time_at_max_threads(routine, dims)
            / simulator.time(routine, dims, threads)
        )
    return float(np.mean(ratios))


class TestHeadlineClaims:
    def test_adsala_does_not_lose_to_max_threads_on_average(self, eval_bundle):
        for routine in eval_bundle.installed_routines:
            assert mean_speedup(eval_bundle, routine) > 0.97

    def test_symm_speedup_exceeds_gemm_speedup(self, eval_bundle):
        assert mean_speedup(eval_bundle, "dsymm") > mean_speedup(eval_bundle, "dgemm")

    def test_selected_models_beat_blind_max_threads_for_symm(self, eval_bundle):
        # SYMM is the routine with the most headroom; ADSALA should realise a
        # clearly positive speedup there.
        assert mean_speedup(eval_bundle, "dsymm") > 1.05

    def test_predicted_threads_adapt_to_problem_size(self, eval_bundle, laptop):
        predictor = eval_bundle.predictor("dsymm")
        chosen = {
            predictor.predict_threads(dims, use_cache=False)
            for dims in eval_bundle.routines["dsymm"].test_shapes
        }
        # The predictor must not collapse to a single constant answer.
        assert len(chosen) > 1
        assert all(1 <= c <= laptop.max_threads for c in chosen)


class TestExecutionPath:
    def test_numerical_correctness_through_runtime(self, eval_bundle):
        blas = AdsalaBlas(eval_bundle, execution_thread_cap=2, tile=64)
        rng = np.random.default_rng(0)
        A = rng.normal(size=(150, 100))
        B = rng.normal(size=(100, 80))
        np.testing.assert_allclose(blas.gemm(A, B), A @ B, rtol=1e-10)
        S = rng.normal(size=(90, 90))
        C = rng.normal(size=(90, 40))
        from repro.blas import reference

        np.testing.assert_allclose(blas.symm(S, C), reference.symm(S, C), rtol=1e-10)

    def test_runtime_cache_avoids_reevaluation(self, eval_bundle):
        runtime = AdsalaRuntime(eval_bundle)
        before = runtime.cache_statistics()["model_evaluations"]
        for _ in range(5):
            runtime.plan("dgemm", m=321, k=123, n=213)
        after = runtime.cache_statistics()
        assert after["model_evaluations"] == before + 1
        assert after["cache_hits"] >= 4


class TestPersistenceIntegration:
    def test_saved_bundle_reproduces_speedups(self, eval_bundle, tmp_path):
        path = save_bundle(eval_bundle, tmp_path / "bundle")
        restored = load_bundle(path)
        for routine in eval_bundle.installed_routines:
            original = eval_bundle.predictor(routine)
            loaded = restored.predictor(routine)
            for dims in eval_bundle.routines[routine].test_shapes[:5]:
                assert loaded.predict_threads(dims, use_cache=False) == original.predict_threads(
                    dims, use_cache=False
                )


class TestCrossPlatformContrast:
    """Gadi and Setonix installations should differ in the paper's ways."""

    @pytest.fixture(scope="class")
    def tiny_installs(self):
        bundles = {}
        for platform_name in ("gadi", "setonix"):
            from repro.machine.platforms import get_platform

            platform = get_platform(platform_name)
            bundles[platform_name] = install_adsala(
                platform=platform,
                routines=["dsymm"],
                n_samples=15,
                threads_per_shape=6,
                n_test_shapes=10,
                candidate_models=["DecisionTree"],
                seed=0,
            )
        return bundles

    def test_predicted_threads_respect_platform_limits(self, tiny_installs):
        for name, bundle in tiny_installs.items():
            predictor = bundle.predictor("dsymm")
            for dims in bundle.routines["dsymm"].test_shapes[:5]:
                assert predictor.predict_threads(dims, use_cache=False) <= bundle.platform.max_threads

    def test_symm_chosen_threads_below_physical_cores_mostly(self, tiny_installs):
        # Paper Fig. 4: SYMM's optimum sits far below the core count on both
        # machines; the trained predictors should reflect that.
        for name, bundle in tiny_installs.items():
            predictor = bundle.predictor("dsymm")
            chosen = [
                predictor.predict_threads(dims, use_cache=False)
                for dims in bundle.routines["dsymm"].test_shapes
            ]
            below = sum(c < bundle.platform.physical_cores for c in chosen)
            assert below >= len(chosen) * 0.6
