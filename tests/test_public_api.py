"""Tests for the top-level public API surface."""

import inspect

import pytest

import repro
from repro import blas, core, harness, machine, ml, preprocessing


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_entry_points_importable(self):
        assert callable(repro.install_adsala)
        assert inspect.isclass(repro.AdsalaBlas)
        assert inspect.isclass(repro.ThreadPredictor)
        assert callable(repro.get_platform)

    def test_list_platforms_exposed(self):
        assert set(repro.list_platforms()) >= {"setonix", "gadi", "laptop"}


class TestSubpackageExports:
    @pytest.mark.parametrize("module", [ml, preprocessing, blas, machine, core, harness])
    def test_subpackage_all_resolves(self, module):
        assert hasattr(module, "__all__") and module.__all__
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"

    @pytest.mark.parametrize("module", [ml, preprocessing, blas, machine, core, harness])
    def test_subpackage_has_docstring(self, module):
        assert module.__doc__ and len(module.__doc__.strip()) > 40


class TestDocumentation:
    def test_public_classes_have_docstrings(self):
        from repro.core.install import InstallationBundle, install_adsala
        from repro.core.predictor import ThreadPredictor
        from repro.core.runtime import AdsalaBlas, AdsalaRuntime
        from repro.machine.simulator import TimingSimulator

        for obj in (InstallationBundle, install_adsala, ThreadPredictor,
                    AdsalaBlas, AdsalaRuntime, TimingSimulator):
            assert obj.__doc__ and len(obj.__doc__.strip()) > 20

    def test_candidate_models_have_docstrings(self):
        from repro.ml.model_zoo import CANDIDATE_MODEL_NAMES, make_model

        for name in CANDIDATE_MODEL_NAMES:
            model = make_model(name)
            assert type(model).__doc__ and len(type(model).__doc__.strip()) > 20
