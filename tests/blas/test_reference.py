"""Reference-implementation tests, checked against scipy.linalg.blas."""

import numpy as np
import pytest
from scipy.linalg import blas as scipy_blas

from repro.blas import reference


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestHelpers:
    def test_symmetrize_lower(self, rng):
        A = rng.normal(size=(5, 5))
        full = reference.symmetrize(A, lower=True)
        np.testing.assert_allclose(full, full.T)
        np.testing.assert_allclose(np.tril(full), np.tril(A))

    def test_symmetrize_upper(self, rng):
        A = rng.normal(size=(4, 4))
        full = reference.symmetrize(A, lower=False)
        np.testing.assert_allclose(np.triu(full), np.triu(A))

    def test_symmetrize_requires_square(self, rng):
        with pytest.raises(ValueError, match="square"):
            reference.symmetrize(rng.normal(size=(3, 4)))

    def test_make_triangular_unit_diag(self, rng):
        A = rng.normal(size=(4, 4))
        tri = reference.make_triangular(A, lower=True, unit_diag=True)
        np.testing.assert_allclose(np.diag(tri), 1.0)
        np.testing.assert_allclose(np.tril(tri, -1), np.tril(A, -1))


class TestGemm:
    def test_matches_scipy(self, rng):
        A, B = rng.normal(size=(17, 9)), rng.normal(size=(9, 23))
        expected = scipy_blas.dgemm(1.0, A, B)
        np.testing.assert_allclose(reference.gemm(A, B), expected, rtol=1e-12)

    def test_alpha_beta_accumulation(self, rng):
        A, B, C = rng.normal(size=(6, 4)), rng.normal(size=(4, 5)), rng.normal(size=(6, 5))
        result = reference.gemm(A, B, C=C, alpha=2.0, beta=-0.5)
        np.testing.assert_allclose(result, 2.0 * A @ B - 0.5 * C, rtol=1e-12)

    def test_transposed_operands(self, rng):
        A, B = rng.normal(size=(4, 6)), rng.normal(size=(5, 4))
        result = reference.gemm(A, B, transa=True, transb=True)
        np.testing.assert_allclose(result, A.T @ B.T, rtol=1e-12)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError, match="Inner dimensions"):
            reference.gemm(rng.normal(size=(3, 4)), rng.normal(size=(5, 3)))

    def test_beta_without_c_rejected(self, rng):
        with pytest.raises(ValueError, match="requires C"):
            reference.gemm(rng.normal(size=(3, 4)), rng.normal(size=(4, 3)), beta=1.0)


class TestSymm:
    @pytest.mark.parametrize("lower", [True, False])
    def test_matches_scipy_left(self, rng, lower):
        A = rng.normal(size=(7, 7))
        B = rng.normal(size=(7, 5))
        expected = scipy_blas.dsymm(1.0, A, B, lower=int(lower), side=0)
        np.testing.assert_allclose(
            reference.symm(A, B, side="L", lower=lower), expected, rtol=1e-12
        )

    @pytest.mark.parametrize("lower", [True, False])
    def test_matches_scipy_right(self, rng, lower):
        A = rng.normal(size=(5, 5))
        B = rng.normal(size=(7, 5))
        expected = scipy_blas.dsymm(1.0, A, B, lower=int(lower), side=1)
        np.testing.assert_allclose(
            reference.symm(A, B, side="R", lower=lower), expected, rtol=1e-12
        )

    def test_only_selected_triangle_is_read(self, rng):
        A = rng.normal(size=(6, 6))
        B = rng.normal(size=(6, 3))
        A_garbage = A.copy()
        A_garbage[np.triu_indices(6, 1)] = 1e9  # pollute the unread triangle
        np.testing.assert_allclose(
            reference.symm(A, B, lower=True), reference.symm(A_garbage, B, lower=True)
        )

    def test_beta_accumulation(self, rng):
        A, B, C = rng.normal(size=(4, 4)), rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        result = reference.symm(A, B, C=C, alpha=1.5, beta=2.0)
        expected = 1.5 * reference.symmetrize(A) @ B + 2.0 * C
        np.testing.assert_allclose(result, expected, rtol=1e-12)

    def test_invalid_side(self, rng):
        with pytest.raises(ValueError, match="side"):
            reference.symm(rng.normal(size=(3, 3)), rng.normal(size=(3, 2)), side="X")


class TestSyrk:
    def test_matches_scipy(self, rng):
        A = rng.normal(size=(6, 9))
        expected_lower = scipy_blas.dsyrk(1.0, A, lower=1)
        ours = reference.syrk(A)
        np.testing.assert_allclose(np.tril(ours), np.tril(expected_lower), rtol=1e-12)

    def test_transposed_variant(self, rng):
        A = rng.normal(size=(6, 9))
        np.testing.assert_allclose(reference.syrk(A, trans=True), A.T @ A, rtol=1e-12)

    def test_result_is_symmetric(self, rng):
        result = reference.syrk(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(result, result.T)

    def test_beta_accumulates_symmetric_c(self, rng):
        A = rng.normal(size=(4, 6))
        C = rng.normal(size=(4, 4))
        result = reference.syrk(A, C=C, alpha=1.0, beta=3.0)
        expected = A @ A.T + 3.0 * reference.symmetrize(C)
        np.testing.assert_allclose(result, expected, rtol=1e-12)

    def test_wrong_c_shape(self, rng):
        with pytest.raises(ValueError, match="expected"):
            reference.syrk(rng.normal(size=(4, 6)), C=rng.normal(size=(3, 3)), beta=1.0)


class TestSyr2k:
    def test_matches_scipy(self, rng):
        A, B = rng.normal(size=(5, 8)), rng.normal(size=(5, 8))
        expected = scipy_blas.dsyr2k(1.0, A, B, lower=1)
        ours = reference.syr2k(A, B)
        np.testing.assert_allclose(np.tril(ours), np.tril(expected), rtol=1e-12)

    def test_definition(self, rng):
        A, B = rng.normal(size=(4, 6)), rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            reference.syr2k(A, B), A @ B.T + B @ A.T, rtol=1e-12
        )

    def test_symmetric_result(self, rng):
        result = reference.syr2k(rng.normal(size=(6, 3)), rng.normal(size=(6, 3)))
        np.testing.assert_allclose(result, result.T)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="same shape"):
            reference.syr2k(rng.normal(size=(4, 3)), rng.normal(size=(5, 3)))


class TestTrmm:
    @pytest.mark.parametrize("lower", [True, False])
    @pytest.mark.parametrize("transa", [True, False])
    def test_matches_scipy(self, rng, lower, transa):
        A = rng.normal(size=(6, 6))
        B = rng.normal(size=(6, 4))
        expected = scipy_blas.dtrmm(
            1.0, A, B, side=0, lower=int(lower), trans_a=int(transa)
        )
        ours = reference.trmm(A, B, lower=lower, transa=transa)
        np.testing.assert_allclose(ours, expected, rtol=1e-12)

    def test_right_side(self, rng):
        A = rng.normal(size=(4, 4))
        B = rng.normal(size=(6, 4))
        expected = B @ np.tril(A)
        np.testing.assert_allclose(reference.trmm(A, B, side="R"), expected, rtol=1e-12)

    def test_unit_diagonal(self, rng):
        A = rng.normal(size=(5, 5))
        B = rng.normal(size=(5, 3))
        tri = np.tril(A, -1) + np.eye(5)
        np.testing.assert_allclose(
            reference.trmm(A, B, unit_diag=True), tri @ B, rtol=1e-12
        )

    def test_caller_array_not_modified(self, rng):
        A, B = rng.normal(size=(4, 4)), rng.normal(size=(4, 2))
        B_copy = B.copy()
        reference.trmm(A, B)
        np.testing.assert_allclose(B, B_copy)


class TestTrsm:
    @pytest.mark.parametrize("lower", [True, False])
    @pytest.mark.parametrize("transa", [True, False])
    def test_matches_scipy(self, rng, lower, transa):
        A = rng.normal(size=(6, 6)) + 6.0 * np.eye(6)   # well conditioned
        B = rng.normal(size=(6, 4))
        expected = scipy_blas.dtrsm(
            1.0, A, B, side=0, lower=int(lower), trans_a=int(transa)
        )
        ours = reference.trsm(A, B, lower=lower, transa=transa)
        np.testing.assert_allclose(ours, expected, rtol=1e-9)

    def test_solves_the_system(self, rng):
        A = rng.normal(size=(5, 5)) + 5.0 * np.eye(5)
        B = rng.normal(size=(5, 3))
        X = reference.trsm(A, B, alpha=2.0)
        np.testing.assert_allclose(np.tril(A) @ X, 2.0 * B, rtol=1e-9)

    def test_right_side_solution(self, rng):
        A = rng.normal(size=(3, 3)) + 4.0 * np.eye(3)
        B = rng.normal(size=(5, 3))
        X = reference.trsm(A, B, side="R")
        np.testing.assert_allclose(X @ np.tril(A), B, rtol=1e-9)

    def test_singular_matrix_raises(self, rng):
        A = np.zeros((4, 4))
        with pytest.raises(np.linalg.LinAlgError):
            reference.trsm(A, rng.normal(size=(4, 2)))

    def test_roundtrip_with_trmm(self, rng):
        A = rng.normal(size=(6, 6)) + 6.0 * np.eye(6)
        B = rng.normal(size=(6, 4))
        product = reference.trmm(A, B)
        recovered = reference.trsm(A, product)
        np.testing.assert_allclose(recovered, B, rtol=1e-8)
