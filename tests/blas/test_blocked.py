"""Tests for the tiled (blocked) BLAS algorithms."""

import numpy as np
import pytest

from repro.blas import blocked, reference


@pytest.fixture()
def rng():
    return np.random.default_rng(1)


def run_tasks(tasks, shape, dtype=float):
    """Execute tile tasks serially into a fresh output array."""
    out = np.zeros(shape, dtype=dtype)
    for row_slice, col_slice, thunk in tasks:
        out[row_slice, col_slice] = thunk()
    return out


class TestTileRanges:
    def test_exact_division(self):
        assert blocked.tile_ranges(8, 4) == [(0, 4), (4, 8)]

    def test_remainder_tile(self):
        assert blocked.tile_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_single_tile_when_tile_larger(self):
        assert blocked.tile_ranges(3, 100) == [(0, 3)]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            blocked.tile_ranges(0, 4)
        with pytest.raises(ValueError):
            blocked.tile_ranges(4, 0)


class TestGemmTasks:
    def test_matches_reference_with_remainders(self, rng):
        A, B = rng.normal(size=(70, 45)), rng.normal(size=(45, 53))
        out = run_tasks(blocked.gemm_tasks(A, B, 1.5, tile=32), (70, 53))
        np.testing.assert_allclose(out, 1.5 * A @ B, rtol=1e-10, atol=1e-12)

    def test_task_count(self, rng):
        A, B = rng.normal(size=(64, 10)), rng.normal(size=(10, 64))
        tasks = list(blocked.gemm_tasks(A, B, 1.0, tile=32))
        assert len(tasks) == 4  # 2x2 grid of output tiles

    def test_inner_dimension_mismatch(self, rng):
        with pytest.raises(ValueError, match="Inner dimensions"):
            list(blocked.gemm_tasks(rng.normal(size=(4, 5)), rng.normal(size=(4, 5)), 1.0, 32))


class TestSymmTasks:
    @pytest.mark.parametrize("lower", [True, False])
    def test_matches_reference(self, rng, lower):
        A = rng.normal(size=(40, 40))
        B = rng.normal(size=(40, 25))
        out = run_tasks(blocked.symm_tasks(A, B, 2.0, lower, tile=16), (40, 25))
        np.testing.assert_allclose(out, reference.symm(A, B, alpha=2.0, lower=lower), rtol=1e-12)


class TestSyrkTasks:
    def test_lower_triangle_matches_reference(self, rng):
        A = rng.normal(size=(50, 30))
        out = run_tasks(blocked.syrk_tasks(A, 1.0, False, tile=16), (50, 50))
        expected = reference.syrk(A)
        np.testing.assert_allclose(np.tril(out), np.tril(expected), rtol=1e-12)

    def test_upper_tiles_skipped(self, rng):
        A = rng.normal(size=(48, 8))
        tasks = list(blocked.syrk_tasks(A, 1.0, False, tile=16))
        # 3x3 grid, lower triangle including diagonal: 6 tiles.
        assert len(tasks) == 6

    def test_transposed_variant(self, rng):
        A = rng.normal(size=(20, 35))
        out = run_tasks(blocked.syrk_tasks(A, 1.0, True, tile=16), (35, 35))
        np.testing.assert_allclose(np.tril(out), np.tril(A.T @ A), rtol=1e-12)


class TestSyr2kTasks:
    def test_lower_triangle_matches_reference(self, rng):
        A, B = rng.normal(size=(30, 12)), rng.normal(size=(30, 12))
        out = run_tasks(blocked.syr2k_tasks(A, B, 1.0, False, tile=8), (30, 30))
        expected = reference.syr2k(A, B)
        np.testing.assert_allclose(np.tril(out), np.tril(expected), rtol=1e-12)


class TestTrmmTasks:
    @pytest.mark.parametrize("lower", [True, False])
    @pytest.mark.parametrize("transa", [True, False])
    def test_matches_reference(self, rng, lower, transa):
        A = rng.normal(size=(45, 45))
        B = rng.normal(size=(45, 20))
        out = run_tasks(
            blocked.trmm_tasks(A, B, 1.0, lower, transa, False, tile=16), (45, 20)
        )
        expected = reference.trmm(A, B, lower=lower, transa=transa)
        np.testing.assert_allclose(out, expected, rtol=1e-11)

    def test_unit_diagonal(self, rng):
        A = rng.normal(size=(20, 20))
        B = rng.normal(size=(20, 6))
        out = run_tasks(blocked.trmm_tasks(A, B, 1.0, True, False, True, tile=8), (20, 6))
        np.testing.assert_allclose(out, reference.trmm(A, B, unit_diag=True), rtol=1e-11)


class TestTrsmBlocked:
    @pytest.mark.parametrize("lower", [True, False])
    @pytest.mark.parametrize("transa", [True, False])
    def test_matches_reference(self, rng, lower, transa):
        A = rng.normal(size=(37, 37)) + 37 * np.eye(37)
        B = rng.normal(size=(37, 14))
        ours = blocked.trsm_blocked(A, B, lower=lower, transa=transa, tile=16)
        expected = reference.trsm(A, B, lower=lower, transa=transa)
        np.testing.assert_allclose(ours, expected, rtol=1e-9)

    def test_alpha_scaling(self, rng):
        A = rng.normal(size=(16, 16)) + 16 * np.eye(16)
        B = rng.normal(size=(16, 5))
        ours = blocked.trsm_blocked(A, B, alpha=3.0, tile=8)
        np.testing.assert_allclose(np.tril(A) @ ours, 3.0 * B, rtol=1e-9)

    def test_custom_column_runner_is_used(self, rng):
        A = rng.normal(size=(12, 12)) + 12 * np.eye(12)
        B = rng.normal(size=(12, 20))
        calls = []

        def runner(thunks):
            calls.append(len(thunks))
            for thunk in thunks:
                thunk()

        result = blocked.trsm_blocked(A, B, tile=8, column_task_runner=runner)
        assert calls == [3]  # ceil(20 / 8) column panels
        np.testing.assert_allclose(result, reference.trsm(A, B), rtol=1e-9)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError, match="dimensions"):
            blocked.trsm_blocked(rng.normal(size=(4, 4)), rng.normal(size=(5, 2)))
