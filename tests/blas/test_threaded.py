"""Tests for the multi-threaded blocked executor."""

import numpy as np
import pytest

from repro.blas import reference
from repro.blas.threaded import ThreadedBlas


@pytest.fixture()
def rng():
    return np.random.default_rng(2)


@pytest.fixture(params=[1, 3])
def executor(request):
    return ThreadedBlas(n_threads=request.param, tile=32)


class TestCorrectness:
    def test_gemm(self, executor, rng):
        A, B = rng.normal(size=(90, 40)), rng.normal(size=(40, 70))
        np.testing.assert_allclose(executor.gemm(A, B), A @ B, rtol=1e-12)

    def test_gemm_with_accumulation(self, executor, rng):
        A, B, C = rng.normal(size=(50, 20)), rng.normal(size=(20, 30)), rng.normal(size=(50, 30))
        result = executor.gemm(A, B, C=C, alpha=2.0, beta=0.5)
        np.testing.assert_allclose(result, 2.0 * A @ B + 0.5 * C, rtol=1e-12)

    def test_symm(self, executor, rng):
        A, B = rng.normal(size=(60, 60)), rng.normal(size=(60, 33))
        np.testing.assert_allclose(executor.symm(A, B), reference.symm(A, B), rtol=1e-12)

    def test_syrk(self, executor, rng):
        A = rng.normal(size=(70, 25))
        result = executor.syrk(A)
        np.testing.assert_allclose(result, A @ A.T, rtol=1e-12)
        np.testing.assert_allclose(result, result.T)

    def test_syrk_with_beta(self, executor, rng):
        A, C = rng.normal(size=(40, 10)), rng.normal(size=(40, 40))
        result = executor.syrk(A, C=C, beta=2.0)
        expected = A @ A.T + 2.0 * reference.symmetrize(C)
        np.testing.assert_allclose(result, expected, rtol=1e-12)

    def test_syr2k(self, executor, rng):
        A, B = rng.normal(size=(45, 15)), rng.normal(size=(45, 15))
        np.testing.assert_allclose(
            executor.syr2k(A, B), A @ B.T + B @ A.T, rtol=1e-12
        )

    def test_trmm(self, executor, rng):
        A, B = rng.normal(size=(55, 55)), rng.normal(size=(55, 21))
        np.testing.assert_allclose(executor.trmm(A, B), reference.trmm(A, B), rtol=1e-11)

    def test_trsm(self, executor, rng):
        A = rng.normal(size=(48, 48)) + 48 * np.eye(48)
        B = rng.normal(size=(48, 19))
        np.testing.assert_allclose(executor.trsm(A, B), reference.trsm(A, B), rtol=1e-9)


class TestThreadEquivalence:
    @pytest.mark.parametrize("routine,make_args", [
        ("gemm", lambda r: (r.normal(size=(65, 30)), r.normal(size=(30, 47)))),
        ("syrk", lambda r: (r.normal(size=(65, 30)),)),
        ("trmm", lambda r: (r.normal(size=(40, 40)), r.normal(size=(40, 40)))),
    ])
    def test_results_independent_of_thread_count(self, routine, make_args):
        rng = np.random.default_rng(3)
        args = make_args(rng)
        single = getattr(ThreadedBlas(n_threads=1, tile=16), routine)(*args)
        multi = getattr(ThreadedBlas(n_threads=4, tile=16), routine)(*args)
        np.testing.assert_allclose(single, multi, rtol=1e-12)


class TestRunDispatch:
    def test_run_records_execution(self, rng):
        executor = ThreadedBlas(n_threads=2, tile=32)
        A, B = rng.normal(size=(64, 64)), rng.normal(size=(64, 64))
        executor.run("dgemm", A=A, B=B)
        record = executor.last_record
        assert record is not None
        assert record.routine == "dgemm"
        assert record.threads == 2
        assert record.elapsed_seconds > 0
        assert record.n_tasks == 4

    def test_run_single_precision(self, rng):
        executor = ThreadedBlas(n_threads=1)
        A, B = rng.normal(size=(16, 16)), rng.normal(size=(16, 16))
        result = executor.run("sgemm", A=A, B=B)
        assert result.dtype == np.float32

    def test_run_trsm(self, rng):
        executor = ThreadedBlas(n_threads=2, tile=16)
        A = rng.normal(size=(32, 32)) + 32 * np.eye(32)
        B = rng.normal(size=(32, 8))
        result = executor.run("dtrsm", A=A, B=B)
        np.testing.assert_allclose(np.tril(A) @ result, B, rtol=1e-9)

    def test_unknown_routine(self):
        with pytest.raises(KeyError):
            ThreadedBlas().run("dgemv", A=np.eye(2), B=np.eye(2))


class TestValidation:
    def test_invalid_thread_count(self):
        with pytest.raises(ValueError, match="n_threads"):
            ThreadedBlas(n_threads=0)

    def test_invalid_tile(self):
        with pytest.raises(ValueError, match="tile"):
            ThreadedBlas(tile=4)


class TestPersistentPool:
    def test_pool_reused_across_calls(self, rng):
        executor = ThreadedBlas(n_threads=3, tile=16)
        assert executor._pool is None  # created lazily
        A, B = rng.normal(size=(64, 32)), rng.normal(size=(32, 48))
        executor.gemm(A, B)
        pool = executor._pool
        assert pool is not None
        executor.gemm(A, B)
        executor.syrk(A)
        assert executor._pool is pool  # one pool serves every call

    def test_serial_executor_never_builds_pool(self, rng):
        executor = ThreadedBlas(n_threads=1, tile=16)
        A, B = rng.normal(size=(48, 24)), rng.normal(size=(24, 32))
        executor.gemm(A, B)
        assert executor._pool is None

    def test_close_is_idempotent_and_pool_rebuilds(self, rng):
        executor = ThreadedBlas(n_threads=2, tile=16)
        A, B = rng.normal(size=(64, 32)), rng.normal(size=(32, 48))
        first = executor.gemm(A, B)
        executor.close()
        executor.close()
        assert executor._pool is None
        np.testing.assert_allclose(executor.gemm(A, B), first)
        assert executor._pool is not None
        executor.close()

    def test_context_manager_closes_pool(self, rng):
        A, B = rng.normal(size=(48, 24)), rng.normal(size=(24, 32))
        with ThreadedBlas(n_threads=2, tile=16) as executor:
            np.testing.assert_allclose(executor.gemm(A, B), A @ B, rtol=1e-12)
            assert executor._pool is not None
        assert executor._pool is None

    def test_records_survive_pool_reuse(self, rng):
        executor = ThreadedBlas(n_threads=2, tile=16)
        A, B = rng.normal(size=(64, 64)), rng.normal(size=(64, 64))
        executor.run("dgemm", A=A, B=B)
        first = executor.last_record
        executor.run("dgemm", A=A, B=B)
        second = executor.last_record
        assert first is not second
        assert first.n_tasks == second.n_tasks
        assert second.elapsed_seconds > 0
        executor.close()
