"""Property-based tests (hypothesis) for the BLAS substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.blas import reference
from repro.blas.flops import flop_count, memory_words
from repro.blas.threaded import ThreadedBlas

matrix_elements = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)
small_dim = st.integers(1, 24)


@st.composite
def gemm_operands(draw):
    m, k, n = draw(small_dim), draw(small_dim), draw(small_dim)
    A = draw(hnp.arrays(np.float64, (m, k), elements=matrix_elements))
    B = draw(hnp.arrays(np.float64, (k, n), elements=matrix_elements))
    return A, B


@st.composite
def square_and_panel(draw):
    m, n = draw(small_dim), draw(small_dim)
    A = draw(hnp.arrays(np.float64, (m, m), elements=matrix_elements))
    B = draw(hnp.arrays(np.float64, (m, n), elements=matrix_elements))
    return A, B


class TestReferenceProperties:
    @given(gemm_operands())
    @settings(max_examples=40, deadline=None)
    def test_gemm_matches_numpy(self, operands):
        A, B = operands
        np.testing.assert_allclose(reference.gemm(A, B), A @ B, rtol=1e-10, atol=1e-10)

    @given(square_and_panel())
    @settings(max_examples=40, deadline=None)
    def test_symm_equals_gemm_on_symmetric_input(self, operands):
        A, B = operands
        full = reference.symmetrize(A, lower=True)
        np.testing.assert_allclose(
            reference.symm(A, B, lower=True), full @ B, rtol=1e-10, atol=1e-10
        )

    @given(hnp.arrays(np.float64, st.tuples(small_dim, small_dim), elements=matrix_elements))
    @settings(max_examples=40, deadline=None)
    def test_syrk_result_is_symmetric_psd_diagonal(self, A):
        result = reference.syrk(A)
        np.testing.assert_allclose(result, result.T, atol=1e-10)
        assert np.all(np.diag(result) >= -1e-9)

    @given(square_and_panel())
    @settings(max_examples=30, deadline=None)
    def test_trsm_inverts_trmm(self, operands):
        A, B = operands
        # Make the triangular factor well conditioned.
        A = A + A.shape[0] * 10.0 * np.eye(A.shape[0])
        product = reference.trmm(A, B)
        recovered = reference.trsm(A, product)
        np.testing.assert_allclose(recovered, B, rtol=1e-6, atol=1e-6)

    @given(square_and_panel(), st.floats(0.1, 5.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_trmm_is_linear_in_alpha(self, operands, alpha):
        A, B = operands
        scaled = reference.trmm(A, B, alpha=alpha)
        unscaled = reference.trmm(A, B)
        np.testing.assert_allclose(scaled, alpha * unscaled, rtol=1e-9, atol=1e-9)


class TestThreadedProperties:
    @given(gemm_operands(), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_threaded_gemm_matches_reference(self, operands, n_threads):
        A, B = operands
        executor = ThreadedBlas(n_threads=n_threads, tile=16)
        np.testing.assert_allclose(executor.gemm(A, B), A @ B, rtol=1e-10, atol=1e-10)

    @given(hnp.arrays(np.float64, st.tuples(small_dim, small_dim), elements=matrix_elements))
    @settings(max_examples=20, deadline=None)
    def test_threaded_syrk_symmetric(self, A):
        result = ThreadedBlas(n_threads=2, tile=16).syrk(A)
        np.testing.assert_allclose(result, result.T, atol=1e-10)


class TestAccountingProperties:
    @given(small_dim, small_dim, small_dim)
    @settings(max_examples=50, deadline=None)
    def test_gemm_flops_positive_and_monotone(self, m, k, n):
        base = flop_count("dgemm", {"m": m, "k": k, "n": n})
        grown = flop_count("dgemm", {"m": m + 1, "k": k, "n": n})
        assert base > 0
        assert grown > base

    @given(small_dim, small_dim)
    @settings(max_examples=50, deadline=None)
    def test_syr2k_memory_exceeds_syrk(self, n, k):
        assert memory_words("dsyr2k", {"n": n, "k": k}) > memory_words(
            "dsyrk", {"n": n, "k": k}
        )

    @given(small_dim, small_dim)
    @settings(max_examples=50, deadline=None)
    def test_trmm_trsm_memory_identical(self, m, n):
        dims = {"m": m, "n": n}
        assert memory_words("dtrmm", dims) == memory_words("dtrsm", dims)
