"""Tests for the routine specification table and key parsing."""

import numpy as np
import pytest

from repro.blas.api import (
    PRECISIONS,
    ROUTINE_KEYS,
    ROUTINE_NAMES,
    ROUTINE_SPECS,
    compute,
    parse_routine,
    precision_bytes,
    precision_dtype,
    routine_dims,
)


class TestSpecs:
    def test_six_routines(self):
        assert len(ROUTINE_SPECS) == 6
        assert set(ROUTINE_NAMES) == {"gemm", "symm", "syrk", "syr2k", "trmm", "trsm"}

    def test_twelve_precision_qualified_keys(self):
        assert len(ROUTINE_KEYS) == 12
        assert "dgemm" in ROUTINE_KEYS and "strsm" in ROUTINE_KEYS

    def test_gemm_is_three_dimensional(self):
        assert ROUTINE_SPECS["gemm"].n_dims == 3
        assert ROUTINE_SPECS["gemm"].dim_names == ("m", "k", "n")

    @pytest.mark.parametrize("name", ["symm", "syrk", "syr2k", "trmm", "trsm"])
    def test_others_are_two_dimensional(self, name):
        assert ROUTINE_SPECS[name].n_dims == 2

    def test_table1_operand_kinds(self):
        assert ROUTINE_SPECS["symm"].operands[0].kind == "symmetric"
        assert ROUTINE_SPECS["syrk"].operands[-1].kind == "symmetric"
        assert ROUTINE_SPECS["trmm"].operands[0].kind == "triangular"
        assert ROUTINE_SPECS["trsm"].operands[0].kind == "triangular"
        assert all(op.kind == "regular" for op in ROUTINE_SPECS["gemm"].operands)

    def test_trmm_trsm_have_no_c_operand(self):
        assert len(ROUTINE_SPECS["trmm"].operands) == 2
        assert len(ROUTINE_SPECS["trsm"].operands) == 2


class TestParsing:
    def test_precision_prefix(self):
        prefix, base, spec = parse_routine("sgemm")
        assert prefix == "s" and base == "gemm" and spec.n_dims == 3

    def test_bare_name_defaults_to_double(self):
        prefix, base, _ = parse_routine("trsm")
        assert prefix == "d" and base == "trsm"

    def test_case_insensitive(self):
        assert parse_routine("DSYRK")[1] == "syrk"

    def test_unknown_routine(self):
        with pytest.raises(KeyError, match="Unknown BLAS routine"):
            parse_routine("dgemv")

    def test_precision_dtype_and_bytes(self):
        assert precision_dtype("s") == np.float32
        assert precision_dtype("d") == np.float64
        assert precision_bytes("s") == 4
        assert precision_bytes("d") == 8
        with pytest.raises(KeyError):
            precision_dtype("z")

    def test_precisions_table(self):
        assert set(PRECISIONS) == {"s", "d"}


class TestDims:
    def test_positional_dims(self):
        assert routine_dims("dgemm", 10, 20, 30) == {"m": 10, "k": 20, "n": 30}

    def test_keyword_dims(self):
        assert routine_dims("dsyrk", n=64, k=128) == {"n": 64, "k": 128}

    def test_missing_dimension(self):
        with pytest.raises(ValueError, match="missing"):
            routine_dims("dgemm", m=1, k=2)

    def test_extra_dimension(self):
        with pytest.raises(ValueError, match="unexpected"):
            routine_dims("dtrsm", m=1, n=2, k=3)

    def test_wrong_positional_count(self):
        with pytest.raises(ValueError, match="expects"):
            routine_dims("dgemm", 1, 2)

    def test_nonpositive_dimension(self):
        with pytest.raises(ValueError, match="positive"):
            routine_dims("dgemm", m=0, k=2, n=3)

    def test_mixing_positional_and_keyword(self):
        spec = ROUTINE_SPECS["gemm"]
        with pytest.raises(TypeError):
            spec.dims_from_args(1, 2, 3, m=1)


class TestComputeDispatch:
    def test_compute_gemm(self):
        rng = np.random.default_rng(0)
        A, B = rng.normal(size=(20, 30)), rng.normal(size=(30, 10))
        np.testing.assert_allclose(compute("dgemm", threads=2, A=A, B=B), A @ B, rtol=1e-12)

    def test_compute_single_precision_casts(self):
        rng = np.random.default_rng(1)
        A, B = rng.normal(size=(8, 8)), rng.normal(size=(8, 8))
        result = compute("sgemm", A=A, B=B)
        assert result.dtype == np.float32
