"""Tests for FLOP and memory-footprint accounting."""

import pytest

from repro.blas.flops import (
    arithmetic_intensity,
    fits_memory_cap,
    flop_count,
    memory_bytes,
    memory_words,
)


class TestFlops:
    def test_gemm_flops(self):
        assert flop_count("dgemm", {"m": 10, "k": 20, "n": 30}) == 2 * 10 * 20 * 30

    def test_symm_flops(self):
        assert flop_count("dsymm", {"m": 8, "n": 5}) == 2 * 8 * 8 * 5

    def test_syrk_flops(self):
        assert flop_count("dsyrk", {"n": 6, "k": 4}) == 6 * 7 * 4

    def test_syr2k_is_twice_syrk(self):
        dims = {"n": 12, "k": 7}
        assert flop_count("dsyr2k", dims) == 2 * flop_count("dsyrk", dims)

    def test_trmm_trsm_flops_equal(self):
        dims = {"m": 9, "n": 4}
        assert flop_count("dtrmm", dims) == flop_count("dtrsm", dims) == 9 * 9 * 4

    def test_precision_does_not_change_flops(self):
        dims = {"m": 16, "k": 16, "n": 16}
        assert flop_count("sgemm", dims) == flop_count("dgemm", dims)


class TestMemory:
    def test_gemm_words(self):
        assert memory_words("dgemm", {"m": 2, "k": 3, "n": 4}) == 2 * 3 + 3 * 4 + 2 * 4

    def test_symm_words(self):
        assert memory_words("dsymm", {"m": 3, "n": 4}) == 9 + 2 * 12

    def test_trsm_counts_overwritten_operand_once(self):
        # B is both input and output but occupies one buffer.
        assert memory_words("dtrsm", {"m": 5, "n": 2}) == 25 + 10

    def test_bytes_scale_with_precision(self):
        dims = {"m": 10, "k": 10, "n": 10}
        assert memory_bytes("dgemm", dims) == 2 * memory_bytes("sgemm", dims)

    def test_explicit_precision_override(self):
        dims = {"m": 10, "k": 10, "n": 10}
        assert memory_bytes("dgemm", dims, precision="s") == memory_bytes("sgemm", dims)

    def test_memory_cap_check(self):
        small = {"m": 100, "k": 100, "n": 100}
        huge = {"m": 10000, "k": 10000, "n": 10000}
        assert fits_memory_cap("dgemm", small)
        assert not fits_memory_cap("dgemm", huge)

    def test_cap_respects_precision(self):
        # A problem right at the double-precision cap fits in single precision.
        dims = {"m": 4500, "k": 4500, "n": 4500}
        assert not fits_memory_cap("dgemm", dims, cap_bytes=400e6)
        assert fits_memory_cap("sgemm", dims, cap_bytes=400e6)


class TestIntensity:
    def test_gemm_intensity_grows_with_size(self):
        small = arithmetic_intensity("dgemm", {"m": 64, "k": 64, "n": 64})
        large = arithmetic_intensity("dgemm", {"m": 1024, "k": 1024, "n": 1024})
        assert large > small

    def test_intensity_is_flops_per_byte(self):
        dims = {"m": 32, "k": 32, "n": 32}
        expected = flop_count("dgemm", dims) / memory_bytes("dgemm", dims)
        assert arithmetic_intensity("dgemm", dims) == pytest.approx(expected)

    def test_single_precision_has_higher_intensity(self):
        dims = {"m": 256, "k": 256, "n": 256}
        assert arithmetic_intensity("sgemm", dims) == pytest.approx(
            2 * arithmetic_intensity("dgemm", dims)
        )
