"""Tests for table formatting and summary statistics helpers."""

import numpy as np
import pytest

from repro.harness.tables import format_markdown_table, format_table, summary_statistics


ROWS = [
    {"routine": "dgemm", "speedup": 1.27, "threads": 46},
    {"routine": "dsymm", "speedup": 2.2845, "threads": 9},
]


class TestFormatTable:
    def test_contains_all_cells(self):
        text = format_table(ROWS)
        assert "dgemm" in text and "dsymm" in text
        assert "2.28" in text  # floats rounded to 2 decimals

    def test_header_and_separator(self):
        lines = format_table(ROWS).splitlines()
        assert "routine" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_title_rendered(self):
        text = format_table(ROWS, title="Table VII")
        assert text.splitlines()[0] == "Table VII"

    def test_column_subset_and_order(self):
        text = format_table(ROWS, columns=["speedup", "routine"])
        header = text.splitlines()[0]
        assert header.index("speedup") < header.index("routine")
        assert "threads" not in header

    def test_missing_column_rendered_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table([])

    def test_large_and_small_floats_use_compact_format(self):
        text = format_table([{"x": 1234567.0, "y": 0.000123}])
        assert "1.23e+06" in text and "0.000123" in text


class TestMarkdownTable:
    def test_markdown_structure(self):
        text = format_markdown_table(ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("| routine")
        assert lines[1].startswith("|---")
        assert len(lines) == 2 + len(ROWS)

    def test_cell_values_present(self):
        assert "46" in format_markdown_table(ROWS)


class TestSummaryStatistics:
    def test_layout_matches_table7(self):
        stats = summary_statistics([1.0, 2.0, 3.0, 4.0])
        assert list(stats) == ["mean", "std", "min", "25%", "50%", "75%", "max"]

    def test_values(self):
        stats = summary_statistics([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["50%"] == pytest.approx(2.5)

    def test_single_value(self):
        stats = summary_statistics([2.0])
        assert stats["std"] == 0.0
        assert stats["mean"] == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summary_statistics([])

    def test_matches_numpy_percentiles(self):
        values = np.random.default_rng(0).uniform(0.5, 12, size=200)
        stats = summary_statistics(values)
        assert stats["75%"] == pytest.approx(np.percentile(values, 75))
