"""Tests for the per-table experiment drivers.

The heavy drivers (Tables IV-VIII) are exercised on the small laptop platform
with a tiny configuration; the benchmark suite runs the Setonix/Gadi-scale
versions.
"""

import pytest

from repro.harness import experiments
from repro.harness.experiments import (
    ExperimentConfig,
    PAPER_CONFIG,
    QUICK_CONFIG,
    active_config,
    clear_bundle_cache,
    get_bundle,
    table1_routine_specs,
    table2_model_catalog,
    table3_features,
    table7_speedup_statistics,
    table8_profiling,
)


TINY = ExperimentConfig(
    name="tiny",
    n_samples=10,
    threads_per_shape=4,
    n_test_shapes=6,
    candidate_models=("LinearRegression", "DecisionTree"),
)


class TestStaticTables:
    def test_table1_has_six_rows(self):
        rows = table1_routine_specs()
        assert len(rows) == 6
        assert {row["routine"] for row in rows} == {"GEMM", "SYMM", "SYRK", "SYR2K", "TRMM", "TRSM"}

    def test_table1_gemm_row_matches_paper(self):
        gemm = next(r for r in table1_routine_specs() if r["routine"] == "GEMM")
        assert gemm["dims"] == 3
        assert gemm["A_shape"] == "mxk" and gemm["A_type"] == "regular"
        assert gemm["C_shape"] == "mxn"

    def test_table2_has_ten_models(self):
        rows = table2_model_catalog()
        assert len(rows) == 10
        categories = {row["category"] for row in rows}
        assert categories == {"Linear Models", "Tree Based Models", "Other Models"}

    def test_table3_feature_columns(self):
        rows = table3_features()
        assert len(rows) == 17  # the longer (three-dimension) list
        assert rows[0]["three_dimensions"] == "m"
        assert rows[0]["two_dimensions"] == "d1"
        assert rows[-1]["two_dimensions"] == ""  # shorter list padded


class TestConfig:
    def test_active_config_default_quick(self, monkeypatch):
        monkeypatch.delenv("ADSALA_BENCH_PRESET", raising=False)
        assert active_config() is QUICK_CONFIG

    def test_active_config_paper(self, monkeypatch):
        monkeypatch.setenv("ADSALA_BENCH_PRESET", "paper")
        assert active_config() is PAPER_CONFIG

    def test_active_config_invalid(self, monkeypatch):
        monkeypatch.setenv("ADSALA_BENCH_PRESET", "huge")
        with pytest.raises(ValueError):
            active_config()

    def test_paper_config_matches_paper_scale(self):
        assert PAPER_CONFIG.n_samples * PAPER_CONFIG.threads_per_shape >= 1000
        assert PAPER_CONFIG.n_test_shapes >= 100
        assert len(PAPER_CONFIG.candidate_models) == 10


class TestBundleCache:
    def test_bundle_cached_per_platform_and_config(self):
        clear_bundle_cache()
        first = get_bundle("laptop", ["dgemm"], TINY)
        second = get_bundle("laptop", ["dgemm"], TINY)
        assert first is second
        clear_bundle_cache()
        third = get_bundle("laptop", ["dgemm"], TINY)
        assert third is not first


class TestDynamicTables:
    @pytest.fixture(scope="class", autouse=True)
    def _warm_bundle(self):
        clear_bundle_cache()
        yield
        clear_bundle_cache()

    def test_model_selection_rows(self):
        rows = experiments._model_selection_rows("laptop", ["dgemm", "dsyrk"], TINY)
        assert {row["subroutine"] for row in rows} == {"dgemm", "dsyrk"}
        for row in rows:
            assert row["best_model"] in TINY.candidate_models
            assert row["estimated_mean_speedup"] > 0

    def test_table6_rows_per_candidate(self):
        result = experiments.table6_model_statistics(
            platform_name="laptop", routines=("dgemm",), config=TINY,
            reuse_full_bundle=False,
        )
        assert set(result) == {"dgemm"}
        assert len(result["dgemm"]) == len(TINY.candidate_models)

    def test_table7_statistics_columns(self):
        rows = table7_speedup_statistics("laptop", ["dgemm", "dsyrk"], TINY)
        assert len(rows) == 2
        for row in rows:
            assert set(row) == {"subroutine", "model", "mean", "std", "min", "25%", "50%", "75%", "max"}
            assert row["min"] <= row["50%"] <= row["max"]
            assert row["mean"] > 0.5

    def test_table7_without_eval_time_not_worse(self):
        with_eval = table7_speedup_statistics("laptop", ["dgemm"], TINY, include_eval_time=True)
        without_eval = table7_speedup_statistics("laptop", ["dgemm"], TINY, include_eval_time=False)
        assert without_eval[0]["mean"] >= with_eval[0]["mean"] - 1e-9

    def test_table8_profiling_rows(self):
        rows = table8_profiling("laptop", repeats=10, config=TINY, reuse_full_bundle=False)
        # Two rows (no ML / with ML) per profiled case.
        assert len(rows) == 2 * len(experiments.TABLE8_CASES)
        no_ml_rows = [r for r in rows if r["case"].endswith("no ML")]
        with_ml_rows = [r for r in rows if r["case"].endswith("with ML")]
        assert len(no_ml_rows) == len(with_ml_rows)
        for row in rows:
            assert row["total_s"] > 0
            assert row["thread_sync_s"] >= 0
