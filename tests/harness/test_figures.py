"""Tests for the heatmap (figure) generators."""

import numpy as np
import pytest

from repro.blas.flops import memory_bytes
from repro.harness.figures import (
    HeatmapGrid,
    gemm_optimal_threads_heatmap,
    optimal_threads_heatmap,
    render_heatmap_ascii,
    speedup_heatmap,
    sqrt_axis,
)
from repro.machine.simulator import TimingSimulator


@pytest.fixture(scope="module")
def sim(laptop):
    return TimingSimulator(laptop, seed=0)


class TestSqrtAxis:
    def test_endpoints(self):
        axis = sqrt_axis(32, 4096, 8)
        assert axis[0] == 32
        assert axis[-1] == 4096

    def test_monotone_increasing(self):
        axis = sqrt_axis(32, 10000, 12)
        assert np.all(np.diff(axis) > 0)

    def test_sqrt_spacing_denser_at_small_values(self):
        axis = sqrt_axis(32, 10000, 10)
        assert (axis[1] - axis[0]) < (axis[-1] - axis[-2])

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sqrt_axis(32, 4096, 1)
        with pytest.raises(ValueError):
            sqrt_axis(100, 50, 5)


class TestOptimalThreadHeatmaps:
    def test_two_dim_routine_grid(self, sim, laptop):
        grid = optimal_threads_heatmap("dsyrk", sim, n_points=5, memory_cap_bytes=100e6)
        assert isinstance(grid, HeatmapGrid)
        assert grid.quantity == "optimal_threads"
        finite = grid.values[~np.isnan(grid.values)]
        assert finite.size > 0
        assert np.all((finite >= 1) & (finite <= laptop.max_threads))

    def test_infeasible_cells_are_nan(self, sim):
        cap = 20e6
        grid = optimal_threads_heatmap("dsymm", sim, n_points=5, memory_cap_bytes=cap)
        for i, y in enumerate(grid.y_values):
            for j, x in enumerate(grid.x_values):
                dims = {grid.y_name: int(y), grid.x_name: int(x)}
                if memory_bytes("dsymm", dims) > cap:
                    assert np.isnan(grid.values[i, j])

    def test_gemm_heatmap_requires_third_dim(self, sim):
        with pytest.raises(ValueError, match="third_dim"):
            optimal_threads_heatmap("dgemm", sim, n_points=4)

    def test_gemm_heatmap_with_fixed_k(self, sim):
        grid = gemm_optimal_threads_heatmap("dgemm", sim, k=256, n_points=4,
                                            memory_cap_bytes=100e6)
        assert grid.x_name == "n" and grid.y_name == "m"
        assert not np.all(np.isnan(grid.values))

    def test_to_rows_skips_nan(self, sim):
        grid = optimal_threads_heatmap("dtrsm", sim, n_points=4, memory_cap_bytes=30e6)
        rows = grid.to_rows()
        feasible = (~np.isnan(grid.values)).sum()
        assert len(rows) == feasible

    def test_save_npz_roundtrip(self, sim, tmp_path):
        grid = optimal_threads_heatmap("dsyr2k", sim, n_points=4, memory_cap_bytes=50e6)
        path = tmp_path / "grid.npz"
        grid.save_npz(path)
        loaded = np.load(path, allow_pickle=True)
        np.testing.assert_allclose(loaded["values"], grid.values)
        assert str(loaded["routine"]) == "dsyr2k"


class TestSpeedupHeatmaps:
    def test_speedup_grid_uses_predictor(self, sim, small_bundle):
        predictor = small_bundle.predictor("dsyrk")
        grid = speedup_heatmap("dsyrk", sim, predictor, n_points=4, memory_cap_bytes=60e6)
        finite = grid.values[~np.isnan(grid.values)]
        assert finite.size > 0
        assert np.all(finite > 0)
        assert grid.quantity == "speedup"

    def test_eval_time_lowers_speedup(self, sim, small_bundle):
        predictor = small_bundle.predictor("dsyrk")
        free = speedup_heatmap("dsyrk", sim, predictor, n_points=3, memory_cap_bytes=60e6)
        charged = speedup_heatmap(
            "dsyrk", sim, predictor, n_points=3, memory_cap_bytes=60e6, eval_time=1e-3
        )
        mask = ~np.isnan(free.values)
        assert np.all(charged.values[mask] <= free.values[mask] + 1e-12)


class TestAsciiRendering:
    def test_render_contains_axis_values_and_dots(self, sim):
        grid = optimal_threads_heatmap("dtrmm", sim, n_points=4, memory_cap_bytes=20e6)
        text = render_heatmap_ascii(grid)
        assert "dtrmm" in text
        assert str(int(grid.x_values[0])) in text
        if np.isnan(grid.values).any():
            assert "." in text
