"""Catalog registration, discovery and resolution tests."""

import numpy as np
import pytest

from repro.routines.catalog import (
    PLUGIN_PATH_ENV,
    RoutineCatalog,
    UnknownRoutineError,
    build_catalog,
    get_catalog,
    reset_catalog,
)
from repro.routines.plugin import RoutinePlugin, SpecListPlugin
from repro.routines.spec import make_routine_spec

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@pytest.fixture()
def fresh_global_catalog():
    reset_catalog()
    yield
    reset_catalog()


def _toy_spec(name="toy", dims=("p", "q")):
    return make_routine_spec(
        name,
        dims,
        [("A", dims, "regular")],
        flops=lambda d: float(np.prod([d[k] for k in dims])),
        measure=lambda platform, prec, d, t: np.asarray(t, dtype=float),
    )


PLUGIN_FILE = '''
import numpy as np
from repro.routines import make_routine_spec

PLUGIN_NAME = "file-plugin"
PLUGIN_VERSION = "2.1"
ROUTINES = [
    make_routine_spec(
        "fileroutine",
        ("p", "q"),
        [("A", ("p", "q"), "regular")],
        flops=lambda d: 1.0 * d["p"] * d["q"],
        measure=lambda platform, prec, dims, t: np.asarray(t, dtype=float),
    )
]
'''


class TestRegistration:
    def test_builtins_present(self):
        catalog = build_catalog(plugin_dirs=[], entry_points=False)
        assert "gemm" in catalog
        assert "dgemm" in catalog.keys()
        assert len(catalog.keys()) == 12
        entry = catalog.entry("gemm")
        assert entry.source == "builtin"
        assert entry.has_simulator

    def test_register_spec_and_resolve(self):
        catalog = build_catalog(plugin_dirs=[], entry_points=False)
        catalog.register_spec(_toy_spec(), plugin_name="t", plugin_version="9")
        prefix, base, spec = catalog.resolve("dtoy")
        assert (prefix, base) == ("d", "toy")
        assert catalog.entry_for_key("stoy").provenance() == {
            "name": "t", "version": "9", "source": "runtime",
        }

    def test_bare_base_name_defaults_to_double(self):
        catalog = build_catalog(plugin_dirs=[], entry_points=False)
        prefix, base, _ = catalog.resolve("gemm")
        assert (prefix, base) == ("d", "gemm")

    def test_collision_is_hard_error(self):
        catalog = build_catalog(plugin_dirs=[], entry_points=False)
        with pytest.raises(ValueError, match="collides"):
            catalog.register_spec(
                _toy_spec("gemm", ("m", "k", "n")), plugin_name="rogue"
            )

    def test_unknown_routine_error_is_structured(self):
        catalog = build_catalog(plugin_dirs=[], entry_points=False)
        with pytest.raises(UnknownRoutineError) as excinfo:
            catalog.resolve("dnope")
        assert excinfo.value.routine == "dnope"
        assert "dgemm" in excinfo.value.known_keys
        assert "Unknown BLAS routine" in str(excinfo.value)
        assert "dgemm" in str(excinfo.value)
        assert isinstance(excinfo.value, KeyError)

    def test_unsupported_precision_rejected(self):
        catalog = build_catalog(plugin_dirs=[], entry_points=False)
        spec = make_routine_spec(
            "single",
            ("p", "q"),
            [("A", ("p", "q"), "regular")],
            flops=lambda d: 1.0 * d["p"] * d["q"],
            precisions=("s",),
            measure=lambda platform, prec, dims, t: np.asarray(t, dtype=float),
        )
        catalog.register_spec(spec, plugin_name="t")
        assert catalog.resolve("ssingle")[0] == "s"
        assert catalog.resolve("single")[0] == "s"
        with pytest.raises(UnknownRoutineError):
            catalog.resolve("dsingle")

    def test_empty_plugin_rejected(self):
        catalog = RoutineCatalog()
        with pytest.raises(ValueError, match="no routine specs"):
            catalog.register_plugin(SpecListPlugin("empty", []))


class TestDirectoryDiscovery:
    def test_loads_plugin_file(self, tmp_path):
        (tmp_path / "myplugin.py").write_text(PLUGIN_FILE)
        catalog = build_catalog(plugin_dirs=[tmp_path], entry_points=False)
        entry = catalog.entry("fileroutine")
        assert entry.plugin_name == "file-plugin"
        assert entry.plugin_version == "2.1"
        assert entry.source == "directory"
        assert not entry.has_simulator

    def test_underscore_files_skipped(self, tmp_path):
        (tmp_path / "_private.py").write_text("raise RuntimeError('boom')")
        catalog = build_catalog(plugin_dirs=[tmp_path], entry_points=False)
        assert catalog.load_errors == []

    def test_broken_plugin_skipped_with_warning(self, tmp_path):
        (tmp_path / "broken.py").write_text("raise RuntimeError('boom')")
        (tmp_path / "good.py").write_text(PLUGIN_FILE)
        with pytest.warns(RuntimeWarning, match="broken"):
            catalog = build_catalog(plugin_dirs=[tmp_path], entry_points=False)
        # the broken file is recorded, the good one still loads
        assert any("broken" in origin for origin, _ in catalog.load_errors)
        assert "fileroutine" in catalog

    def test_missing_directory_recorded(self, tmp_path):
        with pytest.warns(RuntimeWarning, match="not a directory"):
            catalog = build_catalog(
                plugin_dirs=[tmp_path / "absent"], entry_points=False
            )
        assert catalog.load_errors

    def test_register_convention(self, tmp_path):
        (tmp_path / "reg.py").write_text(
            PLUGIN_FILE.replace("ROUTINES = [", "_SPECS = [")
            + "\ndef register(catalog):\n"
            "    for spec in _SPECS:\n"
            "        catalog.register_spec(spec, plugin_name='via-register')\n"
        )
        catalog = build_catalog(plugin_dirs=[tmp_path], entry_points=False)
        assert catalog.entry("fileroutine").plugin_name == "via-register"

    def test_module_without_conventions_is_error(self, tmp_path):
        (tmp_path / "nothing.py").write_text("x = 1\n")
        with pytest.warns(RuntimeWarning, match="nothing"):
            catalog = build_catalog(plugin_dirs=[tmp_path], entry_points=False)
        assert any("nothing" in origin for origin, _ in catalog.load_errors)


class TestGlobalCatalog:
    def test_env_var_discovery(self, tmp_path, monkeypatch, fresh_global_catalog):
        (tmp_path / "envplugin.py").write_text(PLUGIN_FILE)
        monkeypatch.setenv(PLUGIN_PATH_ENV, str(tmp_path))
        reset_catalog()
        assert "fileroutine" in get_catalog()
        # parse_routine is a thin query against the same catalog
        from repro.blas.api import parse_routine

        prefix, base, _ = parse_routine("dfileroutine")
        assert (prefix, base) == ("d", "fileroutine")

    def test_reset_drops_runtime_registrations(self, fresh_global_catalog):
        get_catalog().register_spec(_toy_spec(), plugin_name="t")
        assert "toy" in get_catalog()
        reset_catalog()
        assert "toy" not in get_catalog()

    def test_get_catalog_is_cached(self, fresh_global_catalog):
        assert get_catalog() is get_catalog()


class TestPluginProtocol:
    def test_class_plugin_via_module_convention(self, tmp_path):
        (tmp_path / "classy.py").write_text(
            "import numpy as np\n"
            "from repro.routines import RoutinePlugin, make_routine_spec\n"
            "class MyPlugin(RoutinePlugin):\n"
            "    name = 'classy'\n"
            "    version = '3'\n"
            "    def routine_specs(self):\n"
            "        return [make_routine_spec(\n"
            "            'classyroutine', ('p', 'q'),\n"
            "            [('A', ('p', 'q'), 'regular')],\n"
            "            flops=lambda d: 1.0 * d['p'] * d['q'],\n"
            "            measure=lambda platform, prec, dims, t:\n"
            "                np.asarray(t, dtype=float),\n"
            "        )]\n"
            "PLUGIN = MyPlugin\n"
        )
        catalog = build_catalog(plugin_dirs=[tmp_path], entry_points=False)
        entry = catalog.entry("classyroutine")
        assert entry.plugin_name == "classy"
        assert entry.plugin_version == "3"

    def test_base_plugin_requires_specs(self):
        with pytest.raises(NotImplementedError):
            RoutinePlugin().routine_specs()
