"""Spec-derivation tests: the generic machinery vs the legacy literal tables.

The refactor replaced three hand-maintained per-routine tables —
``_FOOTPRINT_TERMS``, ``_THREE_DIM_OPS`` / ``_TWO_DIM_OPS`` in
:mod:`repro.core.features` and the routine branches of the performance
model's tiling — with derivations from :class:`RoutineSpec`.  These tests
pin the equivalence: for all 12 builtin keys the derived tables and the
resulting feature matrices are *bit-identical* to the legacy literal
implementations, reproduced here verbatim as frozen references.
"""

import numpy as np
import pytest

from repro.blas.api import ROUTINE_KEYS, parse_routine
from repro.blas.flops import memory_words
from repro.core.features import (
    THREE_DIM_FEATURES,
    TWO_DIM_FEATURES,
    build_feature_matrix,
    compute_features,
    feature_names,
)
from repro.routines.builtin import ROUTINE_SPECS
from repro.routines.spec import (
    derive_footprint_terms,
    feature_layout,
    make_routine_spec,
    tiling_schema,
)

#: The deleted ``_FOOTPRINT_TERMS`` literal table of repro.core.features,
#: frozen here as the reference: base name -> ((coefficient, dim-index
#: factors), ...) summing to the routine's memory footprint in words.
LEGACY_FOOTPRINT_TERMS = {
    "gemm": ((1.0, (0, 1)), (1.0, (1, 2)), (1.0, (0, 2))),
    "symm": ((1.0, (0, 0)), (2.0, (0, 1))),
    "syrk": ((1.0, (0, 1)), (1.0, (0, 0))),
    "syr2k": ((2.0, (0, 1)), (1.0, (0, 0))),
    "trmm": ((1.0, (0, 0)), (1.0, (0, 1))),
    "trsm": ((1.0, (0, 0)), (1.0, (0, 1))),
}


def _legacy_features(routine, dims, threads):
    """The pre-refactor literal feature computation, frozen verbatim."""
    _, base, spec = parse_routine(routine)
    footprint = memory_words(routine, dims)
    nt = float(threads)
    if spec.n_dims == 3:
        m, k, n = (float(dims[d]) for d in spec.dim_names)
        mk = m * k
        mn = m * n
        kn = k * n
        mkn = mk * n
        return np.array(
            [
                m, k, n, nt, mk, mn, kn, mkn, footprint,
                m / nt, k / nt, n / nt, mk / nt, mn / nt, kn / nt,
                mkn / nt, footprint / nt,
            ]
        )
    d1, d2 = (float(dims[d]) for d in spec.dim_names)
    d12 = d1 * d2
    return np.array(
        [d1, d2, nt, d12, footprint, d1 / nt, d2 / nt, d12 / nt, footprint / nt]
    )


class TestDerivedFootprintTerms:
    @pytest.mark.parametrize("base", sorted(LEGACY_FOOTPRINT_TERMS))
    def test_matches_legacy_literal_table(self, base):
        assert derive_footprint_terms(ROUTINE_SPECS[base]) == (
            LEGACY_FOOTPRINT_TERMS[base]
        )

    @pytest.mark.parametrize("base", sorted(ROUTINE_SPECS))
    def test_terms_evaluate_to_memory_words(self, base):
        spec = ROUTINE_SPECS[base]
        terms = derive_footprint_terms(spec)
        rng = np.random.default_rng(0)
        for _ in range(20):
            dims = {
                name: int(rng.integers(1, 2000)) for name in spec.dim_names
            }
            raw = [float(dims[name]) for name in spec.dim_names]
            total = 0.0
            for coefficient, factors in terms:
                value = coefficient
                for index in factors:
                    value = value * raw[index]
                total += value
            assert total == float(spec.memory_words(dims))


class TestFeatureEquivalence:
    @pytest.mark.parametrize("routine", ROUTINE_KEYS)
    def test_feature_matrix_bit_identical_to_legacy(self, routine):
        _, _, spec = parse_routine(routine)
        rng = np.random.default_rng(7)
        shapes = [
            {name: int(rng.integers(32, 5000)) for name in spec.dim_names}
            for _ in range(25)
        ]
        for dims in shapes:
            for threads in (1, 3, 8, 48):
                generic = compute_features(routine, dims, threads)
                legacy = _legacy_features(routine, dims, threads)
                assert generic.tobytes() == legacy.tobytes()

    @pytest.mark.parametrize("routine", ROUTINE_KEYS)
    def test_batch_matrix_bit_identical_to_legacy(self, routine):
        _, _, spec = parse_routine(routine)
        rng = np.random.default_rng(11)
        rows = [
            (
                {name: int(rng.integers(32, 5000)) for name in spec.dim_names},
                int(rng.integers(1, 48)),
            )
            for _ in range(40)
        ]
        matrix = build_feature_matrix(
            routine, [dims for dims, _ in rows], [nt for _, nt in rows]
        )
        legacy = np.vstack(
            [_legacy_features(routine, dims, nt) for dims, nt in rows]
        )
        assert matrix.tobytes() == legacy.tobytes()

    def test_names_match_literal_lists(self):
        assert feature_names("dgemm") == THREE_DIM_FEATURES
        for key in ("dsymm", "dsyrk", "dsyr2k", "dtrmm", "dtrsm"):
            assert feature_names(key) == TWO_DIM_FEATURES


class TestFeatureLayoutGeneric:
    def test_four_dim_layout_extends_the_pattern(self):
        spec = make_routine_spec(
            "quad",
            ("a", "b", "c", "e"),
            [("X", ("a", "b"), "regular"), ("Y", ("c", "e"), "regular")],
            flops=lambda d: d["a"] * d["b"] * d["c"] * d["e"],
            measure=lambda platform, p, dims, t: np.asarray(t, dtype=float),
        )
        layout = feature_layout(spec)
        assert layout.names[:5] == ("a", "b", "c", "e", "nt")
        assert "a*b*c*e" in layout.names
        assert "memory_footprint/nt" in layout.names
        # every per-thread variant mirrors a base column
        n_bases = len(layout.subsets) + 1
        assert len(layout.names) == 2 * n_bases + 1

    def test_two_dim_plugin_uses_its_own_dim_names(self):
        spec = make_routine_spec(
            "pair",
            ("p", "q"),
            [("X", ("p", "q"), "regular")],
            flops=lambda d: d["p"] * d["q"],
            measure=lambda platform, prec, dims, t: np.asarray(t, dtype=float),
        )
        assert feature_layout(spec).names[:2] == ("d1", "d2")


class TestTilingSchema:
    def test_builtin_schemas(self):
        assert tiling_schema(ROUTINE_SPECS["gemm"]) == (("m", "n"), False, "k")
        assert tiling_schema(ROUTINE_SPECS["syrk"]) == (("n",), True, "k")
        assert tiling_schema(ROUTINE_SPECS["syr2k"]) == (("n",), True, "k")
        for base in ("symm", "trmm", "trsm"):
            assert tiling_schema(ROUTINE_SPECS[base]) == (("m", "n"), False, "m")


class TestMakeRoutineSpec:
    def test_rejects_unknown_shape_dimension(self):
        with pytest.raises(ValueError, match="unknown"):
            make_routine_spec(
                "bad",
                ("m",),
                [("A", ("m", "z"), "regular")],
                flops=lambda d: d["m"],
            )

    def test_rejects_bad_precisions(self):
        with pytest.raises(ValueError, match="precisions"):
            make_routine_spec(
                "bad",
                ("m",),
                [("A", ("m", "1"), "regular")],
                flops=lambda d: d["m"],
                precisions=("x",),
            )

    def test_rejects_bad_dim_ranges(self):
        with pytest.raises(ValueError, match="dim_ranges"):
            make_routine_spec(
                "bad",
                ("m",),
                [("A", ("m", "1"), "regular")],
                flops=lambda d: d["m"],
                dim_ranges={"m": (10, 10)},
            )

    def test_derived_memory_words_sums_operand_areas(self):
        spec = make_routine_spec(
            "area",
            ("p", "q"),
            [("A", ("p", "q"), "regular"), ("B", ("2", "q"), "regular")],
            flops=lambda d: d["p"] * d["q"],
            measure=lambda platform, prec, dims, t: np.asarray(t, dtype=float),
        )
        assert float(spec.memory_words({"p": 10, "q": 7})) == 10 * 7 + 2 * 7
