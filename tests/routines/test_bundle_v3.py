"""Bundle schema v3: plugin provenance round-trips and failure modes."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.install import install_adsala
from repro.core.persistence import (
    SCHEMA_VERSION,
    BundleFormatError,
    load_bundle,
    migrate_manifest,
    read_manifest,
    save_bundle,
    verify_bundle,
)
from repro.machine.platforms import get_platform
from repro.routines.catalog import get_catalog, reset_catalog
from repro.routines.spec import make_routine_spec
from repro.serving.registry import BundleHandle


@pytest.fixture()
def fresh_global_catalog():
    reset_catalog()
    yield get_catalog()
    reset_catalog()


def _register_toy(catalog):
    def measure(platform, precision, dims, threads):
        p = np.asarray(dims["p"], dtype=np.float64)
        q = np.asarray(dims["q"], dtype=np.float64)
        t = np.asarray(threads, dtype=np.float64)
        rate = platform.peak_gflops_per_core * 1e9
        return 16.0 * p * q / (rate * t / (1.0 + 0.1 * (t - 1.0))) + 1e-6 * t

    spec = make_routine_spec(
        "toy",
        ("p", "q"),
        [("A", ("p", "q"), "regular"), ("B", ("p", "q"), "regular")],
        flops=lambda d: 16.0 * d["p"] * d["q"],
        measure=measure,
        dim_ranges={"p": (32, 4096), "q": (32, 4096)},
    )
    catalog.register_spec(spec, plugin_name="toy-plugin", plugin_version="7")


def _toy_bundle(tmp_path, catalog):
    _register_toy(catalog)
    bundle = install_adsala(
        platform=get_platform("laptop"),
        routines=["dtoy"],
        n_samples=16,
        threads_per_shape=6,
        n_test_shapes=4,
        seed=0,
    )
    directory = tmp_path / "bundle"
    save_bundle(bundle, directory)
    return directory


class TestSchemaV3:
    def test_current_schema_is_3(self):
        assert SCHEMA_VERSION == 3

    def test_builtin_provenance_recorded(self, tmp_path):
        bundle = install_adsala(
            platform=get_platform("laptop"),
            routines=["dgemm"],
            n_samples=12,
            threads_per_shape=6,
            n_test_shapes=4,
            seed=0,
        )
        save_bundle(bundle, tmp_path / "b")
        manifest = read_manifest(tmp_path / "b")
        assert manifest["schema_version"] == 3
        plugin = manifest["routines"]["dgemm"]["plugin"]
        assert plugin == {
            "name": "builtin-blas3", "version": "1", "source": "builtin",
        }

    def test_plugin_provenance_roundtrip_through_registry(
        self, tmp_path, fresh_global_catalog
    ):
        directory = _toy_bundle(tmp_path, fresh_global_catalog)
        manifest = read_manifest(directory)
        assert manifest["routines"]["dtoy"]["plugin"]["name"] == "toy-plugin"
        assert manifest["routines"]["dtoy"]["plugin"]["version"] == "7"

        handle = BundleHandle(directory)
        assert handle.schema_version == 3
        plan = handle.predictor("dtoy").plan({"p": 512, "q": 512})
        assert plan.threads >= 1

        # hot reload after an in-place rewrite keeps serving the plugin key
        bundle = load_bundle(directory)
        save_bundle(bundle, directory, bundle_version=2)
        assert handle.reload()
        assert handle.bundle_version == 2
        assert handle.predictor("dtoy").plan({"p": 512, "q": 512}).threads >= 1

    def test_missing_plugin_fails_with_named_error(
        self, tmp_path, fresh_global_catalog
    ):
        directory = _toy_bundle(tmp_path, fresh_global_catalog)
        reset_catalog()  # the toy plugin is gone from the new catalog
        with pytest.raises(BundleFormatError) as excinfo:
            load_bundle(directory)
        message = str(excinfo.value)
        assert "toy-plugin" in message
        assert "dtoy" in message
        assert "ADSALA_PLUGIN_PATH" in message

    def test_missing_plugin_surfaces_in_verify(
        self, tmp_path, fresh_global_catalog
    ):
        directory = _toy_bundle(tmp_path, fresh_global_catalog)
        reset_catalog()
        report = verify_bundle(directory)
        assert report["routines"]["dtoy"] == "unknown plugin"
        assert not report["ok"]

    def test_v2_bundle_still_loads(self, tmp_path):
        bundle = install_adsala(
            platform=get_platform("laptop"),
            routines=["dgemm"],
            n_samples=12,
            threads_per_shape=6,
            n_test_shapes=4,
            seed=0,
        )
        directory = tmp_path / "v2"
        save_bundle(bundle, directory)
        manifest = json.loads((directory / "bundle.json").read_text())
        manifest["schema_version"] = 2
        for meta in manifest["routines"].values():
            meta.pop("plugin", None)
        (directory / "bundle.json").write_text(json.dumps(manifest))

        loaded = load_bundle(directory)
        assert "dgemm" in loaded.routines

        migrated = migrate_manifest(directory)
        assert migrated["schema_version"] == 3
        assert migrated["routines"]["dgemm"]["plugin"]["name"] == "builtin-blas3"

    def test_v2_migrates_via_cli(self, tmp_path, capsys):
        bundle = install_adsala(
            platform=get_platform("laptop"),
            routines=["dgemm"],
            n_samples=12,
            threads_per_shape=6,
            n_test_shapes=4,
            seed=0,
        )
        directory = tmp_path / "v2"
        save_bundle(bundle, directory)
        manifest = json.loads((directory / "bundle.json").read_text())
        manifest["schema_version"] = 2
        for meta in manifest["routines"].values():
            meta.pop("plugin", None)
        (directory / "bundle.json").write_text(json.dumps(manifest))

        assert main(["bundle", "migrate", "--bundle", str(directory)]) == 0
        migrated = read_manifest(directory)
        assert migrated["schema_version"] == 3
        assert migrated["routines"]["dgemm"]["plugin"]["source"] == "builtin"
