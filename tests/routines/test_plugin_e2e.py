"""End-to-end: a directory-discovered black-box plugin routine completes
install -> serve -> adapt-to-PROMOTED without the core ever importing it.

Uses the shipped ``examples/plugins`` directory (discovered through
``ADSALA_PLUGIN_PATH``), exactly like the CI plugin-smoke job.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.routines.catalog import PLUGIN_PATH_ENV, reset_catalog

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples" / "plugins"


@pytest.fixture()
def blackbox_env(monkeypatch):
    monkeypatch.setenv(PLUGIN_PATH_ENV, str(EXAMPLES_DIR))
    reset_catalog()
    yield
    reset_catalog()


def test_core_never_imports_the_example_plugin():
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    for path in src.rglob("*.py"):
        assert "blackbox_plugin" not in path.read_text()
        assert "opaque_scan" not in path.read_text()


def test_blackbox_install_serve_adapt(blackbox_env, tmp_path, capsys):
    bundle = tmp_path / "bundle"
    assert main([
        "install", "--platform", "gadi", "--routines", "dopaque_scan",
        "--output", str(bundle), "--samples", "24",
        "--threads-per-shape", "8", "--test-shapes", "6",
    ]) == 0

    manifest = json.loads((bundle / "bundle.json").read_text())
    assert manifest["schema_version"] == 3
    assert manifest["routines"]["dopaque_scan"]["plugin"]["name"] == (
        "example-blackbox"
    )
    assert manifest["routines"]["dopaque_scan"]["plugin"]["source"] == "directory"

    assert main([
        "serve", "--bundle", str(bundle), "--requests", "64",
        "--routines", "dopaque_scan", "--observe",
    ]) == 0
    out = capsys.readouterr().out
    assert "dopaque_scan" in out

    assert main([
        "adapt", "--bundle", str(bundle), "--routines", "dopaque_scan",
        "--requests", "96", "--drift-clock", "0.6", "--drift-bandwidth", "0.7",
        "--regather-shapes", "16", "--threads-per-shape", "8",
        "--test-shapes", "6", "--max-latency-regression", "10",
        "--require-promotion",
    ]) == 0
    out = capsys.readouterr().out
    assert "promoted" in out


def test_blackbox_routines_listing(blackbox_env, capsys):
    assert main(["routines", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    keys = {row["key"]: row for row in report["routines"]}
    assert keys["dopaque_scan"]["source"] == "directory"
    assert keys["dopaque_scan"]["plugin"] == "example-blackbox"
    assert keys["dopaque_scan"]["simulator"] == "no"
    assert keys["dgemm"]["source"] == "builtin"
    assert keys["dgemm"]["simulator"] == "yes"
