"""Replay timing model and simulator timing-dispatch tests."""

import numpy as np
import pytest

from repro.machine.platforms import get_platform
from repro.machine.simulator import TimingSimulator
from repro.routines.catalog import get_catalog, reset_catalog
from repro.routines.replay import NoTimingSourceError, ReplayTimingModel
from repro.routines.spec import make_routine_spec
from repro.serving.telemetry import TrafficRecord


@pytest.fixture()
def fresh_global_catalog():
    reset_catalog()
    yield get_catalog()
    reset_catalog()


class TestReplayTimingModel:
    def test_nearest_observation_wins(self):
        replay = ReplayTimingModel(
            ("p",),
            [{"p": 64}, {"p": 4096}],
            [4, 8],
            [1.0, 2.0],
        )
        out = replay.time_batch(
            {"p": np.array([70, 4000])}, np.array([4, 8])
        )
        assert list(out) == [1.0, 2.0]

    def test_exact_match_returns_observed_time(self):
        replay = ReplayTimingModel(
            ("p", "q"),
            [{"p": 10, "q": 20}, {"p": 100, "q": 200}],
            [2, 6],
            [0.5, 0.75],
        )
        out = replay.time_batch(
            {"p": np.array([100]), "q": np.array([200])}, np.array([6])
        )
        assert float(out[0]) == 0.75

    def test_tie_resolves_to_earliest_observation(self):
        replay = ReplayTimingModel(
            ("p",), [{"p": 32}, {"p": 32}], [4, 4], [1.5, 9.9]
        )
        out = replay.time_batch({"p": np.array([32])}, np.array([4]))
        assert float(out[0]) == 1.5

    def test_alignment_validated(self):
        with pytest.raises(ValueError, match="aligned"):
            ReplayTimingModel(("p",), [{"p": 1}], [1, 2], [0.1])
        with pytest.raises(ValueError, match="at least one"):
            ReplayTimingModel(("p",), [], [], [])

    def test_from_traffic(self):
        records = [
            TrafficRecord(dims={"p": 128, "q": 64}, threads=4,
                          predicted=1e-3, observed=2e-3),
            TrafficRecord(dims={"p": 2048, "q": 512}, threads=16,
                          predicted=5e-3, observed=7e-3),
        ]
        replay = ReplayTimingModel.from_traffic(("p", "q"), records)
        assert replay.n_observations == 2
        out = replay.time_batch(
            {"p": np.array([2000]), "q": np.array([500])}, np.array([16])
        )
        assert float(out[0]) == 7e-3


class TestSimulatorDispatch:
    def test_no_timing_source_raises(self, fresh_global_catalog):
        spec = make_routine_spec(
            "opaque",
            ("p", "q"),
            [("A", ("p", "q"), "regular")],
            flops=lambda d: 1.0 * d["p"] * d["q"],
        )
        fresh_global_catalog.register_spec(spec, plugin_name="t")
        simulator = TimingSimulator(get_platform("laptop"), seed=0)
        with pytest.raises(NoTimingSourceError, match="opaque"):
            simulator.time("dopaque", {"p": 100, "q": 100}, 4)

    def test_attached_replay_serves_and_detaches(self, fresh_global_catalog):
        spec = make_routine_spec(
            "opaque",
            ("p", "q"),
            [("A", ("p", "q"), "regular")],
            flops=lambda d: 1.0 * d["p"] * d["q"],
        )
        fresh_global_catalog.register_spec(spec, plugin_name="t")
        simulator = TimingSimulator(get_platform("laptop"), seed=0)
        replay = ReplayTimingModel(
            ("p", "q"), [{"p": 100, "q": 100}], [4], [1e-3]
        )
        simulator.attach_replay("dopaque", replay)
        time = simulator.time("dopaque", {"p": 100, "q": 100}, 4)
        assert time > 0
        batch = simulator.time_batch(
            "dopaque", [{"p": 100, "q": 100}], [4]
        )
        assert time == float(batch[0])
        simulator.detach_replay("dopaque")
        with pytest.raises(NoTimingSourceError):
            simulator.time("dopaque", {"p": 100, "q": 100}, 4)

    def test_measure_hook_scalar_batch_identity(self, fresh_global_catalog):
        def measure(platform, precision, dims, threads):
            p = np.asarray(dims["p"], dtype=np.float64)
            t = np.asarray(threads, dtype=np.float64)
            return 1e-9 * p / t + 1e-6 * t

        spec = make_routine_spec(
            "measured",
            ("p", "q"),
            [("A", ("p", "q"), "regular")],
            flops=lambda d: 1.0 * d["p"] * d["q"],
            measure=measure,
        )
        fresh_global_catalog.register_spec(spec, plugin_name="t")
        simulator = TimingSimulator(get_platform("laptop"), seed=3)
        shapes = [{"p": 1000 * (i + 1), "q": 64} for i in range(5)]
        threads = [1, 2, 4, 6, 8]
        batch = simulator.time_batch("dmeasured", shapes, threads)
        for i, (dims, nt) in enumerate(zip(shapes, threads)):
            assert simulator.time("dmeasured", dims, nt) == float(batch[i])

    def test_hook_respects_thread_bounds(self, fresh_global_catalog):
        spec = make_routine_spec(
            "measured",
            ("p", "q"),
            [("A", ("p", "q"), "regular")],
            flops=lambda d: 1.0 * d["p"] * d["q"],
            measure=lambda platform, prec, dims, t: np.asarray(t, dtype=float),
        )
        fresh_global_catalog.register_spec(spec, plugin_name="t")
        platform = get_platform("laptop")
        simulator = TimingSimulator(platform, seed=0)
        with pytest.raises(ValueError):
            simulator.time("dmeasured", {"p": 10, "q": 10}, 0)
        with pytest.raises(ValueError):
            simulator.time(
                "dmeasured", {"p": 10, "q": 10}, platform.max_threads + 1
            )

    def test_builtins_do_not_use_hooks(self):
        simulator = TimingSimulator(get_platform("laptop"), seed=0)
        # unchanged analytic path: stable deterministic value
        a = simulator.time("dgemm", {"m": 500, "k": 400, "n": 300}, 4)
        b = TimingSimulator(get_platform("laptop"), seed=0).time(
            "dgemm", {"m": 500, "k": 400, "n": 300}, 4
        )
        assert a == b
