"""Contrib plugin tests: diversity routines flow through every layer."""

import numpy as np
import pytest

from repro.core.features import compute_features, feature_names
from repro.core.sampling import DomainSampler
from repro.machine.platforms import get_platform
from repro.machine.simulator import TimingSimulator
from repro.routines.catalog import get_catalog, reset_catalog
from repro.routines.contrib import CONTRIB_PLUGINS, register


@pytest.fixture()
def contrib_catalog():
    reset_catalog()
    catalog = get_catalog()
    register(catalog)
    yield catalog
    reset_catalog()


CONTRIB_KEYS = ["dgemm_batch", "dtbtrs", "dtptrs", "dspmv", "dfft2d"]


class TestContribRegistration:
    def test_all_plugins_register(self, contrib_catalog):
        keys = set(contrib_catalog.keys())
        for key in CONTRIB_KEYS:
            assert key in keys
        # triangular family provides two routines from one plugin
        assert contrib_catalog.entry("tbtrs").plugin_name == (
            contrib_catalog.entry("tptrs").plugin_name
        )

    def test_all_have_simulators(self, contrib_catalog):
        for plugin_cls in CONTRIB_PLUGINS:
            for spec in plugin_cls().routine_specs():
                assert spec.has_simulator
                assert not spec.analytic  # cost_model, not the builtin model


class TestContribPipelines:
    @pytest.mark.parametrize("key", CONTRIB_KEYS)
    def test_sampler_respects_dim_ranges(self, contrib_catalog, key):
        sampler = DomainSampler(key, seed=0)
        _, _, spec = contrib_catalog.resolve(key)
        for dims in sampler.sample(10):
            for name, value in dims.items():
                lo, hi = spec.dim_bounds(name) or (1, 10**9)
                assert lo <= value <= hi

    @pytest.mark.parametrize("key", CONTRIB_KEYS)
    def test_scalar_batch_bit_identity(self, contrib_catalog, key):
        simulator = TimingSimulator(get_platform("gadi"), seed=5)
        sampler = DomainSampler(key, seed=1)
        shapes = sampler.sample(4)
        threads = [1, 3, 9, 17]
        batch = simulator.time_batch(key, shapes, threads)
        for i, (dims, nt) in enumerate(zip(shapes, threads)):
            assert simulator.time(key, dims, nt) == float(batch[i])

    @pytest.mark.parametrize("key", CONTRIB_KEYS)
    def test_features_well_formed(self, contrib_catalog, key):
        _, _, spec = contrib_catalog.resolve(key)
        names = feature_names(key)
        sampler = DomainSampler(key, seed=2)
        dims = sampler.sample(1)[0]
        vector = compute_features(key, dims, threads=4)
        assert len(vector) == len(names)
        assert np.all(np.isfinite(vector))
        assert "memory_footprint" in names
        assert "nt" in names

    @pytest.mark.parametrize("key", CONTRIB_KEYS)
    def test_cost_is_positive_and_thread_sensitive(self, contrib_catalog, key):
        simulator = TimingSimulator(get_platform("gadi"), seed=0)
        dims = DomainSampler(key, seed=3).sample(1)[0]
        sweep = simulator.sweep_threads(key, dims)
        assert np.all(sweep.times > 0)
        assert sweep.times.max() > sweep.times.min()


class TestContribInstall:
    def test_install_and_predict_batched_gemm(self, contrib_catalog):
        from repro.core.install import install_adsala

        bundle = install_adsala(
            platform=get_platform("laptop"),
            routines=["dgemm_batch"],
            n_samples=16,
            threads_per_shape=6,
            n_test_shapes=4,
            seed=0,
        )
        predictor = bundle.routines["dgemm_batch"].predictor
        plan = predictor.plan({"b": 256, "m": 32, "n": 64})
        assert 1 <= plan.threads <= get_platform("laptop").max_threads
