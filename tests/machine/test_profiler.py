"""Tests for the Table VIII-style profiling records."""

import pytest

from repro.machine.profiler import profile_call
from repro.machine.simulator import TimingSimulator
from repro.machine.platforms import GADI


@pytest.fixture(scope="module")
def gadi_sim():
    return TimingSimulator(GADI, seed=0)


class TestProfileCall:
    def test_record_fields(self, gadi_sim):
        record = profile_call(gadi_sim, "dgemm", {"m": 64, "k": 2048, "n": 64}, 96, repeats=100)
        assert record.routine == "dgemm"
        assert record.threads == 96
        assert record.repeats == 100
        assert record.total_seconds > 0

    def test_components_do_not_exceed_total(self, gadi_sim):
        record = profile_call(gadi_sim, "dsymm", {"m": 248, "n": 39944}, 96)
        assert record.sync_seconds + record.kernel_seconds + record.copy_seconds <= record.total_seconds
        assert record.other_seconds >= 0

    def test_repeats_scale_linearly(self, gadi_sim):
        once = profile_call(gadi_sim, "dgemm", {"m": 128, "k": 128, "n": 128}, 48, repeats=1)
        hundred = profile_call(gadi_sim, "dgemm", {"m": 128, "k": 128, "n": 128}, 48, repeats=100)
        assert hundred.total_seconds == pytest.approx(100 * once.total_seconds)

    def test_invalid_repeats(self, gadi_sim):
        with pytest.raises(ValueError, match="repeats"):
            profile_call(gadi_sim, "dgemm", {"m": 8, "k": 8, "n": 8}, 4, repeats=0)

    def test_as_row_layout(self, gadi_sim):
        record = profile_call(gadi_sim, "sgemm", {"m": 64, "k": 2048, "n": 64}, 96)
        row = record.as_row()
        assert row["case"].startswith("sgemm 64,2048,64")
        assert set(row) == {"case", "threads", "total_s", "thread_sync_s", "kernel_call_s", "data_copy_s"}


class TestPaperTableVIIIShape:
    """The qualitative content of Table VIII: ML threads shrink every component."""

    @pytest.mark.parametrize(
        "routine,dims",
        [
            ("dgemm", {"m": 64, "k": 2048, "n": 64}),
            ("dsymm", {"m": 248, "n": 39944}),
            ("ssyrk", {"n": 175, "k": 15095}),
        ],
    )
    def test_fewer_threads_reduce_total_and_sync(self, gadi_sim, routine, dims):
        max_threads = GADI.max_threads
        best = gadi_sim.best_threads(routine, dims)
        no_ml = profile_call(gadi_sim, routine, dims, max_threads)
        with_ml = profile_call(gadi_sim, routine, dims, best)
        assert with_ml.total_seconds < no_ml.total_seconds
        assert with_ml.sync_seconds < no_ml.sync_seconds

    def test_sync_is_dominant_overhead_for_small_gemm(self, gadi_sim):
        record = profile_call(gadi_sim, "dgemm", {"m": 64, "k": 2048, "n": 64}, 96)
        assert record.sync_seconds > record.kernel_seconds
