"""Tests for the analytic copy/sync/kernel performance model."""

import pytest

from repro.machine.perfmodel import CostBreakdown, PerformanceModel
from repro.machine.platforms import GADI, LAPTOP, SETONIX


@pytest.fixture(scope="module")
def gadi_model():
    return PerformanceModel(GADI)


@pytest.fixture(scope="module")
def laptop_model():
    return PerformanceModel(LAPTOP)


SMALL_GEMM = {"m": 64, "k": 2048, "n": 64}
LARGE_GEMM = {"m": 4000, "k": 4000, "n": 4000}


class TestBreakdownBasics:
    def test_components_positive(self, gadi_model):
        breakdown = gadi_model.breakdown("dgemm", LARGE_GEMM, 48)
        for value in (breakdown.kernel, breakdown.copy, breakdown.sync, breakdown.other):
            assert value > 0

    def test_total_is_sum_of_components(self, gadi_model):
        b = gadi_model.breakdown("dgemm", SMALL_GEMM, 16)
        assert b.total == pytest.approx(b.kernel + b.copy + b.sync + b.other)

    def test_scaled_breakdown(self):
        b = CostBreakdown(kernel=1.0, copy=2.0, sync=3.0, other=4.0)
        scaled = b.scaled(10.0)
        assert scaled.total == pytest.approx(100.0)
        assert scaled.sync == pytest.approx(30.0)

    def test_invalid_thread_count_rejected(self, gadi_model):
        with pytest.raises(ValueError, match="threads"):
            gadi_model.breakdown("dgemm", SMALL_GEMM, 0)
        with pytest.raises(ValueError, match="exceeds"):
            gadi_model.breakdown("dgemm", SMALL_GEMM, 97)

    def test_time_equals_breakdown_total(self, gadi_model):
        assert gadi_model.time("dsyrk", {"n": 500, "k": 500}, 10) == pytest.approx(
            gadi_model.breakdown("dsyrk", {"n": 500, "k": 500}, 10).total
        )


class TestKernelBehaviour:
    def test_kernel_decreases_with_threads_for_large_problems(self, gadi_model):
        serial = gadi_model.kernel_time("dgemm", LARGE_GEMM, 1)
        parallel = gadi_model.kernel_time("dgemm", LARGE_GEMM, 48)
        assert parallel < serial / 10

    def test_kernel_flat_when_no_parallelism_available(self, gadi_model):
        # 64x64 output is a single model tile: extra threads cannot help.
        few = gadi_model.kernel_time("dgemm", SMALL_GEMM, 2)
        many = gadi_model.kernel_time("dgemm", SMALL_GEMM, 48)
        assert many == pytest.approx(few, rel=0.05)

    def test_single_precision_faster_than_double(self, gadi_model):
        double = gadi_model.kernel_time("dgemm", LARGE_GEMM, 48)
        single = gadi_model.kernel_time("sgemm", LARGE_GEMM, 48)
        assert single < double

    def test_more_flops_takes_longer(self, gadi_model):
        small = gadi_model.kernel_time("dgemm", {"m": 500, "k": 500, "n": 500}, 8)
        large = gadi_model.kernel_time("dgemm", {"m": 1500, "k": 1500, "n": 1500}, 8)
        assert large > small

    def test_saturation_penalises_oversubscription(self):
        model = PerformanceModel(GADI)
        # Gadi SYMM saturates early: more threads past saturation make the
        # kernel slower, not faster.
        dims = {"m": 3000, "n": 3000}
        at_saturation = model.kernel_time("dsymm", dims, 12)
        oversubscribed = model.kernel_time("dsymm", dims, 96)
        assert oversubscribed > at_saturation


class TestOverheadBehaviour:
    def test_sync_grows_with_threads(self, gadi_model):
        assert gadi_model.sync_time("dgemm", SMALL_GEMM, 96) > gadi_model.sync_time(
            "dgemm", SMALL_GEMM, 8
        )

    def test_cross_socket_penalty_applies(self, gadi_model):
        per_socket = GADI.cores_per_socket * GADI.smt
        below = gadi_model.sync_time("dgemm", SMALL_GEMM, per_socket)
        above = gadi_model.sync_time("dgemm", SMALL_GEMM, per_socket + 1)
        assert above > below * 1.2

    def test_copy_grows_with_threads(self, gadi_model):
        assert gadi_model.copy_time("dgemm", SMALL_GEMM, 96) > gadi_model.copy_time(
            "dgemm", SMALL_GEMM, 8
        )

    def test_symm_copy_exceeds_gemm_copy(self, gadi_model):
        symm = gadi_model.copy_time("dsymm", {"m": 1000, "n": 1000}, 48)
        gemm = gadi_model.copy_time("dgemm", {"m": 1000, "k": 1000, "n": 1000}, 48)
        assert symm > gemm

    def test_overheads_dominate_small_problems_at_max_threads(self, gadi_model):
        b = gadi_model.breakdown("dgemm", SMALL_GEMM, 96)
        assert b.sync + b.copy > b.kernel

    def test_kernel_dominates_large_problems(self, gadi_model):
        b = gadi_model.breakdown("dgemm", LARGE_GEMM, 96)
        assert b.kernel > b.sync + b.copy


class TestOptimalThreadStructure:
    """The qualitative phenomena ADSALA exploits."""

    def sweep_total(self, model, routine, dims, max_threads):
        return {t: model.time(routine, dims, t) for t in range(1, max_threads + 1)}

    def test_small_problem_optimum_below_max_threads(self, gadi_model):
        times = self.sweep_total(gadi_model, "dgemm", SMALL_GEMM, 96)
        best = min(times, key=times.get)
        assert best < 96
        assert times[96] > times[best] * 1.3

    def test_large_problem_max_threads_near_optimal(self, gadi_model):
        times = self.sweep_total(gadi_model, "dgemm", LARGE_GEMM, 96)
        best = min(times, key=times.get)
        assert times[96] < times[best] * 1.25

    def test_symm_optimum_much_lower_than_gemm_optimum(self, gadi_model):
        dims = {"m": 2500, "n": 2500}
        symm_times = self.sweep_total(gadi_model, "dsymm", dims, 96)
        gemm_times = self.sweep_total(gadi_model, "dgemm", {"m": 2500, "k": 2500, "n": 2500}, 96)
        assert min(symm_times, key=symm_times.get) < min(gemm_times, key=gemm_times.get)

    def test_setonix_syrk_optimum_can_exceed_physical_cores(self):
        model = PerformanceModel(SETONIX)
        dims = {"n": 3000, "k": 3000}
        times = {t: model.time("dsyrk", dims, t) for t in range(1, 257)}
        best = min(times, key=times.get)
        assert best > SETONIX.physical_cores

    def test_laptop_model_runs(self, laptop_model):
        assert laptop_model.time("strsm", {"m": 400, "n": 400}, 4) > 0
