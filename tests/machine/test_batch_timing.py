"""Equivalence tests: vectorised batch timing vs the scalar reference path.

The scalar ``TimingSimulator.time``/``breakdown`` loop is the reference
implementation; ``time_batch``/``breakdown_batch`` must reproduce it
bit-for-bit (same integer-mix hash draws, same cost-model arithmetic) for
every routine, platform and input form.
"""

import numpy as np
import pytest

from repro.blas.api import parse_routine
from repro.machine.perfmodel import PerformanceModel, normalize_batch_inputs
from repro.machine.platforms import get_platform, list_platforms
from repro.machine.simulator import TimingSimulator


def _random_cases(routine, platform, n, seed):
    rng = np.random.default_rng(seed)
    _, _, spec = parse_routine(routine)
    dims_list = [
        {name: int(rng.integers(1, 5000)) for name in spec.dim_names}
        for _ in range(n)
    ]
    threads = rng.integers(1, platform.max_threads + 1, size=n)
    return dims_list, threads


class TestTimeBatchEquivalence:
    @pytest.mark.parametrize("platform_name", list_platforms())
    @pytest.mark.parametrize("routine", ["dgemm", "ssymm", "dsyrk", "ssyr2k", "dtrmm", "strsm"])
    def test_batch_equals_scalar_loop(self, platform_name, routine):
        platform = get_platform(platform_name)
        simulator = TimingSimulator(platform, seed=7)
        dims_list, threads = _random_cases(routine, platform, 60, seed=11)
        batch = simulator.time_batch(routine, dims_list, threads)
        scalar = np.array(
            [
                simulator.time(routine, dims, int(t))
                for dims, t in zip(dims_list, threads)
            ]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_breakdown_rows_equal_scalar_breakdown(self, laptop):
        simulator = TimingSimulator(laptop, seed=0)
        dims_list, threads = _random_cases("dgemm", laptop, 20, seed=3)
        batch = simulator.breakdown_batch("dgemm", dims_list, threads)
        for i, (dims, t) in enumerate(zip(dims_list, threads)):
            scalar = simulator.breakdown("dgemm", dims, int(t))
            row = batch.row(i)
            assert (row.kernel, row.copy, row.sync, row.other) == (
                scalar.kernel,
                scalar.copy,
                scalar.sync,
                scalar.other,
            )

    def test_perfmodel_batch_matches_scalar(self, laptop):
        model = PerformanceModel(laptop)
        dims_list, threads = _random_cases("dsyr2k", laptop, 25, seed=5)
        batch = model.time_batch("dsyr2k", dims_list, threads)
        scalar = np.array(
            [model.time("dsyr2k", dims, int(t)) for dims, t in zip(dims_list, threads)]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_dict_of_arrays_equals_list_of_dicts(self, laptop):
        simulator = TimingSimulator(laptop, seed=1)
        dims_list, threads = _random_cases("dgemm", laptop, 15, seed=2)
        arrays = {
            name: np.array([dims[name] for dims in dims_list])
            for name in ("m", "k", "n")
        }
        np.testing.assert_array_equal(
            simulator.time_batch("dgemm", arrays, threads),
            simulator.time_batch("dgemm", dims_list, threads),
        )

    def test_scalar_threads_broadcast(self, laptop):
        simulator = TimingSimulator(laptop, seed=1)
        dims_list, _ = _random_cases("dsymm", laptop, 10, seed=9)
        batch = simulator.time_batch("dsymm", dims_list, 4)
        scalar = np.array([simulator.time("dsymm", dims, 4) for dims in dims_list])
        np.testing.assert_array_equal(batch, scalar)

    def test_time_at_max_threads_batch(self, laptop):
        simulator = TimingSimulator(laptop, seed=1)
        dims_list, _ = _random_cases("dgemm", laptop, 8, seed=4)
        batch = simulator.time_at_max_threads_batch("dgemm", dims_list)
        scalar = np.array(
            [simulator.time_at_max_threads("dgemm", dims) for dims in dims_list]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_sweep_threads_uses_batch_and_matches_scalar(self, laptop):
        simulator = TimingSimulator(laptop, seed=2)
        dims = {"m": 300, "k": 200, "n": 150}
        sweep = simulator.sweep_threads("dgemm", dims)
        scalar = np.array(
            [simulator.time("dgemm", dims, int(t)) for t in sweep.threads]
        )
        np.testing.assert_array_equal(sweep.times, scalar)


class TestBatchValidation:
    def test_counter_increments_by_batch_size(self, laptop):
        simulator = TimingSimulator(laptop, seed=0)
        before = simulator.n_evaluations
        simulator.time_batch("dgemm", {"m": [64, 128], "k": 64, "n": 64}, [2, 4])
        assert simulator.n_evaluations == before + 2

    def test_threads_above_platform_maximum_rejected(self, laptop):
        simulator = TimingSimulator(laptop, seed=0)
        with pytest.raises(ValueError, match="maximum"):
            simulator.time_batch(
                "dgemm", {"m": 64, "k": 64, "n": 64}, laptop.max_threads + 1
            )

    def test_non_positive_inputs_rejected(self, laptop):
        simulator = TimingSimulator(laptop, seed=0)
        with pytest.raises(ValueError):
            simulator.time_batch("dgemm", {"m": [64, 0], "k": 64, "n": 64}, 2)
        with pytest.raises(ValueError):
            simulator.time_batch("dgemm", {"m": 64, "k": 64, "n": 64}, 0)

    def test_mismatched_lengths_rejected(self, laptop):
        simulator = TimingSimulator(laptop, seed=0)
        with pytest.raises(ValueError, match="[Mm]ismatch"):
            simulator.time_batch(
                "dgemm", {"m": [64, 128, 256], "k": [64, 64], "n": 64}, 2
            )

    def test_wrong_dimension_names_rejected(self, laptop):
        simulator = TimingSimulator(laptop, seed=0)
        with pytest.raises(ValueError, match="missing"):
            simulator.time_batch("dgemm", {"m": 64, "k": 64}, 2)
        with pytest.raises(ValueError, match="unexpected"):
            simulator.time_batch("dsyrk", {"n": 64, "k": 64, "m": 64}, 2)

    def test_normalize_batch_inputs_broadcasts(self):
        _, _, spec = parse_routine("dgemm")
        arrays, threads, n = normalize_batch_inputs(
            spec, {"m": [10, 20, 30], "k": 5, "n": 7}, 3
        )
        assert n == 3
        np.testing.assert_array_equal(arrays["k"], [5, 5, 5])
        np.testing.assert_array_equal(threads, [3, 3, 3])


class TestGatherBatchEquivalence:
    @pytest.mark.parametrize("routine", ["dgemm", "ssyrk"])
    def test_batch_gather_dataset_is_bit_identical(self, laptop, routine):
        from repro.core.gather import DataGatherer

        def build(use_batch):
            gatherer = DataGatherer(
                TimingSimulator(laptop, seed=0),
                routine,
                n_shapes=12,
                threads_per_shape=5,
                seed=0,
            )
            return gatherer.gather(use_batch=use_batch)

        scalar = build(False)
        batch = build(True)
        assert scalar.dims == batch.dims
        assert scalar.threads == batch.threads
        assert scalar.times == batch.times
