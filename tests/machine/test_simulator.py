"""Tests for the timing simulator (noise, determinism, sweeps)."""

import numpy as np
import pytest

from repro.machine.perfmodel import PerformanceModel
from repro.machine.simulator import TimingSimulator
from repro.machine.platforms import GADI


DIMS = {"m": 300, "k": 400, "n": 200}


class TestDeterminism:
    def test_same_inputs_same_output(self, laptop):
        sim = TimingSimulator(laptop, seed=1)
        assert sim.time("dgemm", DIMS, 4) == sim.time("dgemm", DIMS, 4)

    def test_two_instances_agree(self, laptop):
        a = TimingSimulator(laptop, seed=1)
        b = TimingSimulator(laptop, seed=1)
        assert a.time("dsyrk", {"n": 256, "k": 64}, 6) == b.time("dsyrk", {"n": 256, "k": 64}, 6)

    def test_seed_changes_noise(self, laptop):
        a = TimingSimulator(laptop, seed=1)
        b = TimingSimulator(laptop, seed=2)
        assert a.time("dgemm", DIMS, 4) != b.time("dgemm", DIMS, 4)

    def test_zero_noise_matches_analytic_model(self, laptop):
        sim = TimingSimulator(laptop, seed=0, noise_level=0.0, patch_probability=0.0)
        model = PerformanceModel(laptop)
        assert sim.time("dgemm", DIMS, 4) == pytest.approx(model.time("dgemm", DIMS, 4))


class TestNoise:
    def test_noise_is_bounded_multiplicative(self, laptop):
        sim = TimingSimulator(laptop, seed=3, noise_level=0.05, patch_probability=0.0)
        model = PerformanceModel(laptop)
        for threads in (1, 4, 8, 16):
            ratio = sim.time("dgemm", DIMS, threads) / model.time("dgemm", DIMS, threads)
            assert 0.7 < ratio < 1.4

    def test_invalid_noise_level(self, laptop):
        with pytest.raises(ValueError, match="noise_level"):
            TimingSimulator(laptop, noise_level=-0.1)

    def test_invalid_patch_probability(self, laptop):
        with pytest.raises(ValueError, match="patch_probability"):
            TimingSimulator(laptop, patch_probability=1.5)

    def test_abnormal_patches_create_localised_slowdowns(self):
        # With patching enabled, some (shape, thread) cells are slower than
        # the noise-free model by much more than the noise level allows.
        sim = TimingSimulator(GADI, seed=0, noise_level=0.0, patch_probability=0.3,
                              patch_strength=1.5)
        model = PerformanceModel(GADI)
        ratios = []
        for threads in (12, 24, 36, 48):
            for m in range(200, 3200, 150):
                dims = {"m": m, "k": 512, "n": 512}
                ratios.append(
                    sim.time("dgemm", dims, threads)
                    / model.time("dgemm", dims, threads)
                )
        ratios = np.array(ratios)
        assert ratios.max() > 1.2       # at least one patched cell
        assert (ratios < 1.05).sum() > len(ratios) / 3   # most cells unaffected


class TestBreakdownAndCounters:
    def test_breakdown_components_positive(self, simulator):
        b = simulator.breakdown("dsymm", {"m": 200, "n": 300}, 5)
        assert min(b.kernel, b.copy, b.sync, b.other) > 0

    def test_evaluation_counter_increments(self, simulator):
        start = simulator.n_evaluations
        simulator.time("dgemm", DIMS, 2)
        simulator.time("dgemm", DIMS, 3)
        assert simulator.n_evaluations == start + 2

    def test_time_at_max_threads(self, laptop, simulator):
        expected = simulator.time("dgemm", DIMS, laptop.max_threads)
        assert simulator.time_at_max_threads("dgemm", DIMS) == pytest.approx(expected)


class TestSweeps:
    def test_sweep_covers_all_candidates(self, laptop, simulator):
        sweep = simulator.sweep_threads("dgemm", DIMS)
        assert len(sweep.threads) == laptop.max_threads
        assert sweep.times.shape == sweep.threads.shape

    def test_best_threads_minimises_time(self, simulator):
        sweep = simulator.sweep_threads("dgemm", DIMS)
        assert sweep.best_time == pytest.approx(sweep.times.min())
        assert sweep.threads[np.argmin(sweep.times)] == sweep.best_threads

    def test_sweep_with_custom_candidates(self, simulator):
        sweep = simulator.sweep_threads("dgemm", DIMS, thread_counts=[1, 2, 8])
        assert list(sweep.threads) == [1, 2, 8]

    def test_time_at_unknown_thread_count_raises(self, simulator):
        sweep = simulator.sweep_threads("dgemm", DIMS, thread_counts=[1, 2])
        with pytest.raises(KeyError):
            sweep.time_at(7)

    def test_empty_candidates_rejected(self, simulator):
        with pytest.raises(ValueError, match="empty"):
            simulator.sweep_threads("dgemm", DIMS, thread_counts=[])

    def test_best_time_and_threads_consistent(self, simulator):
        best_threads = simulator.best_threads("dsyrk", {"n": 300, "k": 200})
        best_time = simulator.best_time("dsyrk", {"n": 300, "k": 200})
        assert simulator.time("dsyrk", {"n": 300, "k": 200}, best_threads) == pytest.approx(best_time)

    def test_speedup_vs_max_threads(self, simulator):
        best = simulator.best_threads("dsymm", {"m": 300, "n": 400})
        speedup = simulator.speedup_vs_max_threads("dsymm", {"m": 300, "n": 400}, best)
        assert speedup >= 1.0


class TestPaperPhenomena:
    """Spot checks of the qualitative patterns the paper reports."""

    def test_gadi_small_gemm_prefers_fewer_threads(self):
        sim = TimingSimulator(GADI, seed=0)
        best = sim.best_threads("dgemm", {"m": 64, "k": 2048, "n": 64})
        assert best < GADI.physical_cores

    def test_gadi_symm_speedup_exceeds_gemm_speedup(self):
        sim = TimingSimulator(GADI, seed=0)
        gemm_dims = {"m": 2000, "k": 2000, "n": 2000}
        symm_dims = {"m": 2000, "n": 2000}
        gemm_speedup = sim.time_at_max_threads("dgemm", gemm_dims) / sim.best_time("dgemm", gemm_dims)
        symm_speedup = sim.time_at_max_threads("dsymm", symm_dims) / sim.best_time("dsymm", symm_dims)
        assert symm_speedup > gemm_speedup

    def test_speedup_shrinks_for_large_problems(self):
        sim = TimingSimulator(GADI, seed=0)
        small = {"m": 400, "k": 400, "n": 400}
        large = {"m": 4000, "k": 4000, "n": 4000}
        small_speedup = sim.time_at_max_threads("dgemm", small) / sim.best_time("dgemm", small)
        large_speedup = sim.time_at_max_threads("dgemm", large) / sim.best_time("dgemm", large)
        assert small_speedup > large_speedup
