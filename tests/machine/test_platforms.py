"""Tests for the Setonix / Gadi / laptop platform presets (paper Section V-A)."""

import pytest

from repro.blas.api import ROUTINE_NAMES
from repro.machine.platforms import GADI, LAPTOP, SETONIX, get_platform, list_platforms


class TestRegistry:
    def test_list_platforms(self):
        assert set(list_platforms()) == {"setonix", "gadi", "laptop"}

    def test_lookup_case_insensitive(self):
        assert get_platform("Setonix") is SETONIX
        assert get_platform("GADI") is GADI

    def test_unknown_platform(self):
        with pytest.raises(KeyError, match="Unknown platform"):
            get_platform("frontier")

    def test_presets_validate(self):
        for name in list_platforms():
            get_platform(name).validate()


class TestSetonixSpecs:
    """Figures quoted in the paper for the Pawsey Setonix nodes."""

    def test_sockets_and_cores(self):
        assert SETONIX.sockets == 2
        assert SETONIX.cores_per_socket == 64
        assert SETONIX.physical_cores == 128

    def test_smt_allows_256_threads(self):
        assert SETONIX.max_threads == 256

    def test_numa_and_memory(self):
        assert SETONIX.numa_domains == 8
        assert SETONIX.memory_gb == 256.0
        assert SETONIX.memory_channels_per_socket == 8

    def test_l3_organisation(self):
        assert SETONIX.l3_cache_mb_per_group == 32.0
        assert SETONIX.cores_per_cache_group == 8

    def test_clock_and_baseline(self):
        assert SETONIX.clock_ghz == pytest.approx(2.55)
        assert SETONIX.baseline_blas == "blis"
        assert SETONIX.vendor == "AMD"


class TestGadiSpecs:
    """Figures quoted in the paper for the NCI Gadi nodes."""

    def test_sockets_and_cores(self):
        assert GADI.sockets == 2
        assert GADI.cores_per_socket == 24
        assert GADI.physical_cores == 48

    def test_smt_allows_96_threads(self):
        assert GADI.max_threads == 96

    def test_numa_and_memory(self):
        assert GADI.numa_domains == 4
        assert GADI.memory_gb == 192.0
        assert GADI.memory_channels_per_socket == 6

    def test_clock_and_baseline(self):
        assert GADI.clock_ghz == pytest.approx(3.2)
        assert GADI.baseline_blas == "mkl"
        assert GADI.vendor == "Intel"


class TestRoutineProfiles:
    @pytest.mark.parametrize("platform", [SETONIX, GADI, LAPTOP])
    def test_all_routines_have_profiles(self, platform):
        for routine in ROUTINE_NAMES:
            profile = platform.routine_profile(routine)
            assert 0 < profile.kernel_efficiency <= 1
            assert 0 <= profile.smt_yield <= 1

    def test_gemm_is_the_best_tuned_routine(self):
        for platform in (SETONIX, GADI):
            gemm_eff = platform.routine_profile("gemm").kernel_efficiency
            for routine in ("symm", "syrk", "syr2k", "trmm", "trsm"):
                assert platform.routine_profile(routine).kernel_efficiency < gemm_eff

    def test_symm_has_largest_overhead_factors(self):
        for platform in (SETONIX, GADI):
            symm = platform.routine_profile("symm")
            for routine in ("gemm", "syrk", "trmm"):
                other = platform.routine_profile(routine)
                assert symm.sync_factor >= other.sync_factor
                assert symm.copy_factor >= other.copy_factor

    def test_setonix_smt_yield_exceeds_gadi_for_syrk_family(self):
        # Paper Fig. 4: on Setonix SYRK/TRMM/TRSM often prefer more threads
        # than physical cores, on Gadi they prefer fewer.
        for routine in ("syrk", "trmm", "trsm"):
            assert (
                SETONIX.routine_profile(routine).smt_yield
                > GADI.routine_profile(routine).smt_yield
            )

    def test_laptop_is_small(self):
        assert LAPTOP.max_threads <= 16
