"""Tests for the machine-topology description."""

import dataclasses

import pytest

from repro.machine.topology import MachineTopology, RoutineEfficiency


def make_topology(**overrides):
    base = dict(
        name="toy",
        vendor="Test",
        cpu_model="Toy 4-Core",
        sockets=2,
        cores_per_socket=4,
        smt=2,
        numa_domains=4,
        clock_ghz=2.0,
        flops_per_cycle=8.0,
        l3_cache_mb_per_group=8.0,
        cores_per_cache_group=4,
        memory_channels_per_socket=2,
        memory_bandwidth_gbs_per_socket=50.0,
        memory_gb=64.0,
        baseline_blas="openblas",
    )
    base.update(overrides)
    return MachineTopology(**base)


class TestDerivedQuantities:
    def test_physical_cores(self):
        assert make_topology().physical_cores == 8

    def test_max_threads_includes_smt(self):
        assert make_topology().max_threads == 16
        assert make_topology(smt=1).max_threads == 8

    def test_cores_per_numa(self):
        assert make_topology().cores_per_numa == 2.0

    def test_peak_gflops(self):
        topo = make_topology()
        assert topo.peak_gflops_per_core == pytest.approx(16.0)
        assert topo.peak_gflops == pytest.approx(128.0)

    def test_total_memory_bandwidth(self):
        assert make_topology().total_memory_bandwidth_gbs == pytest.approx(100.0)

    def test_candidate_thread_counts_cover_full_range(self):
        counts = make_topology().candidate_thread_counts()
        assert counts[0] == 1
        assert counts[-1] == 16
        assert counts == sorted(set(counts))
        assert len(counts) == 16


class TestRoutineProfiles:
    def test_known_routine_profile(self):
        profile = RoutineEfficiency(kernel_efficiency=0.5)
        topo = make_topology(routine_profiles={"gemm": profile})
        assert topo.routine_profile("gemm") is profile

    def test_precision_prefix_stripped(self):
        profile = RoutineEfficiency(sync_factor=9.0)
        topo = make_topology(routine_profiles={"syrk": profile})
        assert topo.routine_profile("dsyrk") is profile
        assert topo.routine_profile("ssyrk") is profile

    def test_unknown_routine_gets_defaults(self):
        topo = make_topology()
        profile = topo.routine_profile("trmm")
        assert profile.kernel_efficiency == pytest.approx(0.80)
        assert profile.saturation_threads == float("inf")

    def test_topology_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            make_topology().sockets = 4


class TestValidation:
    def test_valid_topology_passes(self):
        make_topology().validate()

    def test_numa_must_cover_sockets(self):
        with pytest.raises(ValueError, match="numa"):
            make_topology(numa_domains=1).validate()

    def test_numa_must_divide_sockets(self):
        with pytest.raises(ValueError, match="divide"):
            make_topology(numa_domains=3).validate()

    def test_cores_must_divide_numa(self):
        with pytest.raises(ValueError, match="NUMA"):
            make_topology(cores_per_socket=3, numa_domains=4, sockets=2).validate()

    def test_positive_clock_required(self):
        with pytest.raises(ValueError, match="clock"):
            make_topology(clock_ghz=0.0).validate()

    def test_positive_bandwidth_required(self):
        with pytest.raises(ValueError, match="bandwidth"):
            make_topology(memory_bandwidth_gbs_per_socket=-1.0).validate()

    def test_invalid_smt(self):
        with pytest.raises(ValueError, match="smt"):
            make_topology(smt=0).validate()


class TestDescribe:
    def test_describe_mentions_key_facts(self):
        text = make_topology().describe()
        assert "8" in text            # physical cores
        assert "16 threads" in text
        assert "OPENBLAS" in text
