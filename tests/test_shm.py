"""Tests for the shared-memory segment registry (:mod:`repro.shm`).

Covers the tentpole's shared-state guarantees directly, without any worker
processes: write-through visibility across independent mappings of one
segment, deterministic /dev/shm-probeable names, refcounted exactly-once
teardown, and the graceful inline fallback when shared memory is
unavailable.
"""

import warnings
from pathlib import Path

import numpy as np
import pytest

import repro.shm as shm_mod
from repro.ml._native import NODE_DTYPE
from repro.shm import SharedArrayRef, SharedSegmentRegistry


def _shm_path(name: str) -> Path:
    return Path("/dev/shm") / name


def _probe_dev_shm() -> bool:
    return Path("/dev/shm").is_dir()


class TestExportAndMap:
    def test_roundtrip_values_and_geometry(self):
        registry = SharedSegmentRegistry()
        try:
            array = np.arange(24, dtype=np.float64).reshape(4, 6) * 1.5
            ref = registry.export_array(array)
            assert not ref.inline
            mapped = registry.map_array(ref)
            assert mapped.shape == array.shape
            assert mapped.dtype == array.dtype
            np.testing.assert_array_equal(mapped, array)
        finally:
            registry.close()

    def test_write_through_across_independent_mappings(self):
        """Two registries mapping one segment see each other's writes."""
        creator = SharedSegmentRegistry()
        consumer = SharedSegmentRegistry()
        try:
            ref = creator.export_array(np.zeros(16, dtype=np.float64))
            if ref.inline:
                pytest.skip("shared memory unavailable in this environment")
            theirs = consumer.map_array(ref)
            mine = creator.map_array(ref)
            theirs[3] = 42.5
            assert mine[3] == 42.5  # same pages, not a copy
            mine[7] = -1.0
            assert theirs[7] == -1.0
        finally:
            consumer.close()
            creator.close()

    def test_structured_dtype_roundtrips(self):
        """The packed node layout survives the descr round-trip."""
        registry = SharedSegmentRegistry()
        try:
            nodes = np.zeros(5, dtype=NODE_DTYPE)
            nodes["thr"] = np.inf
            nodes["value"] = np.arange(5, dtype=np.float64)
            ref = registry.export_array(nodes)
            mapped = registry.map_array(ref)
            assert mapped.dtype == NODE_DTYPE
            np.testing.assert_array_equal(mapped["value"], nodes["value"])
        finally:
            registry.close()

    def test_same_array_object_exports_once(self):
        registry = SharedSegmentRegistry()
        try:
            array = np.ones(8)
            first = registry.export_array(array)
            second = registry.export_array(array)
            assert first is second
            assert len(registry.segment_names()) == 1
        finally:
            registry.close()

    def test_closed_registry_rejects_export_and_map(self):
        registry = SharedSegmentRegistry()
        ref = registry.export_array(np.ones(4))
        registry.close()
        with pytest.raises(RuntimeError):
            registry.export_array(np.ones(4))
        if not ref.inline:
            with pytest.raises(RuntimeError):
                registry.map_array(ref)


@pytest.mark.skipif(not _probe_dev_shm(), reason="no /dev/shm to probe")
class TestSegmentLifecycle:
    def test_deterministic_names_visible_in_dev_shm(self):
        registry = SharedSegmentRegistry()
        try:
            ref = registry.export_array(np.ones(32))
            if ref.inline:
                pytest.skip("shared memory unavailable in this environment")
            assert ref.segment.startswith("adsala-")
            assert ref.segment in registry.segment_names()
            assert _shm_path(ref.segment).exists()
        finally:
            registry.close()
        assert not _shm_path(ref.segment).exists()

    def test_refcounted_close_releases_exactly_once(self):
        registry = SharedSegmentRegistry()
        ref = registry.export_array(np.ones(8))
        if ref.inline:
            registry.close()
            pytest.skip("shared memory unavailable in this environment")
        registry.acquire()
        registry.acquire()
        registry.release()
        assert not registry.closed
        assert _shm_path(ref.segment).exists()
        registry.release()  # last consumer
        assert registry.closed
        assert registry.n_closes == 1
        assert not _shm_path(ref.segment).exists()
        # Further closes are no-ops, not double-unlinks.
        assert registry.close() is False
        assert registry.n_closes == 1


class TestGracefulDegradation:
    def test_inline_fallback_when_shared_memory_unavailable(self, monkeypatch):
        """No /dev/shm → per-process copies and one RuntimeWarning, no crash."""

        def denied(*args, **kwargs):
            raise PermissionError("shared memory denied by test")

        monkeypatch.setattr(shm_mod, "SharedMemory", denied)
        registry = SharedSegmentRegistry()
        try:
            first = np.arange(6, dtype=np.float64)
            second = np.arange(4, dtype=np.float64)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                ref_a = registry.export_array(first)
                ref_b = registry.export_array(second)
            runtime_warnings = [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ]
            assert len(runtime_warnings) == 1  # warned once, not per array
            assert "per-process" in str(runtime_warnings[0].message)
            assert ref_a.inline and ref_b.inline
            assert not registry.shared_available
            np.testing.assert_array_equal(registry.map_array(ref_a), first)
            np.testing.assert_array_equal(registry.map_array(ref_b), second)
            assert registry.segment_names() == []
        finally:
            registry.close()

    def test_inline_refs_pickle_with_their_data(self, monkeypatch):
        import pickle

        monkeypatch.setattr(
            shm_mod,
            "SharedMemory",
            lambda *a, **k: (_ for _ in ()).throw(OSError("nope")),
        )
        registry = SharedSegmentRegistry()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                ref = registry.export_array(np.arange(5, dtype=np.int64))
            clone: SharedArrayRef = pickle.loads(pickle.dumps(ref))
            assert clone.inline
            np.testing.assert_array_equal(clone.array, np.arange(5))
        finally:
            registry.close()
