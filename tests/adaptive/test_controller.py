"""Tests for the adaptation controller's lifecycle state machine and loop."""

from dataclasses import replace

import pytest

from repro.adaptive import (
    AdaptationController,
    BundlePromoter,
    DriftInjector,
    RoutineLifecycle,
)
from repro.core.persistence import read_manifest
from repro.serving.engine import ServingEngine


def read_bundle_bytes(directory):
    manifest = read_manifest(directory)
    state = {"bundle.json": (directory / "bundle.json").read_bytes()}
    for meta in manifest["routines"].values():
        state[meta["model_file"]] = (directory / meta["model_file"]).read_bytes()
    return state


@pytest.fixture()
def loop(bundle_dir, quick_config, calibration, laptop, make_engine):
    """A ready-to-step adaptation loop over a fresh on-disk bundle."""
    registry, handle, engine = make_engine(bundle_dir)
    injector = DriftInjector(laptop, calibration)
    controller = AdaptationController(
        engine,
        quick_config,
        measurement_simulator=injector.simulator(seed=2),
        calibration=calibration,
        clock=lambda: 99.0,
    )
    return registry, handle, engine, controller, injector


class TestIdleController:
    def test_no_drift_means_no_action(self, loop, drive_traffic, laptop):
        _, handle, engine, controller, _ = loop
        undrifted_observer = DriftInjector(laptop).simulator(seed=1)
        drive_traffic(engine, undrifted_observer)
        report = controller.step()
        assert not report.acted
        assert report.drifting == []
        assert controller.states() == {"dgemm": "healthy", "dsyrk": "healthy"}
        assert handle.bundle_version == 1

    def test_states_default_to_healthy(self, loop):
        _, _, _, controller, _ = loop
        assert controller.state("dgemm") is RoutineLifecycle.HEALTHY
        assert controller.states() == {}  # no telemetry yet


class TestEndToEndAdaptation:
    def test_drift_to_promotion_to_recovery_and_rollback(
        self, loop, drive_traffic, drifted_observer
    ):
        """The acceptance scenario: inject drift mid-serve, adapt, verify the
        hot reload, the error recovery and the byte-for-byte rollback."""
        _, handle, engine, controller, _ = loop
        bundle_dir = handle.directory
        v1_bytes = read_bundle_bytes(bundle_dir)

        # -- drift: the machine under the engine changed ---------------------
        drive_traffic(engine, drifted_observer)
        drifted = engine.reinstall_candidates()
        assert set(drifted) == {"dgemm", "dsyrk"}
        errors_before = {
            routine: engine.telemetry.routines[routine].mean_abs_rel_error
            for routine in drifted
        }
        assert all(
            error > engine.telemetry.drift_threshold
            for error in errors_before.values()
        )

        # -- one controller step runs the whole cycle ------------------------
        report = controller.step()
        assert set(report.drifting) == {"dgemm", "dsyrk"}
        assert report.promoted  # at least one routine cleared shadow
        assert report.new_version == 2
        assert report.reloaded  # the engine hot-reloaded, no restart
        for routine in report.promoted:
            assert controller.state(routine) is RoutineLifecycle.PROMOTED
        assert handle.bundle_version == 2  # same handle object serves v2

        # -- fresh traffic: rolling error recovers below the threshold -------
        drive_traffic(engine, drifted_observer, seed=4)
        for routine in report.promoted:
            telemetry = engine.telemetry.routines[routine]
            assert telemetry.mean_abs_rel_error < engine.telemetry.drift_threshold
            assert telemetry.mean_abs_rel_error < errors_before[routine]
        follow_up = controller.step()
        for routine in report.promoted:
            assert routine in follow_up.recovered
            assert controller.state(routine) is RoutineLifecycle.HEALTHY

        # -- one-command rollback restores v1 byte for byte ------------------
        restored = controller.rollback()
        assert restored == 1
        assert read_bundle_bytes(bundle_dir) == v1_bytes
        assert handle.bundle_version == 1
        assert all(
            state is RoutineLifecycle.ROLLED_BACK
            for state in (controller.state(r) for r in engine.telemetry.routines)
        )

    def test_audit_trail_records_the_lifecycle(
        self, loop, drive_traffic, drifted_observer
    ):
        _, handle, engine, controller, _ = loop
        drive_traffic(engine, drifted_observer)
        report = controller.step()
        events = controller.promoter.log.events()
        for routine in report.promoted:
            sequence = [
                event["event"] for event in events if event.get("routine") == routine
            ]
            assert sequence == ["drift_detected", "regathered", "shadow", "promoted"]
        promoted_event = controller.promoter.log.last_event(event="promoted")
        assert promoted_event["details"]["to_version"] == 2
        assert promoted_event["ts"] == 99.0  # injected clock

    def test_rejected_candidate_rolls_back_and_stays_eligible(
        self, loop, drive_traffic, drifted_observer, quick_config
    ):
        _, handle, engine, controller, _ = loop
        # An impossible improvement bar forces a shadow rejection.
        controller.config = replace(quick_config, min_error_improvement=0.999)
        controller.shadow_evaluator.config = controller.config
        drive_traffic(engine, drifted_observer)
        report = controller.step()
        assert set(report.rejected) == {"dgemm", "dsyrk"}
        assert report.promoted == []
        assert handle.bundle_version == 1  # nothing written
        for routine in report.rejected:
            assert controller.state(routine) is RoutineLifecycle.ROLLED_BACK
        # Still drifting -> eligible again on the next step.
        next_report = controller.step()
        assert set(next_report.drifting) == {"dgemm", "dsyrk"}

    def test_max_routines_per_step_bounds_the_budget(
        self, loop, drive_traffic, drifted_observer, quick_config
    ):
        _, _, engine, controller, _ = loop
        controller.config = replace(quick_config, max_routines_per_step=1)
        drive_traffic(engine, drifted_observer)
        report = controller.step()
        assert len(report.retrained) == 1


class TestUninstalledRoutines:
    def test_heuristic_served_drift_is_skipped_not_fatal(
        self, loop, drive_traffic, drifted_observer
    ):
        """Uninstalled routines served by the max-threads heuristic can trip
        the drift flag; the step must skip them (no live model to shadow or
        replace) while still adapting the installed ones."""
        _, handle, engine, controller, _ = loop
        drive_traffic(engine, drifted_observer)
        drive_traffic(engine, drifted_observer, routines=["dtrmm"], n_requests=60)
        assert "dtrmm" in engine.reinstall_candidates()
        report = controller.step()
        assert report.skipped == ["dtrmm"]
        assert "dtrmm" not in report.retrained
        assert report.promoted  # installed routines still adapted
        assert "full install" in report.summary()
        unadaptable = controller.promoter.log.last_event(event="drift_unadaptable")
        assert unadaptable["routine"] == "dtrmm"


class TestCrashRecovery:
    def test_routine_stranded_mid_cycle_re_enters_the_loop(
        self, loop, drive_traffic, drifted_observer
    ):
        """A step that died after transitioning to REGATHERING/SHADOW must
        not strand the routine outside the state machine forever."""
        _, _, engine, controller, _ = loop
        drive_traffic(engine, drifted_observer)
        controller._states["dgemm"] = RoutineLifecycle.REGATHERING
        controller._states["dsyrk"] = RoutineLifecycle.SHADOW
        report = controller.step()
        assert set(report.drifting) == {"dgemm", "dsyrk"}
        assert report.promoted  # the cycle ran to completion again

    def test_unadaptable_routine_logged_once_across_steps(
        self, loop, drive_traffic, drifted_observer
    ):
        _, _, engine, controller, _ = loop
        drive_traffic(engine, drifted_observer, routines=["dtrmm"], n_requests=60)
        first = controller.step()
        second = controller.step()
        assert first.skipped == ["dtrmm"] and second.skipped == ["dtrmm"]
        events = [
            event
            for event in controller.promoter.log.events()
            if event["event"] == "drift_unadaptable"
        ]
        assert len(events) == 1


class TestAutoCalibration:
    def test_promotion_without_explicit_calibration_still_recovers(
        self, bundle_dir, quick_config, laptop, calibration, make_engine, drive_traffic
    ):
        """With no operator-measured calibration, the controller estimates a
        uniform one from telemetry; the drift error must still recover (and
        the loop must quiesce instead of re-promoting forever)."""
        _, handle, engine = make_engine(bundle_dir)
        injector = DriftInjector(laptop, calibration)
        controller = AdaptationController(
            engine,
            quick_config,
            measurement_simulator=injector.simulator(seed=2),
            clock=lambda: 0.0,
        )
        observer = injector.simulator(seed=1)
        drive_traffic(engine, observer)
        report = controller.step()
        assert report.promoted
        assert report.calibration  # estimated, not operator-provided
        assert handle.settings["calibration"] == report.calibration
        drive_traffic(engine, observer, seed=4)
        for routine in report.promoted:
            telemetry = engine.telemetry.routines[routine]
            assert telemetry.mean_abs_rel_error < engine.telemetry.drift_threshold
        assert not controller.step().acted  # converged, no retrain loop

    def test_auto_calibrate_opt_out(
        self, bundle_dir, quick_config, laptop, calibration, make_engine, drive_traffic
    ):
        _, handle, engine = make_engine(bundle_dir)
        injector = DriftInjector(laptop, calibration)
        controller = AdaptationController(
            engine,
            replace(quick_config, auto_calibrate=False),
            measurement_simulator=injector.simulator(seed=2),
            clock=lambda: 0.0,
        )
        drive_traffic(engine, injector.simulator(seed=1))
        report = controller.step()
        assert report.promoted
        assert report.calibration == {}
        assert "calibration" not in handle.settings

    def test_default_measurement_simulator_tracks_reloads(
        self, loop, drive_traffic, drifted_observer
    ):
        _, handle, engine, controller, _ = loop
        controller._measurement_simulator = None
        assert controller.measurement_simulator is engine.source.simulator
        drive_traffic(engine, drifted_observer)
        controller.step()
        # After the promotion's hot reload the property follows the handle's
        # freshly rebuilt (calibrated) simulator.
        assert controller.measurement_simulator is engine.source.simulator


class TestDeterministicAdaptation:
    def test_same_seed_produces_bit_identical_promoted_bundles(
        self,
        adaptive_bundle,
        tmp_path,
        quick_config,
        calibration,
        laptop,
        make_engine,
        drive_traffic,
    ):
        """Satellite: seed -> DataGatherer/sampling makes runs reproducible."""
        from repro.core.persistence import save_bundle

        promoted = []
        for run in ("a", "b"):
            bundle_dir = save_bundle(
                adaptive_bundle, tmp_path / run / "bundle", bundle_version=1
            )
            _, handle, engine = make_engine(bundle_dir)
            injector = DriftInjector(laptop, calibration)
            drive_traffic(engine, injector.simulator(seed=1))
            controller = AdaptationController(
                engine,
                quick_config,
                measurement_simulator=injector.simulator(seed=2),
                calibration=calibration,
                clock=lambda: 0.0,
            )
            report = controller.step()
            assert report.promoted
            promoted.append(read_bundle_bytes(bundle_dir))
        assert promoted[0] == promoted[1]


class TestInMemorySources:
    def test_in_memory_engine_has_no_promoter(self, adaptive_bundle):
        engine = ServingEngine(adaptive_bundle)
        controller = AdaptationController(engine)
        assert controller.promoter is None
        with pytest.raises(RuntimeError, match="directory-backed"):
            controller.rollback()
        assert engine.reload_source() is False

    def test_explicit_promoter_overrides_discovery(self, bundle_dir, adaptive_bundle):
        engine = ServingEngine(adaptive_bundle)
        promoter = BundlePromoter(bundle_dir)
        controller = AdaptationController(engine, promoter=promoter)
        assert controller.promoter is promoter
