"""Fixtures for the adaptive-layer tests.

The adaptation tests drive a full serve -> drift -> retrain -> promote loop,
so they get their own session-scoped trained installation (saved per-test to
a fresh directory, since promotion mutates the bundle on disk).
"""

from __future__ import annotations

import pytest

from repro.adaptive import AdaptationConfig, DriftInjector, make_calibration
from repro.core.install import install_adsala
from repro.core.persistence import save_bundle
from repro.serving.engine import ServingEngine
from repro.serving.registry import ModelRegistry
from repro.serving.telemetry import EngineTelemetry
from repro.serving.workload import generate_workload

#: Drift every adaptation test injects: a machine whose clock dropped 45 %
#: and whose synchronisation cost more than doubled.
CALIBRATION = make_calibration(clock=0.55, sync=2.5)


@pytest.fixture(scope="session")
def adaptive_bundle(laptop):
    """A two-routine installation reserved for the adaptation tests."""
    return install_adsala(
        platform=laptop,
        routines=["dgemm", "dsyrk"],
        n_samples=14,
        threads_per_shape=4,
        n_test_shapes=6,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=7,
    )


@pytest.fixture()
def bundle_dir(adaptive_bundle, tmp_path):
    """The adaptive bundle saved fresh to disk (promotion mutates it)."""
    return save_bundle(adaptive_bundle, tmp_path / "bundle", bundle_version=1)


@pytest.fixture()
def quick_config():
    """A small, fully deterministic adaptation policy."""
    return AdaptationConfig(
        seed=11,
        regather_shapes=10,
        regather_threads_per_shape=4,
        regather_test_shapes=6,
        candidate_models=("LinearRegression", "DecisionTree"),
        min_error_improvement=0.05,
        max_latency_regression=2.0,
        shadow_min_records=8,
    )


@pytest.fixture()
def calibration():
    """The drift every adaptation test injects."""
    return dict(CALIBRATION)


@pytest.fixture()
def make_engine():
    """Factory: serving engine over a freshly registered handle of a bundle dir."""

    def _make_engine(bundle_dir, drift_threshold=0.25, min_observations=20):
        registry = ModelRegistry()
        handle = registry.register(bundle_dir)
        engine = ServingEngine(
            handle,
            telemetry=EngineTelemetry(
                drift_threshold=drift_threshold, min_observations=min_observations
            ),
        )
        return registry, handle, engine

    return _make_engine


@pytest.fixture()
def drive_traffic():
    """Serve a skewed workload and feed observed runtimes back to telemetry."""

    def _drive_traffic(engine, observer, n_requests=200, seed=3, routines=None):
        routines = routines or ["dgemm", "dsyrk"]
        requests = generate_workload(
            routines, n_requests, distribution="skewed", seed=seed
        )
        plans = engine.plan_many(request.as_tuple() for request in requests)
        for plan in plans:
            engine.record_observation(
                plan, observer.time(plan.routine, plan.dims, plan.threads)
            )
        return plans

    return _drive_traffic


@pytest.fixture()
def drifted_observer(laptop):
    """Observed runtimes from the drifted machine (independent noise)."""
    return DriftInjector(laptop, CALIBRATION).simulator(seed=1)


@pytest.fixture()
def measurement_simulator(laptop):
    """Re-gather timing source on the drifted machine (its own noise draw)."""
    return DriftInjector(laptop, CALIBRATION).simulator(seed=2)
