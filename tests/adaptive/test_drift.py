"""Tests for platform calibration and synthetic drift injection."""

import pytest

from repro.adaptive.drift import DriftInjector, make_calibration
from repro.machine.topology import CALIBRATABLE_FIELDS, apply_calibration


class TestApplyCalibration:
    def test_scales_named_fields(self, laptop):
        drifted = apply_calibration(
            laptop, {"clock_ghz": 0.5, "sync_cost_per_thread": 2.0}
        )
        assert drifted.clock_ghz == pytest.approx(laptop.clock_ghz * 0.5)
        assert drifted.sync_cost_per_thread == pytest.approx(
            laptop.sync_cost_per_thread * 2.0
        )
        # Untouched fields carry over.
        assert drifted.flops_per_cycle == laptop.flops_per_cycle
        assert drifted.sockets == laptop.sockets

    def test_name_preserved_for_seeded_noise_alignment(self, laptop):
        drifted = apply_calibration(laptop, {"clock_ghz": 0.5})
        assert drifted.name == laptop.name

    def test_empty_calibration_is_identity(self, laptop):
        assert apply_calibration(laptop, {}) is laptop

    def test_unknown_field_rejected(self, laptop):
        with pytest.raises(ValueError, match="Unknown calibration field"):
            apply_calibration(laptop, {"sockets": 2.0})

    def test_non_positive_scale_rejected(self, laptop):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="must be positive"):
                apply_calibration(laptop, {"clock_ghz": bad})

    def test_every_calibratable_field_is_scalable(self, laptop):
        for field in CALIBRATABLE_FIELDS:
            drifted = apply_calibration(laptop, {field: 1.5})
            assert getattr(drifted, field) == pytest.approx(
                getattr(laptop, field) * 1.5
            )


class TestMakeCalibration:
    def test_maps_knobs_to_topology_fields(self):
        calibration = make_calibration(clock=0.7, sync=3.0)
        assert calibration == {
            "clock_ghz": 0.7,
            "sync_cost_per_thread": 3.0,
        }

    def test_identity_knobs_omitted(self):
        assert make_calibration(clock=1.0, bandwidth=1.0) == {}

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="Unknown drift knob"):
            make_calibration(turbo=2.0)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            make_calibration(clock=0.0)


class TestUniformTimeCalibration:
    def test_scales_simulated_times_uniformly(self, laptop):
        from repro.adaptive.drift import uniform_time_calibration
        from repro.machine.simulator import TimingSimulator
        from repro.machine.topology import apply_calibration

        ratio = 1.7
        base = TimingSimulator(laptop, seed=0)
        scaled = TimingSimulator(
            apply_calibration(laptop, uniform_time_calibration(ratio)), seed=0
        )
        dims = {"m": 512, "k": 256, "n": 1024}
        for threads in (1, 4, laptop.max_threads):
            observed_ratio = scaled.time("dgemm", dims, threads) / base.time(
                "dgemm", dims, threads
            )
            # First-order: a fixed per-call overhead component is not
            # calibratable, so allow a few percent of slack.
            assert observed_ratio == pytest.approx(ratio, rel=0.06)

    def test_identity_and_validation(self):
        from repro.adaptive.drift import uniform_time_calibration

        assert uniform_time_calibration(1.0) == {}
        with pytest.raises(ValueError, match="positive"):
            uniform_time_calibration(0.0)


class TestDriftInjector:
    def test_undrifted_injector(self, laptop):
        injector = DriftInjector(laptop)
        assert not injector.drifted
        assert injector.platform is laptop

    def test_slower_clock_means_slower_times(self, laptop, simulator):
        injector = DriftInjector(laptop, make_calibration(clock=0.5))
        assert injector.drifted
        drifted_sim = injector.simulator(seed=simulator.seed)
        dims = {"m": 512, "k": 512, "n": 512}
        slow = drifted_sim.time("dgemm", dims, 4)
        fast = simulator.time("dgemm", dims, 4)
        assert slow > fast

    def test_describe_is_json_friendly(self, laptop):
        description = DriftInjector(laptop, make_calibration(sync=2.0)).describe()
        assert description["platform"] == laptop.name
        assert description["drifted"] is True
        assert description["calibration"] == {"sync_cost_per_thread": 2.0}
