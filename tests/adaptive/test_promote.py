"""Tests for versioned bundle promotion, the audit trail and rollback."""

import json

import pytest

from repro.adaptive.promote import (
    ADAPTATION_LOG_FILE,
    AdaptationLog,
    BundlePromoter,
)
from repro.adaptive.regather import retrain_drifting_routines
from repro.core.persistence import (
    load_bundle,
    read_manifest,
    simulator_from_settings,
    verify_bundle,
)
from repro.serving.registry import ModelRegistry


@pytest.fixture()
def retrained(bundle_dir, measurement_simulator, quick_config):
    """One retrained dgemm installation to promote."""
    results = retrain_drifting_routines(
        measurement_simulator, ["dgemm"], {}, quick_config
    )
    return results["dgemm"].installation


def bundle_bytes(directory):
    """Manifest + model bytes of the version the manifest references."""
    manifest = read_manifest(directory)
    state = {"bundle.json": (directory / "bundle.json").read_bytes()}
    for routine, meta in manifest["routines"].items():
        model_file = meta["model_file"]
        state[model_file] = (directory / model_file).read_bytes()
    return state


class TestPromotion:
    def test_promote_bumps_version_and_stages_new_files(
        self, bundle_dir, retrained
    ):
        promoter = BundlePromoter(bundle_dir, clock=lambda: 1.0)
        old_model_bytes = (bundle_dir / "dgemm.model.pkl").read_bytes()
        new_version = promoter.promote({"dgemm": retrained})
        assert new_version == 2
        manifest = read_manifest(bundle_dir)
        assert manifest["bundle_version"] == 2
        meta = manifest["routines"]["dgemm"]
        assert meta["model_file"] == "dgemm.model.v2.pkl"
        # The old model file is untouched (still referenced by history).
        assert (bundle_dir / "dgemm.model.pkl").read_bytes() == old_model_bytes
        # Untouched routines keep their entries.
        assert manifest["routines"]["dsyrk"]["model_file"] == "dsyrk.model.pkl"
        assert verify_bundle(bundle_dir)["ok"]

    def test_promote_archives_current_version_first(self, bundle_dir, retrained):
        before = bundle_bytes(bundle_dir)
        promoter = BundlePromoter(bundle_dir, clock=lambda: 1.0)
        promoter.promote({"dgemm": retrained})
        archive = bundle_dir / "history" / "v1"
        assert archive.is_dir()
        for name, payload in before.items():
            assert (archive / name).read_bytes() == payload
        assert promoter.archived_versions() == [1]

    def test_promote_stamps_calibration_into_settings(
        self, bundle_dir, retrained, calibration, laptop
    ):
        promoter = BundlePromoter(bundle_dir, clock=lambda: 1.0)
        promoter.promote(
            {"dgemm": retrained}, settings_update={"calibration": calibration}
        )
        settings = read_manifest(bundle_dir)["settings"]
        assert settings["calibration"] == calibration
        simulator = simulator_from_settings(laptop, settings)
        assert simulator.platform.clock_ghz == pytest.approx(
            laptop.clock_ghz * calibration["clock_ghz"]
        )
        # load_bundle goes through the same path.
        assert load_bundle(bundle_dir).simulator.platform.clock_ghz == pytest.approx(
            simulator.platform.clock_ghz
        )

    def test_promote_unknown_routine_rejected(self, bundle_dir, retrained):
        promoter = BundlePromoter(bundle_dir)
        with pytest.raises(KeyError, match="not in the bundle"):
            promoter.promote({"sgemm": retrained})
        with pytest.raises(ValueError, match="must not be empty"):
            promoter.promote({})

    def test_registry_hot_reloads_promoted_bundle(self, bundle_dir, retrained):
        registry = ModelRegistry()
        handle = registry.register(bundle_dir)
        assert handle.bundle_version == 1
        handle.predictor("dgemm")  # materialise the lazy model
        BundlePromoter(bundle_dir, clock=lambda: 1.0).promote({"dgemm": retrained})
        report = registry.refresh()
        assert report == {handle.name: "reloaded"}
        assert handle.bundle_version == 2
        assert handle.loaded_routines == []  # stale lazy state dropped


class TestInterleavedReload:
    def test_reload_mid_promotion_sees_only_complete_states(
        self, bundle_dir, retrained, monkeypatch
    ):
        """A hot reload at the worst instant (between model staging and the
        manifest swap) must observe the *old* bundle, fully consistent."""
        import repro.core.persistence as persistence

        registry = ModelRegistry()
        handle = registry.register(bundle_dir)
        handle.predictor("dgemm")
        real_replace = persistence.os.replace
        observations = []

        def interleaving_replace(src, dst):
            if str(dst).endswith("bundle.json"):
                # The retrained model file is already on disk; the manifest
                # is not swapped yet.  A reload now must keep serving v1.
                registry.refresh()
                observations.append(
                    (handle.bundle_version, verify_bundle(bundle_dir)["ok"])
                )
                plan = handle.predictor("dgemm").plan({"m": 64, "k": 64, "n": 64})
                observations.append(plan.threads >= 1)
            real_replace(src, dst)

        monkeypatch.setattr(persistence.os, "replace", interleaving_replace)
        BundlePromoter(bundle_dir, clock=lambda: 1.0).promote({"dgemm": retrained})
        monkeypatch.undo()

        assert observations[0] == (1, True)
        assert observations[1] is True
        # After the swap the very next refresh serves v2, also consistent.
        assert registry.refresh() == {handle.name: "reloaded"}
        assert handle.bundle_version == 2
        assert verify_bundle(bundle_dir)["ok"]

    def test_partially_written_tmp_manifest_is_invisible(self, bundle_dir):
        (bundle_dir / "bundle.json.tmp").write_text('{"truncated": ')
        manifest = read_manifest(bundle_dir)
        assert manifest["bundle_version"] == 1
        registry = ModelRegistry()
        handle = registry.register(bundle_dir)
        assert not handle.is_stale()


class TestRollback:
    def test_rollback_restores_prior_version_byte_for_byte(
        self, bundle_dir, retrained
    ):
        before = bundle_bytes(bundle_dir)
        promoter = BundlePromoter(bundle_dir, clock=lambda: 1.0)
        promoter.promote({"dgemm": retrained})
        assert bundle_bytes(bundle_dir) != before
        restored = promoter.rollback()
        assert restored == 1
        assert bundle_bytes(bundle_dir) == before
        assert verify_bundle(bundle_dir)["ok"]

    def test_rollback_archives_current_for_roll_forward(
        self, bundle_dir, retrained
    ):
        promoter = BundlePromoter(bundle_dir, clock=lambda: 1.0)
        promoter.promote({"dgemm": retrained})
        promoted = bundle_bytes(bundle_dir)
        promoter.rollback()
        assert promoter.archived_versions() == [1, 2]
        promoter.rollback(to_version=2)
        assert bundle_bytes(bundle_dir) == promoted

    def test_superseded_staged_files_pruned_from_live_dir(
        self, bundle_dir, measurement_simulator, quick_config
    ):
        """A watch loop promoting repeatedly must not accumulate one staged
        model file per promotion; only the last two versions stay live."""
        from dataclasses import replace

        from repro.adaptive.regather import retrain_drifting_routines

        promoter = BundlePromoter(bundle_dir, clock=lambda: 1.0)
        for seed in (21, 22, 23):
            installation = retrain_drifting_routines(
                measurement_simulator,
                ["dgemm"],
                {},
                replace(quick_config, seed=seed),
            )["dgemm"].installation
            promoter.promote({"dgemm": installation})
        staged = sorted(p.name for p in bundle_dir.glob("dgemm.model.v*.pkl"))
        assert staged == ["dgemm.model.v3.pkl", "dgemm.model.v4.pkl"]
        # Every pruned version is still archived and restorable.
        assert promoter.archived_versions() == [1, 2, 3]
        promoter.rollback(to_version=2)
        assert read_manifest(bundle_dir)["routines"]["dgemm"]["model_file"] == (
            "dgemm.model.v2.pkl"
        )
        assert verify_bundle(bundle_dir)["ok"]

    def test_promotion_after_rollback_never_reuses_a_version(
        self, bundle_dir, retrained, measurement_simulator, quick_config
    ):
        """promote -> rollback -> promote must mint v3, keeping the archived
        v2 bytes (the advertised byte-for-byte guarantee) intact."""
        from dataclasses import replace

        from repro.adaptive.regather import retrain_drifting_routines

        promoter = BundlePromoter(bundle_dir, clock=lambda: 1.0)
        promoter.promote({"dgemm": retrained})
        v2_bytes = bundle_bytes(bundle_dir)
        promoter.rollback()
        # A different retrain (different seed) after the rollback.
        other = retrain_drifting_routines(
            measurement_simulator, ["dgemm"], {}, replace(quick_config, seed=99)
        )["dgemm"].installation
        new_version = promoter.promote({"dgemm": other})
        assert new_version == 3
        assert sorted(promoter.archived_versions()) == [1, 2]
        # Rolling back to v2 restores exactly what served as v2.
        promoter.rollback(to_version=2)
        assert bundle_bytes(bundle_dir) == v2_bytes

    def test_rollback_validation(self, bundle_dir, retrained):
        promoter = BundlePromoter(bundle_dir, clock=lambda: 1.0)
        with pytest.raises(ValueError, match="No archived version"):
            promoter.rollback()
        promoter.promote({"dgemm": retrained})
        with pytest.raises(ValueError, match="not archived"):
            promoter.rollback(to_version=7)
        with pytest.raises(ValueError, match="already at version"):
            promoter.rollback(to_version=2)


class TestAdaptationLog:
    def test_events_round_trip(self, tmp_path):
        log = AdaptationLog(tmp_path / ADAPTATION_LOG_FILE, clock=lambda: 42.0)
        log.append("drift_detected", routine="dgemm", state="drifting", error=0.3)
        log.append("promoted", routine="dgemm", state="promoted", to_version=2)
        events = log.events()
        assert [event["event"] for event in events] == [
            "drift_detected",
            "promoted",
        ]
        assert events[0]["ts"] == 42.0
        assert events[0]["details"] == {"error": 0.3}
        assert log.last_event(routine="dgemm")["event"] == "promoted"
        assert log.last_event(event="drift_detected")["details"]["error"] == 0.3
        assert log.per_routine_state()["dgemm"]["state"] == "promoted"

    def test_missing_log_is_empty(self, tmp_path):
        log = AdaptationLog(tmp_path / "absent.jsonl")
        assert log.events() == []
        assert log.last_event() is None
        assert log.per_routine_state() == {}

    def test_corrupt_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / ADAPTATION_LOG_FILE
        log = AdaptationLog(path, clock=lambda: 1.0)
        log.append("promoted", routine="dgemm", state="promoted")
        with open(path, "a") as handle:
            handle.write('{"event": "rolled_ba')  # crash mid-append
        log.append("rolled_back", state="rolled_back")
        with pytest.warns(RuntimeWarning, match="malformed JSONL"):
            events = log.events()
        assert [event["event"] for event in events] == ["promoted", "rolled_back"]

    def test_events_tolerate_unknown_fields(self, tmp_path):
        path = tmp_path / ADAPTATION_LOG_FILE
        with open(path, "w") as handle:
            handle.write(
                json.dumps(
                    {"event": "promoted", "routine": "dgemm", "operator": "oncall"}
                )
                + "\n"
            )
        assert AdaptationLog(path).per_routine_state()["dgemm"]["operator"] == (
            "oncall"
        )
