"""Tests for the budgeted, traffic-seeded re-gather + retrain campaign."""

import numpy as np
import pytest

from repro.adaptive.config import AdaptationConfig
from repro.adaptive.regather import (
    plan_regather_shapes,
    retrain_drifting_routines,
    sampler_settings_from_bundle,
)
from repro.core.sampling import DomainSampler
from repro.serving.telemetry import ShapeHistogram


def make_histogram(shapes, counts=None):
    histogram = ShapeHistogram()
    for i, dims in enumerate(shapes):
        repeats = counts[i] if counts else 1
        for _ in range(repeats):
            histogram.record(tuple(sorted(dims.items())))
    return histogram


class TestSamplerSettings:
    def test_extracts_and_renames_bundle_keys(self):
        settings = {
            "memory_cap_bytes": 1e8,
            "min_dim": 16,
            "max_dim": 2048,
            "sampling_scale": "log",
            "scrambled_sampling": False,
            "n_samples": 80,  # not a sampler knob
            "seed": 3,
        }
        assert sampler_settings_from_bundle(settings) == {
            "memory_cap_bytes": 1e8,
            "min_dim": 16,
            "max_dim": 2048,
            "scale": "log",
            "scrambled": False,
        }

    def test_none_values_skipped(self):
        assert sampler_settings_from_bundle({"max_dim": None}) == {}


class TestPlanRegatherShapes:
    def setup_method(self):
        self.sampler = DomainSampler("dgemm", seed=0)

    def test_budget_always_spent_in_full(self):
        histogram = make_histogram([{"m": 100, "k": 100, "n": 100}])
        rng = np.random.default_rng(0)
        shapes, n_traffic, n_fresh = plan_regather_shapes(
            self.sampler, histogram, 12, 0.5, 0.1, rng
        )
        assert len(shapes) == 12
        assert n_traffic + n_fresh == 12
        assert n_traffic == 6

    def test_empty_histogram_falls_back_to_fresh(self):
        rng = np.random.default_rng(0)
        shapes, n_traffic, n_fresh = plan_regather_shapes(
            self.sampler, ShapeHistogram(), 8, 0.75, 0.1, rng
        )
        assert (n_traffic, n_fresh) == (0, 8)
        assert len(shapes) == 8

    def test_traffic_seeded_shapes_stay_near_observed(self):
        observed = {"m": 300, "k": 400, "n": 500}
        histogram = make_histogram([observed])
        rng = np.random.default_rng(1)
        shapes, n_traffic, _ = plan_regather_shapes(
            self.sampler, histogram, 10, 1.0, 0.1, rng
        )
        assert n_traffic == 10
        for dims in shapes:
            for name, value in observed.items():
                assert 0.85 * value <= dims[name] <= 1.15 * value

    def test_zero_jitter_reproduces_observed_shapes(self):
        observed = {"m": 300, "k": 400, "n": 500}
        histogram = make_histogram([observed])
        rng = np.random.default_rng(1)
        shapes, _, _ = plan_regather_shapes(
            self.sampler, histogram, 4, 1.0, 0.0, rng
        )
        assert all(dims == observed for dims in shapes)

    def test_deterministic_given_rng_seed(self):
        histogram = make_histogram(
            [{"m": 300, "k": 400, "n": 500}, {"m": 64, "k": 64, "n": 64}],
            counts=[3, 1],
        )
        runs = []
        for _ in range(2):
            sampler = DomainSampler("dgemm", seed=0)
            rng = np.random.default_rng(42)
            shapes, *_ = plan_regather_shapes(sampler, histogram, 10, 0.5, 0.1, rng)
            runs.append(shapes)
        assert runs[0] == runs[1]

    def test_oversized_jittered_shape_replaced_by_fresh_sample(self):
        # A shape at the memory cap jittered upward no longer fits; the
        # budget must still be spent (replacement counts as fresh).
        sampler = DomainSampler("dgemm", seed=0)
        edge = sampler.max_dim
        histogram = make_histogram([{"m": edge, "k": edge, "n": edge}])
        rng = np.random.default_rng(5)
        shapes, n_traffic, n_fresh = plan_regather_shapes(
            sampler, histogram, 6, 1.0, 0.1, rng
        )
        assert len(shapes) == 6
        assert n_traffic + n_fresh == 6
        assert n_fresh >= 1


class TestRetrainDriftingRoutines:
    def test_empty_routines_is_noop(self, measurement_simulator, quick_config):
        assert (
            retrain_drifting_routines(measurement_simulator, [], {}, quick_config)
            == {}
        )

    def test_retrains_with_traffic_seeds(
        self,
        bundle_dir,
        drifted_observer,
        measurement_simulator,
        quick_config,
        make_engine,
        drive_traffic,
    ):
        _, handle, engine = make_engine(bundle_dir)
        drive_traffic(engine, drifted_observer)
        histograms = {
            routine: engine.telemetry.routines[routine].shapes
            for routine in ("dgemm", "dsyrk")
        }
        results = retrain_drifting_routines(
            measurement_simulator,
            ["dgemm", "dsyrk"],
            histograms,
            quick_config,
            sampler_settings=sampler_settings_from_bundle(handle.settings),
        )
        assert set(results) == {"dgemm", "dsyrk"}
        for routine, result in results.items():
            assert result.routine == routine
            assert result.installation.routine == routine
            assert result.n_traffic_shapes + result.n_fresh_shapes == 10
            assert result.n_traffic_shapes >= 1  # histogram was populated
            assert len(result.test_shapes) == 6
            assert len(result.dataset) >= 10  # at least one row per shape
            assert result.model_name in ("LinearRegression", "DecisionTree")

    def test_preprocessing_policy_follows_the_bundle(
        self, measurement_simulator, quick_config
    ):
        """A bundle installed without Yeo-Johnson must be retrained without it."""
        for use_yeo_johnson in (True, False):
            results = retrain_drifting_routines(
                measurement_simulator,
                ["dgemm"],
                {},
                quick_config,
                use_yeo_johnson=use_yeo_johnson,
            )
            pipeline = results["dgemm"].installation.predictor.pipeline
            assert pipeline.use_yeo_johnson is use_yeo_johnson

    def test_bit_identical_across_runs_and_backends(
        self,
        bundle_dir,
        laptop,
        quick_config,
        calibration,
        make_engine,
        drive_traffic,
    ):
        """Same seed -> bit-identical retrained datasets and models."""
        import pickle
        from dataclasses import replace

        from repro.adaptive.drift import DriftInjector

        snapshots = []
        for config in (
            quick_config,
            quick_config,
            replace(quick_config, n_jobs=2, parallel_backend="thread"),
        ):
            _, handle, engine = make_engine(bundle_dir)
            observer = DriftInjector(laptop, calibration).simulator(seed=1)
            drive_traffic(engine, observer)
            results = retrain_drifting_routines(
                DriftInjector(laptop, calibration).simulator(seed=2),
                ["dgemm"],
                {"dgemm": engine.telemetry.routines["dgemm"].shapes},
                config,
                sampler_settings=sampler_settings_from_bundle(handle.settings),
            )
            result = results["dgemm"]
            snapshots.append(
                (
                    result.dataset.to_dict(),
                    pickle.dumps(result.installation.predictor.model),
                    result.model_name,
                )
            )
        assert snapshots[0] == snapshots[1]  # reproducible
        assert snapshots[0] == snapshots[2]  # parallel == serial


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"regather_shapes": 1},
            {"regather_threads_per_shape": 0},
            {"regather_test_shapes": 0},
            {"traffic_fraction": 1.5},
            {"traffic_jitter": 1.0},
            {"eval_time_mode": "wrong"},
            {"min_error_improvement": 1.0},
            {"max_latency_regression": -0.1},
            {"shadow_min_records": 0},
            {"max_routines_per_step": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            AdaptationConfig(**kwargs)

    def test_candidate_models_normalised_to_tuple(self):
        config = AdaptationConfig(candidate_models=["Ridge"])
        assert config.candidate_models == ("Ridge",)
