"""Tests for the shadow evaluator's promotion criteria."""

import numpy as np
import pytest

from repro.adaptive.config import AdaptationConfig
from repro.adaptive.shadow import ShadowEvaluator
from repro.serving.telemetry import TrafficRecord


class _FakePipeline:
    n_features_out_ = 4


class _FakeModel:
    """Unknown estimator type -> evalcost falls back to a linear-like cost."""


class _FakePredictor:
    """Duck-typed stand-in for ThreadPredictor with a controllable bias.

    Predicts ``observed_fn(dims) * (1 + bias)`` for every candidate thread
    count, so the replay error equals ``|bias|`` exactly.
    """

    def __init__(self, candidate_threads, bias, name="fake"):
        self.candidate_threads = sorted(candidate_threads)
        self.bias = bias
        self.model_name = name
        self.pipeline = _FakePipeline()
        self.model = _FakeModel()

    def compile(self):
        return self

    def predict_runtimes_batch(self, dims_list):
        times = np.array([_true_time(dims) for dims in dims_list])
        grid = np.repeat(
            times.reshape(-1, 1), len(self.candidate_threads), axis=1
        )
        return grid * (1.0 + self.bias)


def _true_time(dims):
    return 1e-6 * dims["m"] * dims["n"]


def make_traffic(n=20, threads=4):
    rng = np.random.default_rng(0)
    records = []
    for _ in range(n):
        dims = {"m": int(rng.integers(64, 512)), "n": int(rng.integers(64, 512))}
        records.append(
            TrafficRecord(
                dims=dims,
                threads=threads,
                predicted=0.0,
                observed=_true_time(dims),
            )
        )
    return records


def evaluator(**kwargs):
    defaults = dict(min_error_improvement=0.1, shadow_min_records=8)
    defaults.update(kwargs)
    return ShadowEvaluator(AdaptationConfig(**defaults))


class TestShadowVerdicts:
    def test_accepts_clearly_better_candidate(self):
        live = _FakePredictor([1, 2, 4, 8], bias=0.5, name="live")
        candidate = _FakePredictor([1, 2, 4, 8], bias=0.05, name="cand")
        report = evaluator().evaluate("dgemm", live, candidate, make_traffic())
        assert report.accepted
        assert report.reasons == []
        assert report.live_error == pytest.approx(0.5)
        assert report.candidate_error == pytest.approx(0.05)
        assert report.error_improvement == pytest.approx(0.9)
        assert report.n_records == 20

    def test_rejects_insufficient_improvement(self):
        live = _FakePredictor([1, 2, 4, 8], bias=0.5)
        candidate = _FakePredictor([1, 2, 4, 8], bias=0.47)
        report = evaluator(min_error_improvement=0.2).evaluate(
            "dgemm", live, candidate, make_traffic()
        )
        assert not report.accepted
        assert any("error not improved" in reason for reason in report.reasons)

    def test_rejects_worse_candidate(self):
        live = _FakePredictor([1, 2, 4, 8], bias=0.1)
        candidate = _FakePredictor([1, 2, 4, 8], bias=0.4)
        report = evaluator().evaluate("dgemm", live, candidate, make_traffic())
        assert not report.accepted
        assert report.error_improvement < 0

    def test_rejects_insufficient_traffic(self):
        live = _FakePredictor([1, 2, 4, 8], bias=0.5)
        candidate = _FakePredictor([1, 2, 4, 8], bias=0.05)
        report = evaluator(shadow_min_records=8).evaluate(
            "dgemm", live, candidate, make_traffic(n=5)
        )
        assert not report.accepted
        assert any("insufficient traffic" in reason for reason in report.reasons)
        assert report.n_records == 5

    def test_records_at_unrankable_threads_excluded(self):
        live = _FakePredictor([1, 2, 4, 8], bias=0.5)
        candidate = _FakePredictor([1, 2, 4], bias=0.05)  # cannot rank 8 threads
        traffic = make_traffic(n=20, threads=8)
        usable = evaluator().usable_records(candidate, traffic)
        assert usable == []
        report = evaluator().evaluate("dgemm", live, candidate, traffic)
        assert not report.accepted

    def test_details_are_json_serialisable(self):
        import json

        live = _FakePredictor([1, 2, 4, 8], bias=0.5)
        candidate = _FakePredictor([1, 2, 4, 8], bias=0.05)
        report = evaluator().evaluate("dgemm", live, candidate, make_traffic())
        details = json.loads(json.dumps(report.to_details()))
        assert details["accepted"] is True
        assert details["records"] == 20


class TestLatencyCriterion:
    def test_latency_regression_uses_real_predictors(self, small_bundle):
        """A slow ensemble must not replace a fast linear model silently."""
        from repro.core.evalcost import estimate_native_eval_time

        predictor = small_bundle.routines["dgemm"].predictor
        eval_time = estimate_native_eval_time(
            predictor.model,
            n_candidates=len(predictor.candidate_threads),
            n_features=int(predictor.pipeline.n_features_out_),
        )
        assert eval_time > 0  # the deterministic latency source exists

    def test_rejects_latency_regression(self, monkeypatch):
        live = _FakePredictor([1, 2, 4, 8], bias=0.5, name="live")
        candidate = _FakePredictor([1, 2, 4, 8], bias=0.05, name="cand")

        def fake_estimate(model, n_candidates, n_features):
            return 1e-6 if model is live.model else 5e-6

        monkeypatch.setattr(
            "repro.adaptive.shadow.estimate_native_eval_time", fake_estimate
        )
        report = evaluator(max_latency_regression=0.5).evaluate(
            "dgemm", live, candidate, make_traffic()
        )
        assert not report.accepted
        assert any("latency regressed" in reason for reason in report.reasons)
        assert report.latency_regression == pytest.approx(4.0)

    def test_wall_clock_is_reported_but_not_decisive(self):
        live = _FakePredictor([1, 2, 4, 8], bias=0.5)
        candidate = _FakePredictor([1, 2, 4, 8], bias=0.05)
        report = evaluator().evaluate("dgemm", live, candidate, make_traffic())
        assert report.live_plan_wall_us >= 0
        assert report.candidate_plan_wall_us >= 0
        assert report.accepted  # identical estimated costs -> no regression
