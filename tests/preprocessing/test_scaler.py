"""Tests for StandardScaler."""

import numpy as np
import pytest

from repro.preprocessing.scaler import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 3))
        out = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_not_divided_by_zero(self):
        X = np.column_stack([np.full(50, 7.0), np.arange(50, dtype=float)])
        out = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_transform_uses_training_statistics(self):
        X_train = np.random.default_rng(1).normal(0, 1, size=(100, 2))
        X_test = np.random.default_rng(2).normal(10, 5, size=(20, 2))
        scaler = StandardScaler().fit(X_train)
        out = scaler.transform(X_test)
        np.testing.assert_allclose(out, (X_test - scaler.mean_) / scaler.scale_)

    def test_inverse_transform_roundtrip(self):
        X = np.random.default_rng(3).uniform(-5, 5, size=(80, 4))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_without_mean(self):
        X = np.random.default_rng(4).normal(3, 2, size=(100, 2))
        out = StandardScaler(with_mean=False).fit_transform(X)
        assert abs(out.mean()) > 0.1  # mean not removed

    def test_without_std(self):
        X = np.random.default_rng(5).normal(0, 4, size=(100, 2))
        out = StandardScaler(with_std=False).fit_transform(X)
        assert out.std() > 2.0  # variance untouched

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_wrong_width_raises(self):
        scaler = StandardScaler().fit(np.zeros((10, 3)))
        with pytest.raises(ValueError, match="shape"):
            scaler.transform(np.zeros((10, 2)))

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            StandardScaler().fit(np.zeros((0, 3)))

    def test_config_roundtrip(self):
        X = np.random.default_rng(6).normal(2, 3, size=(60, 3))
        scaler = StandardScaler().fit(X)
        restored = StandardScaler.from_config(scaler.to_config())
        np.testing.assert_allclose(restored.transform(X), scaler.transform(X))
