"""Tests for the Local Outlier Factor implementation."""

import numpy as np
import pytest

from repro.preprocessing.outliers import LocalOutlierFactor


def clustered_data_with_outliers(seed=0):
    rng = np.random.default_rng(seed)
    cluster_a = rng.normal(0.0, 0.3, size=(80, 2))
    cluster_b = rng.normal(5.0, 0.3, size=(80, 2))
    outliers = np.array([[2.5, 2.5], [10.0, -5.0], [-6.0, 8.0]])
    X = np.vstack([cluster_a, cluster_b, outliers])
    outlier_indices = np.arange(160, 163)
    return X, outlier_indices


class TestLOF:
    def test_detects_planted_outliers(self):
        X, outlier_indices = clustered_data_with_outliers()
        lof = LocalOutlierFactor(n_neighbors=15, contamination=0.03)
        lof.fit(X)
        flagged = np.flatnonzero(~lof.inlier_mask_)
        assert set(outlier_indices).issubset(set(flagged))

    def test_inliers_have_score_near_one(self):
        X, outlier_indices = clustered_data_with_outliers()
        lof = LocalOutlierFactor(n_neighbors=15).fit(X)
        inlier_scores = np.delete(lof.lof_scores_, outlier_indices)
        assert np.median(inlier_scores) == pytest.approx(1.0, abs=0.15)

    def test_outliers_have_higher_scores_than_inliers(self):
        X, outlier_indices = clustered_data_with_outliers()
        lof = LocalOutlierFactor(n_neighbors=15).fit(X)
        outlier_scores = lof.lof_scores_[outlier_indices]
        inlier_scores = np.delete(lof.lof_scores_, outlier_indices)
        assert outlier_scores.min() > np.percentile(inlier_scores, 95)

    def test_fit_predict_convention(self):
        X, _ = clustered_data_with_outliers()
        labels = LocalOutlierFactor(n_neighbors=15).fit_predict(X)
        assert set(np.unique(labels)).issubset({-1, 1})

    def test_contamination_controls_flagged_fraction(self):
        X, _ = clustered_data_with_outliers()
        low = LocalOutlierFactor(n_neighbors=15, contamination=0.02).fit(X)
        high = LocalOutlierFactor(n_neighbors=15, contamination=0.2).fit(X)
        assert (~high.inlier_mask_).sum() >= (~low.inlier_mask_).sum()

    def test_absolute_threshold_override(self):
        X, _ = clustered_data_with_outliers()
        lof = LocalOutlierFactor(n_neighbors=15, threshold=1e9).fit(X)
        assert lof.inlier_mask_.all()

    def test_filter_removes_rows_consistently(self):
        X, outlier_indices = clustered_data_with_outliers()
        y = np.arange(len(X), dtype=float)
        lof = LocalOutlierFactor(n_neighbors=15, contamination=0.03)
        X_clean, y_clean = lof.filter(X, y)
        assert X_clean.shape[0] == y_clean.shape[0] == int(lof.inlier_mask_.sum())
        assert not set(outlier_indices) & set(y_clean.astype(int))

    def test_filter_length_mismatch(self):
        X, _ = clustered_data_with_outliers()
        with pytest.raises(ValueError, match="mismatched"):
            LocalOutlierFactor(n_neighbors=10).filter(X, np.zeros(5))

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="three samples"):
            LocalOutlierFactor().fit(np.zeros((2, 2)))

    def test_invalid_contamination(self):
        X, _ = clustered_data_with_outliers()
        with pytest.raises(ValueError, match="contamination"):
            LocalOutlierFactor(contamination=0.9).fit(X)

    def test_neighbors_clamped_to_dataset_size(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        lof = LocalOutlierFactor(n_neighbors=50).fit(X)
        assert lof.lof_scores_.shape == (10,)
