"""Tests for the composed preprocessing pipeline."""

import numpy as np
import pytest

from repro.preprocessing.pipeline import PreprocessingConfig, PreprocessingPipeline


def skewed_data(seed=0, n=250):
    rng = np.random.default_rng(seed)
    size = np.exp(rng.normal(4, 1.5, size=n))
    threads = rng.integers(1, 17, size=n).astype(float)
    redundant = size * 1.0001 + rng.normal(0, 1e-3, size=n)
    footprint = size * 3.0
    X = np.column_stack([size, threads, redundant, footprint])
    y = size / threads + 5.0 * threads + rng.normal(0, 1.0, size=n)
    return X, y


class TestFitTransform:
    def test_output_shapes_consistent(self):
        X, y = skewed_data()
        pipeline = PreprocessingPipeline(feature_names=["size", "nt", "copy", "fp"])
        Xt, yt = pipeline.fit_transform(X, y)
        assert Xt.shape[0] == yt.shape[0]
        assert Xt.shape[1] == pipeline.n_features_out_ <= X.shape[1]

    def test_correlated_features_removed(self):
        X, y = skewed_data()
        pipeline = PreprocessingPipeline(feature_names=["size", "nt", "copy", "fp"])
        pipeline.fit_transform(X, y)
        # size, copy and fp are nearly identical up to scaling -> one survives.
        assert pipeline.n_features_out_ == 2
        assert "nt" in pipeline.kept_feature_names_

    def test_outliers_removed_on_fit_only(self):
        X, y = skewed_data()
        # Plant an extreme outlier row.
        X[0] = [1e9, 1.0, 1e9, 3e9]
        pipeline = PreprocessingPipeline(lof_contamination=0.05)
        Xt, yt = pipeline.fit_transform(X, y)
        assert Xt.shape[0] < X.shape[0]
        assert pipeline.n_outliers_removed_ >= 1
        # transform() never drops rows.
        assert pipeline.transform(X).shape[0] == X.shape[0]

    def test_outlier_removal_can_be_disabled(self):
        X, y = skewed_data()
        pipeline = PreprocessingPipeline(remove_outliers=False)
        Xt, yt = pipeline.fit_transform(X, y)
        assert Xt.shape[0] == X.shape[0]
        assert pipeline.n_outliers_removed_ == 0

    def test_without_yeo_johnson_uses_plain_scaler(self):
        X, y = skewed_data()
        pipeline = PreprocessingPipeline(use_yeo_johnson=False, remove_outliers=False)
        Xt, _ = pipeline.fit_transform(X, y)
        np.testing.assert_allclose(Xt.mean(axis=0), 0.0, atol=1e-9)

    def test_yeo_johnson_reduces_feature_skew(self):
        from scipy.stats import skew

        X, y = skewed_data()
        with_yj = PreprocessingPipeline(use_yeo_johnson=True, remove_outliers=False)
        without_yj = PreprocessingPipeline(use_yeo_johnson=False, remove_outliers=False)
        Xt_yj, _ = with_yj.fit_transform(X, y)
        Xt_raw, _ = without_yj.fit_transform(X, y)
        # The exponential "size" feature is column 0 in both kept sets.
        assert abs(skew(Xt_yj[:, 0])) < abs(skew(Xt_raw[:, 0]))

    def test_default_feature_names_generated(self):
        X, y = skewed_data()
        pipeline = PreprocessingPipeline()
        pipeline.fit_transform(X, y)
        assert pipeline.feature_names == ["f0", "f1", "f2", "f3"]

    def test_feature_name_length_mismatch(self):
        X, y = skewed_data()
        with pytest.raises(ValueError, match="feature_names"):
            PreprocessingPipeline(feature_names=["a"]).fit_transform(X, y)

    def test_fit_without_target(self):
        X, _ = skewed_data()
        pipeline = PreprocessingPipeline(remove_outliers=False)
        Xt = pipeline.fit_transform(X)
        assert Xt.shape[0] == X.shape[0]

    def test_mismatched_target_length(self):
        X, y = skewed_data()
        with pytest.raises(ValueError, match="length"):
            PreprocessingPipeline().fit_transform(X, y[:-5])


class TestTransform:
    def test_single_row_transform(self):
        X, y = skewed_data()
        pipeline = PreprocessingPipeline()
        pipeline.fit_transform(X, y)
        out = pipeline.transform(X[0])
        assert out.shape == (1, pipeline.n_features_out_)

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            PreprocessingPipeline().transform(np.zeros((2, 4)))

    def test_deterministic_transform(self):
        X, y = skewed_data()
        pipeline = PreprocessingPipeline()
        pipeline.fit_transform(X, y)
        np.testing.assert_allclose(pipeline.transform(X[:10]), pipeline.transform(X[:10]))


class TestConfigRoundtrip:
    def test_roundtrip_preserves_transform(self):
        X, y = skewed_data()
        pipeline = PreprocessingPipeline(feature_names=["size", "nt", "copy", "fp"])
        pipeline.fit_transform(X, y)
        config = pipeline.to_config()
        restored = PreprocessingPipeline.from_config(config)
        np.testing.assert_allclose(restored.transform(X[:20]), pipeline.transform(X[:20]))

    def test_roundtrip_through_dict(self):
        X, y = skewed_data()
        pipeline = PreprocessingPipeline(use_yeo_johnson=False)
        pipeline.fit_transform(X, y)
        config_dict = pipeline.to_config().to_dict()
        restored = PreprocessingPipeline.from_config(PreprocessingConfig.from_dict(config_dict))
        np.testing.assert_allclose(restored.transform(X[:5]), pipeline.transform(X[:5]))

    def test_unfitted_to_config_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            PreprocessingPipeline().to_config()
