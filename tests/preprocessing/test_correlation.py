"""Tests for correlation-based feature pruning."""

import numpy as np
import pytest

from repro.preprocessing.correlation import CorrelationFilter


def correlated_data(seed=0, n=300):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=n)
    independent = rng.normal(size=n)
    noisy_copy = base + rng.normal(0, 0.01, size=n)       # |r| ~ 1 with base
    scaled_copy = 3.0 * base + 5.0                         # |r| = 1 with base
    return np.column_stack([base, independent, noisy_copy, scaled_copy])


class TestCorrelationFilter:
    def test_drops_redundant_features(self):
        X = correlated_data()
        filt = CorrelationFilter(threshold=0.8).fit(X)
        # Of the three mutually correlated columns (0, 2, 3) only one survives.
        survivors = set(filt.kept_indices_) & {0, 2, 3}
        assert len(survivors) == 1
        assert 1 in filt.kept_indices_  # the independent feature stays

    def test_transform_keeps_selected_columns(self):
        X = correlated_data()
        filt = CorrelationFilter(threshold=0.8)
        out = filt.fit_transform(X)
        assert out.shape == (X.shape[0], len(filt.kept_indices_))
        np.testing.assert_allclose(out, X[:, filt.kept_indices_])

    def test_uncorrelated_data_untouched(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(400, 5))
        filt = CorrelationFilter(threshold=0.8).fit(X)
        assert filt.kept_indices_ == list(range(5))
        assert filt.dropped_indices_ == []

    def test_victim_has_larger_total_correlation(self):
        # Column 0 ("hub") correlates strongly with columns 1 and 2, which
        # correlate with each other only below the threshold.  The hub has the
        # larger total correlation and must be the one removed, after which no
        # redundant pair remains.
        rng = np.random.default_rng(5)
        base = rng.normal(size=2000)
        hub = base
        spoke_1 = base + rng.normal(0, 0.45, size=2000)
        spoke_2 = base + rng.normal(0, 0.45, size=2000)
        X = np.column_stack([hub, spoke_1, spoke_2])
        filt = CorrelationFilter(threshold=0.85).fit(X)
        assert filt.dropped_indices_ == [0]
        assert filt.kept_indices_ == [1, 2]

    def test_feature_names_carried_through(self):
        X = correlated_data()
        names = ["base", "independent", "copy1", "copy2"]
        filt = CorrelationFilter(threshold=0.8).fit(X, feature_names=names)
        assert "independent" in filt.kept_feature_names_
        assert len(filt.kept_feature_names_) == len(filt.kept_indices_)

    def test_constant_column_is_kept(self):
        rng = np.random.default_rng(2)
        X = np.column_stack([np.full(100, 3.0), rng.normal(size=100)])
        filt = CorrelationFilter(threshold=0.8).fit(X)
        assert 0 in filt.kept_indices_

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CorrelationFilter(threshold=0.0).fit(np.zeros((10, 2)))

    def test_feature_names_length_mismatch(self):
        with pytest.raises(ValueError, match="feature_names"):
            CorrelationFilter().fit(correlated_data(), feature_names=["a", "b"])

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            CorrelationFilter().transform(np.zeros((3, 3)))

    def test_transform_width_mismatch(self):
        filt = CorrelationFilter().fit(correlated_data())
        with pytest.raises(ValueError, match="shape"):
            filt.transform(np.zeros((5, 2)))

    def test_config_roundtrip(self):
        X = correlated_data()
        filt = CorrelationFilter(threshold=0.8).fit(X, feature_names=list("abcd"))
        restored = CorrelationFilter.from_config(filt.to_config())
        np.testing.assert_allclose(restored.transform(X), filt.transform(X))
        assert restored.kept_feature_names_ == filt.kept_feature_names_

    def test_stricter_threshold_drops_more(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=500)
        X = np.column_stack([base, base + rng.normal(0, 0.8, 500), rng.normal(size=500)])
        loose = CorrelationFilter(threshold=0.95).fit(X)
        strict = CorrelationFilter(threshold=0.5).fit(X)
        assert len(strict.dropped_indices_) >= len(loose.dropped_indices_)
