"""Tests for the flat-array / fused preprocessing exports."""

import numpy as np
import pytest

from repro.preprocessing.correlation import CorrelationFilter
from repro.preprocessing.pipeline import PreprocessingPipeline
from repro.preprocessing.power import (
    YeoJohnsonTransformer,
    yeo_johnson_transform,
    yeo_johnson_transform_matrix,
)
from repro.preprocessing.scaler import StandardScaler


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestYeoJohnsonMatrix:
    def test_matches_column_loop_mixed_signs(self, rng):
        X = rng.normal(scale=3.0, size=(120, 6))
        lambdas = np.array([0.0, 0.7, 2.0, -1.3, 1.0, 3.2])
        expected = np.column_stack(
            [yeo_johnson_transform(X[:, j], lam) for j, lam in enumerate(lambdas)]
        )
        assert np.array_equal(
            yeo_johnson_transform_matrix(X, lambdas), expected
        )

    def test_matches_column_loop_all_positive(self, rng):
        X = rng.uniform(0.0, 50.0, size=(80, 4))
        lambdas = np.array([0.0, 0.5, 1.5, -0.4])
        expected = np.column_stack(
            [yeo_johnson_transform(X[:, j], lam) for j, lam in enumerate(lambdas)]
        )
        assert np.array_equal(
            yeo_johnson_transform_matrix(X, lambdas), expected
        )

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            yeo_johnson_transform_matrix(rng.normal(size=(10, 3)), np.ones(4))

    def test_transformer_flat_state_reproduces_transform(self, rng):
        X = rng.uniform(1.0, 1e6, size=(150, 5))
        transformer = YeoJohnsonTransformer().fit(X)
        lambdas, shift, scale = transformer.flat_state()
        fused = (yeo_johnson_transform_matrix(X, lambdas) - shift) / scale
        assert np.array_equal(fused, transformer.transform(X))

    def test_flat_state_requires_fit(self):
        with pytest.raises(RuntimeError):
            YeoJohnsonTransformer().flat_state()


class TestScalerFlatState:
    def test_affine_reproduces_transform(self, rng):
        X = rng.normal(size=(60, 4))
        scaler = StandardScaler().fit(X)
        shift, scale = scaler.flat_state()
        assert np.array_equal((X - shift) / scale, scaler.transform(X))

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().flat_state()


class TestCorrelationMask:
    def test_keep_indices_and_mask_agree(self, rng):
        base = rng.normal(size=(100, 1))
        X = np.hstack([base, base * 2.0 + 1e-9, rng.normal(size=(100, 2))])
        filt = CorrelationFilter(threshold=0.8).fit(X)
        kept = filt.keep_indices()
        mask = filt.keep_mask()
        assert np.array_equal(np.flatnonzero(mask), kept)
        assert np.array_equal(sorted(filt.kept_indices_), kept)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            CorrelationFilter().keep_indices()


class TestFusedPipeline:
    @pytest.mark.parametrize("use_yeo_johnson", [True, False])
    def test_compile_matches_object_transform(self, rng, use_yeo_johnson):
        base = rng.uniform(1.0, 1e5, size=(200, 1))
        X = np.hstack(
            [
                base,
                base * 3.0,  # redundant: dropped by the correlation filter
                rng.uniform(1.0, 1e4, size=(200, 3)),
            ]
        )
        pipeline = PreprocessingPipeline(use_yeo_johnson=use_yeo_johnson)
        pipeline.fit_transform(X)
        fused = pipeline.compile()
        assert fused.n_features_out == pipeline.n_features_out_

        query = rng.uniform(1.0, 1e5, size=(37, 5))
        expected = pipeline.transform(query)
        assert np.array_equal(fused.transform(query), expected)
        assert np.array_equal(
            fused.transform_kept(query[:, fused.kept_indices]), expected
        )

    def test_roundtripped_config_compiles_identically(self, rng):
        X = rng.uniform(1.0, 1e4, size=(150, 4))
        pipeline = PreprocessingPipeline()
        pipeline.fit_transform(X)
        reloaded = PreprocessingPipeline.from_config(
            pipeline.to_config().to_dict()
        )
        query = rng.uniform(1.0, 1e4, size=(20, 4))
        assert np.array_equal(
            reloaded.compile().transform(query),
            pipeline.compile().transform(query),
        )
