"""Tests for the Yeo-Johnson power transform."""

import numpy as np
import pytest
from scipy import stats

from repro.preprocessing.power import (
    YeoJohnsonTransformer,
    estimate_lambda,
    yeo_johnson_inverse,
    yeo_johnson_transform,
)


class TestTransformFunction:
    def test_identity_at_lambda_one(self):
        x = np.array([-3.0, -1.0, 0.0, 1.0, 5.0])
        np.testing.assert_allclose(yeo_johnson_transform(x, 1.0), x, atol=1e-12)

    def test_log_branch_at_lambda_zero(self):
        x = np.array([0.0, 1.0, 9.0])
        np.testing.assert_allclose(yeo_johnson_transform(x, 0.0), np.log1p(x))

    def test_negative_branch_at_lambda_two(self):
        x = np.array([-1.0, -0.5])
        np.testing.assert_allclose(yeo_johnson_transform(x, 2.0), -np.log1p(-x))

    def test_matches_scipy_positive_values(self):
        x = np.linspace(0.1, 50.0, 40)
        for lmbda in (-0.5, 0.0, 0.7, 1.8, 2.5):
            np.testing.assert_allclose(
                yeo_johnson_transform(x, lmbda), stats.yeojohnson(x, lmbda), rtol=1e-10
            )

    def test_matches_scipy_mixed_sign_values(self):
        x = np.linspace(-5.0, 5.0, 41)
        for lmbda in (-1.0, 0.0, 0.5, 2.0, 3.0):
            np.testing.assert_allclose(
                yeo_johnson_transform(x, lmbda), stats.yeojohnson(x, lmbda), rtol=1e-10
            )

    def test_monotone_in_x(self):
        x = np.sort(np.random.default_rng(0).normal(0, 3, size=100))
        for lmbda in (-0.5, 0.0, 1.0, 2.4):
            transformed = yeo_johnson_transform(x, lmbda)
            assert np.all(np.diff(transformed) >= -1e-12)

    @pytest.mark.parametrize("lmbda", [-1.0, 0.0, 0.5, 1.0, 2.0, 3.0])
    def test_inverse_roundtrip(self, lmbda):
        x = np.linspace(-4.0, 8.0, 60)
        transformed = yeo_johnson_transform(x, lmbda)
        np.testing.assert_allclose(yeo_johnson_inverse(transformed, lmbda), x, atol=1e-8)


class TestLambdaEstimation:
    def test_close_to_scipy_mle(self):
        rng = np.random.default_rng(0)
        x = np.exp(rng.normal(0, 1, size=500))  # strongly right-skewed
        ours = estimate_lambda(x)
        theirs = stats.yeojohnson_normmax(x)
        assert ours == pytest.approx(theirs, abs=0.05)

    def test_constant_feature_returns_one(self):
        assert estimate_lambda(np.full(20, 3.0)) == 1.0

    def test_reduces_skewness(self):
        rng = np.random.default_rng(1)
        x = np.exp(rng.normal(0, 1.5, size=400))
        lmbda = estimate_lambda(x)
        transformed = yeo_johnson_transform(x, lmbda)
        assert abs(stats.skew(transformed)) < abs(stats.skew(x)) / 2


class TestTransformer:
    def test_output_is_standardised(self):
        rng = np.random.default_rng(2)
        X = np.column_stack([np.exp(rng.normal(size=300)), rng.uniform(1, 100, 300)])
        transformer = YeoJohnsonTransformer()
        out = transformer.fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_without_standardisation(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 10, size=(100, 2))
        transformer = YeoJohnsonTransformer(standardize=False)
        out = transformer.fit_transform(X)
        assert not np.allclose(out.mean(axis=0), 0.0, atol=1e-3)

    def test_transform_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            YeoJohnsonTransformer().transform(np.zeros((2, 2)))

    def test_wrong_width_raises(self):
        X = np.random.default_rng(0).uniform(1, 5, size=(50, 3))
        transformer = YeoJohnsonTransformer().fit(X)
        with pytest.raises(ValueError, match="shape"):
            transformer.transform(X[:, :2])

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(4)
        X = np.column_stack([np.exp(rng.normal(size=200)), rng.normal(5, 2, 200)])
        transformer = YeoJohnsonTransformer()
        out = transformer.fit_transform(X)
        np.testing.assert_allclose(transformer.inverse_transform(out), X, rtol=1e-6, atol=1e-6)

    def test_config_roundtrip(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(0.5, 50, size=(120, 4))
        transformer = YeoJohnsonTransformer().fit(X)
        restored = YeoJohnsonTransformer.from_config(transformer.to_config())
        np.testing.assert_allclose(restored.transform(X), transformer.transform(X))

    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match="two samples"):
            YeoJohnsonTransformer().fit(np.ones((1, 3)))
