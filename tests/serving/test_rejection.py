"""Structured unknown-routine rejection at serving intake."""

import pytest

from repro.obs.collectors import collect_serving_stats
from repro.obs.metrics import MetricsRegistry
from repro.routines.catalog import UnknownRoutineError
from repro.serving.engine import ServingEngine
from repro.serving.fallback import UnservableRoutineError, default_runtime_chain
from repro.serving.frontend import ShardedFrontend


class TestEngineRejection:
    def test_submit_unknown_routine_raises_structured_error(self, serving_bundle):
        engine = ServingEngine(serving_bundle)
        with pytest.raises(UnknownRoutineError) as excinfo:
            engine.submit("dnotaroutine", m=10, k=10, n=10)
        assert excinfo.value.routine == "dnotaroutine"
        assert "dgemm" in excinfo.value.known_keys
        assert "registered routine keys" in str(excinfo.value)

    def test_rejections_counted_in_stats(self, serving_bundle):
        engine = ServingEngine(serving_bundle)
        assert engine.stats()["rejected_unknown_routine"] == 0
        for _ in range(3):
            with pytest.raises(UnknownRoutineError):
                engine.plan("dbogus", m=10, k=10, n=10)
        assert engine.stats()["rejected_unknown_routine"] == 3
        # valid traffic does not count
        engine.plan("dgemm", m=64, k=64, n=64)
        assert engine.stats()["rejected_unknown_routine"] == 3

    def test_rejection_exported_as_metric(self, serving_bundle):
        engine = ServingEngine(serving_bundle)
        with pytest.raises(UnknownRoutineError):
            engine.plan("dbogus", m=10, k=10, n=10)
        registry = MetricsRegistry()
        collect_serving_stats(registry, engine.stats())
        rendered = registry.render_prometheus()
        assert "adsala_rejected_unknown_routine_total 1" in rendered


class TestFrontendRejection:
    def test_frontend_counts_rejections(self, serving_bundle):
        frontend = ShardedFrontend.from_bundle(serving_bundle, n_shards=2)
        with frontend:
            with pytest.raises(UnknownRoutineError):
                frontend.submit("dbogus", m=10, k=10, n=10)
            stats = frontend.stats()
            assert stats["rejected_unknown_routine"] == 1
            # the rejection never consumed an admission slot
            assert stats["admission"]["submitted"] == 0


class TestFallbackChainMessage:
    def test_unservable_error_names_catalog_keys(self, serving_bundle):
        chain = default_runtime_chain()

        class _Empty:
            routines = {}

        with pytest.raises(UnservableRoutineError) as excinfo:
            chain.resolve("dgemm", _Empty())
        message = str(excinfo.value)
        assert "registered routine keys" in message
        assert "dsyrk" in message
