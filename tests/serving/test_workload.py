"""Tests for workload generation and JSONL round-tripping."""

from collections import Counter

import pytest

from repro.blas.api import parse_routine
from repro.serving.workload import (
    WorkloadRequest,
    generate_workload,
    load_workload,
    save_workload,
)


class TestGeneration:
    def test_uniform_properties(self):
        workload = generate_workload(
            ["dgemm", "dsyrk"], 64, "uniform", seed=0, min_dim=32, max_dim=128
        )
        assert len(workload) == 64
        assert {request.routine for request in workload} == {"dgemm", "dsyrk"}
        for request in workload:
            _, _, spec = parse_routine(request.routine)
            assert set(request.dims) == set(spec.dim_names)
            assert all(32 <= value <= 128 for value in request.dims.values())

    def test_cycling_repeats_pool(self):
        workload = generate_workload(["dgemm"], 20, "cycling", seed=1, pool_size=4)
        distinct = {tuple(sorted(request.dims.items())) for request in workload}
        assert len(distinct) == 4
        assert workload[0] == workload[4] == workload[8]

    def test_skewed_concentrates_mass(self):
        workload = generate_workload(["dgemm", "dsyrk"], 400, "skewed", seed=2)
        counts = Counter(
            (request.routine, tuple(sorted(request.dims.items())))
            for request in workload
        )
        top_share = counts.most_common(1)[0][1] / len(workload)
        assert top_share > 0.10  # Zipf head far above the uniform share

    def test_deterministic_per_seed(self):
        first = generate_workload(["dgemm"], 16, "uniform", seed=9)
        second = generate_workload(["dgemm"], 16, "uniform", seed=9)
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError, match="distribution"):
            generate_workload(["dgemm"], 4, "bursty")
        with pytest.raises(ValueError):
            generate_workload([], 4)
        with pytest.raises(ValueError):
            generate_workload(["dgemm"], 0)

    def test_routine_names_normalized(self):
        workload = generate_workload(["GEMM"], 4, seed=0)
        assert all(request.routine == "dgemm" for request in workload)


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        workload = generate_workload(["dgemm", "dsyrk"], 12, "skewed", seed=3)
        path = save_workload(tmp_path / "requests.jsonl", workload)
        assert load_workload(path) == workload

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        request = WorkloadRequest("dgemm", {"m": 1, "k": 2, "n": 3})
        path.write_text(request.to_json() + "\n\n" + request.to_json() + "\n")
        assert load_workload(path) == [request, request]

    def test_invalid_line_reports_position_in_strict_mode(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"routine": "dgemm", "dims": {"m": 1}}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_workload(path, strict=True)

    def test_malformed_line_skipped_with_warning_by_default(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        good = WorkloadRequest("dgemm", {"m": 1, "k": 2, "n": 3})
        path.write_text(good.to_json() + "\nnot json\n" + good.to_json() + "\n")
        with pytest.warns(RuntimeWarning, match=":2:.*malformed"):
            requests = load_workload(path)
        assert requests == [good, good]

    def test_missing_fields_skipped_with_warning(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        good = WorkloadRequest("dgemm", {"m": 1, "k": 2, "n": 3})
        path.write_text(
            '{"routine": "dgemm"}\n'           # no dims
            + good.to_json() + "\n"
            + '{"dims": {"m": 1}}\n'           # no routine
            + '{"routine": "dgemm", "dims": [1, 2]}\n'  # dims not an object
        )
        with pytest.warns(RuntimeWarning):
            requests = load_workload(path)
        assert requests == [good]
        with pytest.raises(ValueError, match=":1:"):
            load_workload(path, strict=True)

    def test_non_object_line_skipped(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        good = WorkloadRequest("dgemm", {"m": 1, "k": 2, "n": 3})
        path.write_text('[1, 2, 3]\n' + good.to_json() + "\n")
        with pytest.warns(RuntimeWarning, match="not a JSON object"):
            assert load_workload(path) == [good]

    def test_unknown_fields_ignored(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            '{"routine": "dgemm", "dims": {"m": 1, "k": 2, "n": 3},'
            ' "request_id": 17, "ts": 1e9}\n'
        )
        assert load_workload(path) == [
            WorkloadRequest("dgemm", {"m": 1, "k": 2, "n": 3})
        ]


class TestJsonlHelpers:
    def test_append_and_read_round_trip(self, tmp_path):
        from repro.serving.workload import append_jsonl, read_jsonl

        path = tmp_path / "events.jsonl"
        append_jsonl(path, {"event": "a"})
        append_jsonl(path, {"event": "b", "n": 2})
        rows = list(read_jsonl(path))
        assert rows == [(1, {"event": "a"}), (2, {"event": "b", "n": 2})]

    def test_append_repairs_missing_trailing_newline(self, tmp_path):
        from repro.serving.workload import append_jsonl, read_jsonl

        path = tmp_path / "events.jsonl"
        append_jsonl(path, {"event": "a"})
        with open(path, "a") as handle:
            handle.write('{"event": "tru')  # crash mid-append
        append_jsonl(path, {"event": "b"})
        with pytest.warns(RuntimeWarning, match="malformed"):
            rows = [row for _, row in read_jsonl(path)]
        assert rows == [{"event": "a"}, {"event": "b"}]
