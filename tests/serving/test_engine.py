"""Tests for the micro-batching serving engine.

The headline guarantee: a micro-batch produces *exactly* the plans a
sequential ``AdsalaRuntime.plan()`` loop would have produced on the same
bundle — same thread choices, same predicted/baseline times.
"""

import threading

import pytest

from repro.core.runtime import AdsalaRuntime
from repro.serving.engine import ServingEngine
from repro.serving.fallback import default_runtime_chain
from repro.serving.telemetry import EngineTelemetry
from repro.serving.workload import generate_workload


def _scalar_reference(bundle, workload, use_cache):
    runtime = AdsalaRuntime(bundle)
    return [
        runtime.plan(request.routine, use_cache=use_cache, **request.dims)
        for request in workload
    ]


class TestEquivalenceWithScalarPlan:
    @pytest.mark.parametrize("distribution", ["uniform", "cycling", "skewed"])
    def test_thread_choices_and_times_match_uncached(
        self, clear_caches, distribution
    ):
        bundle = clear_caches
        workload = generate_workload(
            ["dgemm", "dsyrk"], 48, distribution=distribution, seed=11
        )
        scalar = _scalar_reference(bundle, workload, use_cache=False)
        engine = ServingEngine(bundle, max_batch_size=16, use_cache=False)
        batched = engine.plan_many(request.as_tuple() for request in workload)
        assert len(batched) == len(scalar)
        for scalar_plan, batched_plan in zip(scalar, batched):
            assert batched_plan.routine == scalar_plan.routine
            assert batched_plan.dims == scalar_plan.dims
            assert batched_plan.threads == scalar_plan.threads
            assert batched_plan.predicted_time == scalar_plan.predicted_time
            assert batched_plan.baseline_time == scalar_plan.baseline_time

    def test_cache_flags_match_on_cycling_workload(self, clear_caches):
        # Distinct shapes stay below the LRU capacity, so the scalar loop
        # and the batched path must agree on every from_cache flag too.
        bundle = clear_caches
        workload = generate_workload(
            ["dgemm", "dsyrk"], 40, distribution="cycling", seed=5, pool_size=6
        )
        scalar = _scalar_reference(bundle, workload, use_cache=True)
        for installation in bundle.routines.values():
            installation.predictor.clear_cache()
        engine = ServingEngine(bundle, max_batch_size=8, use_cache=True)
        batched = engine.plan_many(request.as_tuple() for request in workload)
        assert [p.from_cache for p in batched] == [p.from_cache for p in scalar]
        assert [p.threads for p in batched] == [p.threads for p in scalar]

    def test_single_plan_micro_batch_of_one(self, clear_caches):
        bundle = clear_caches
        engine = ServingEngine(bundle)
        first = engine.plan("dgemm", m=256, k=128, n=64)
        second = engine.plan("dgemm", m=256, k=128, n=64)
        assert not first.from_cache
        assert second.from_cache
        assert second.threads == first.threads


class TestBatching:
    def test_submission_order_preserved(self, clear_caches):
        engine = ServingEngine(clear_caches, max_batch_size=4)
        workload = generate_workload(["dgemm", "dsyrk"], 10, seed=2)
        for request in workload:
            engine.submit(request.routine, **request.dims)
        assert engine.n_pending == 10
        plans = engine.flush()
        assert engine.n_pending == 0
        assert len(plans) == len(workload)  # one plan per request, none dropped
        for request, plan in zip(workload, plans):
            assert plan.dims == request.dims

    def test_max_batch_size_splits_queue(self, clear_caches):
        engine = ServingEngine(clear_caches, max_batch_size=4)
        for request in generate_workload(["dgemm"], 10, seed=3):
            engine.submit(request.routine, **request.dims)
        engine.flush()
        assert engine.telemetry.n_batches == 3
        assert engine.telemetry.batch_sizes.max == 4

    def test_invalid_requests_fail_at_submit(self, clear_caches):
        engine = ServingEngine(clear_caches)
        with pytest.raises(ValueError):
            engine.submit("dgemm", m=0, k=10, n=10)
        with pytest.raises(ValueError):
            engine.submit("dgemm", m=10)  # missing dims
        assert engine.n_pending == 0

    def test_invalid_batch_size(self, clear_caches):
        with pytest.raises(ValueError):
            ServingEngine(clear_caches, max_batch_size=0)


class TestFallbackIntegration:
    def test_cross_precision_recorded_on_plan(self, clear_caches):
        engine = ServingEngine(clear_caches)
        plan = engine.plan("sgemm", m=64, k=64, n=64)
        assert plan.routine == "dgemm"
        assert plan.fallback_from == "sgemm"
        assert plan.policy == "cross-precision"

    def test_heuristic_last_resort(self, clear_caches, laptop):
        engine = ServingEngine(clear_caches)
        plan = engine.plan("dtrsm", m=100, n=50)
        assert plan.policy == "max-threads"
        assert plan.threads == laptop.max_threads
        assert plan.predicted_time == plan.baseline_time
        assert plan.estimated_speedup == pytest.approx(1.0)

    def test_runtime_chain_rejects_unknown(self, clear_caches):
        engine = ServingEngine(clear_caches, fallback=default_runtime_chain())
        engine.submit("dsymm", m=10, n=10)
        with pytest.raises(KeyError):
            engine.flush()

    def test_mixed_batch_with_fallbacks(self, clear_caches):
        engine = ServingEngine(clear_caches, max_batch_size=8)
        engine.submit("dgemm", m=64, k=64, n=64)
        engine.submit("sgemm", m=64, k=64, n=64)
        engine.submit("strmm", m=32, n=32)
        plans = engine.flush()
        assert len(plans) == 3  # every submitted request answered
        assert [p.policy for p in plans] == [
            "installed", "cross-precision", "max-threads",
        ]


class TestTelemetryIntegration:
    def test_drift_flags_reinstall_candidate(self, clear_caches):
        engine = ServingEngine(
            clear_caches,
            telemetry=EngineTelemetry(drift_threshold=0.25, min_observations=5),
        )
        plans = engine.plan_many(
            request.as_tuple()
            for request in generate_workload(["dgemm"], 8, seed=4)
        )
        for plan in plans:
            engine.record_observation(plan, plan.predicted_time * 2.0)
        assert engine.reinstall_candidates() == ["dgemm"]

    def test_accurate_observations_do_not_flag(self, clear_caches):
        engine = ServingEngine(
            clear_caches,
            telemetry=EngineTelemetry(drift_threshold=0.25, min_observations=5),
        )
        plans = engine.plan_many(
            request.as_tuple()
            for request in generate_workload(["dgemm"], 8, seed=4)
        )
        for plan in plans:
            engine.record_observation(plan, plan.predicted_time * 1.01)
        assert engine.reinstall_candidates() == []

    def test_stats_shape(self, clear_caches):
        engine = ServingEngine(clear_caches, max_batch_size=8)
        engine.plan_many(
            request.as_tuple()
            for request in generate_workload(["dgemm", "dsyrk"], 12, seed=9)
        )
        stats = engine.stats()
        assert stats["requests"] == 12
        assert stats["batches"] == 2
        assert stats["batch_size_limit"] == 8
        assert set(stats["routines"]) <= {"dgemm", "dsyrk"}
        assert stats["cache"]["model_evaluations"] >= 1
        assert stats["fallback_chain"].startswith("installed")


class TestEngineOverRegistryHandle:
    def test_plans_match_in_memory_bundle(self, clear_caches, saved_bundle_dir):
        from repro.serving.registry import BundleHandle

        bundle = clear_caches
        workload = generate_workload(["dgemm", "dsyrk"], 24, seed=13)
        memory_engine = ServingEngine(bundle, use_cache=False)
        memory_plans = memory_engine.plan_many(r.as_tuple() for r in workload)
        handle_engine = ServingEngine(BundleHandle(saved_bundle_dir), use_cache=False)
        handle_plans = handle_engine.plan_many(r.as_tuple() for r in workload)
        for memory_plan, handle_plan in zip(memory_plans, handle_plans):
            assert handle_plan.threads == memory_plan.threads
            assert handle_plan.predicted_time == memory_plan.predicted_time


def _clone_predictor(predictor, cache_capacity):
    from repro.core.predictor import ThreadPredictor

    return ThreadPredictor(
        routine=predictor.routine,
        pipeline=predictor.pipeline,
        model=predictor.model,
        candidate_threads=predictor.candidate_threads,
        model_name=predictor.model_name,
        cache_capacity=cache_capacity,
    )


class TestPlanBatchExactEquivalence:
    """plan_batch must replay plan()'s cache timeline exactly — flags,
    counters and final cache contents — even under eviction pressure."""

    def test_eviction_pressure_matches_sequential(self, serving_bundle):
        base = serving_bundle.routines["dgemm"].predictor
        # 6 unique shapes cycling through a capacity-4 cache: repeats are
        # separated by enough distinct shapes that they land as misses.
        shapes = [{"m": 32 * (i + 1), "k": 64, "n": 48} for i in range(6)]
        workload = (shapes * 5)[:24]

        sequential = _clone_predictor(base, cache_capacity=4)
        expected = [sequential.plan(dims) for dims in workload]

        batched = _clone_predictor(base, cache_capacity=4)
        actual = batched.plan_batch(workload)

        assert [p.threads for p in actual] == [p.threads for p in expected]
        assert [p.from_cache for p in actual] == [p.from_cache for p in expected]
        assert any(not p.from_cache for p in actual[6:])  # evictions did occur
        assert batched.cache_info()["hits"] == sequential.cache_info()["hits"]
        assert batched.cache_info()["misses"] == sequential.cache_info()["misses"]
        assert list(batched._cache) == list(sequential._cache)

    def test_uncached_duplicates_not_marked_cached(self, serving_bundle):
        base = serving_bundle.routines["dgemm"].predictor
        predictor = _clone_predictor(base, cache_capacity=8)
        dims = {"m": 100, "k": 100, "n": 100}
        plans = predictor.plan_batch([dims, dims, dims], use_cache=False)
        assert [p.from_cache for p in plans] == [False, False, False]
        assert predictor.n_model_evaluations == 1  # still deduplicated

    def test_uncached_final_cache_matches_sequential(self, serving_bundle):
        base = serving_bundle.routines["dgemm"].predictor
        shapes = [{"m": 16 * (i + 1), "k": 32, "n": 32} for i in range(5)]
        workload = shapes + shapes[:2]

        sequential = _clone_predictor(base, cache_capacity=3)
        for dims in workload:
            sequential.plan(dims, use_cache=False)
        batched = _clone_predictor(base, cache_capacity=3)
        batched.plan_batch(workload, use_cache=False)
        assert list(batched._cache) == list(sequential._cache)


class TestPlanQueueIndependence:
    def test_plan_does_not_consume_pending_queue(self, clear_caches):
        engine = ServingEngine(clear_caches)
        engine.submit("dsyrk", n=96, k=48)
        plan = engine.plan("dgemm", m=64, k=64, n=64)
        assert plan.routine == "dgemm"
        assert engine.n_pending == 1
        queued = engine.flush()
        assert len(queued) == 1
        assert queued[0].routine == "dsyrk"
        assert queued[0].dims == {"n": 96, "k": 48}

    def test_use_cache_override_is_call_local(self, clear_caches):
        engine = ServingEngine(clear_caches, use_cache=True)
        engine.plan("dgemm", m=64, k=64, n=64)
        uncached = engine.plan("dgemm", use_cache=False, m=64, k=64, n=64)
        assert not uncached.from_cache  # override honoured for this call
        assert engine.use_cache is True  # engine default untouched
        cached = engine.plan("dgemm", m=64, k=64, n=64)
        assert cached.from_cache


class TestPerRoutineCacheStats:
    def test_cache_statistics_per_routine_hit_rate(self, clear_caches):
        # Predictor counters are cumulative per bundle, so measure deltas.
        before = clear_caches.predictor("dgemm").cache_info()
        engine = ServingEngine(clear_caches, max_batch_size=8)
        dims = {"m": 96, "k": 96, "n": 96}
        engine.plan("dgemm", **dims)  # miss
        engine.plan("dgemm", **dims)  # hit
        engine.plan("dgemm", **dims)  # hit
        stats = engine.cache_statistics()
        per_routine = stats["routines"]["dgemm"]
        assert per_routine["misses"] - before["misses"] == 1
        assert per_routine["hits"] - before["hits"] == 2
        probes = per_routine["hits"] + per_routine["misses"]
        assert per_routine["hit_rate"] == pytest.approx(per_routine["hits"] / probes)
        assert stats["cache_hits"] == per_routine["hits"]

    def test_permuted_dims_hit_same_cache_entry(self, clear_caches):
        engine = ServingEngine(clear_caches, max_batch_size=8)
        first = engine.plan("dgemm", m=64, k=96, n=128)
        second = engine.plan("dgemm", n=128, m=64, k=96)
        assert first.from_cache is False
        assert second.from_cache is True
        assert second.threads == first.threads

    def test_stats_snapshot_reports_per_routine_hit_rate(self, clear_caches):
        engine = ServingEngine(clear_caches, max_batch_size=8)
        dims = {"m": 80, "k": 80, "n": 80}
        engine.plan("dgemm", **dims)
        engine.plan("dgemm", **dims)
        snapshot = engine.stats()
        routine_stats = snapshot["routines"]["dgemm"]
        assert routine_stats["cache_hit_rate"] == pytest.approx(0.5)
        # The predictor-side counters are cumulative for the bundle (other
        # tests share it), so only assert internal consistency there.
        cache_stats = snapshot["cache"]["routines"]["dgemm"]
        probes = cache_stats["hits"] + cache_stats["misses"]
        assert cache_stats["hit_rate"] == pytest.approx(cache_stats["hits"] / probes)


class TestConcurrency:
    """One engine driven by several threads: the coarse lock must keep every
    plan, counter and cache update exact — no lost or duplicated requests."""

    def test_concurrent_plan_calls_match_sequential(self, clear_caches):
        bundle = clear_caches
        workload = generate_workload(
            ["dgemm", "dsyrk"], 400, distribution="cycling", seed=23, pool_size=10
        )
        reference = _scalar_reference(bundle, workload, use_cache=False)
        for installation in bundle.routines.values():
            installation.predictor.clear_cache()

        engine = ServingEngine(bundle)
        results = [None] * len(workload)
        n_threads = 4

        def worker(offset):
            for slot in range(offset, len(workload), n_threads):
                request = workload[slot]
                results[slot] = engine.plan(request.routine, **request.dims)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert None not in results  # no plan lost
        assert engine.telemetry.n_requests == len(workload)  # none duplicated
        for slot, (plan, expected) in enumerate(zip(results, reference)):
            assert plan.routine == expected.routine, slot
            assert plan.dims == expected.dims, slot
            assert plan.threads == expected.threads, slot
            assert plan.predicted_time == expected.predicted_time, slot
            assert plan.baseline_time == expected.baseline_time, slot

    def test_concurrent_submit_and_flush_answer_every_request_once(
        self, clear_caches
    ):
        engine = ServingEngine(clear_caches, max_batch_size=8)
        workload = generate_workload(
            ["dgemm", "dsyrk"], 300, distribution="cycling", seed=27, pool_size=8
        )
        collected = []
        collected_lock = threading.Lock()
        done_submitting = threading.Event()

        def submitter(offset):
            for slot in range(offset, len(workload), 2):
                request = workload[slot]
                engine.submit(request.routine, **request.dims)

        def flusher():
            while not done_submitting.is_set() or engine.n_pending:
                plans = engine.flush()
                if plans:
                    with collected_lock:
                        collected.extend(plans)

        submitters = [
            threading.Thread(target=submitter, args=(index,)) for index in range(2)
        ]
        flushers = [threading.Thread(target=flusher) for _ in range(2)]
        for thread in flushers + submitters:
            thread.start()
        for thread in submitters:
            thread.join()
        done_submitting.set()
        for thread in flushers:
            thread.join()

        assert engine.n_pending == 0
        assert len(collected) == len(workload)  # exactly one plan per request
        expected = sorted(tuple(sorted(r.dims.items())) for r in workload)
        answered = sorted(tuple(sorted(p.dims.items())) for p in collected)
        assert answered == expected


class TestCacheStatisticsAfterHotReload:
    """Regression: a routine removed by a hot reload must not crash stats."""

    def _reduced_bundle(self, serving_bundle, keep):
        from repro.core.install import InstallationBundle

        return InstallationBundle(
            platform=serving_bundle.platform,
            simulator=serving_bundle.simulator,
            routines={key: serving_bundle.routines[key] for key in keep},
            candidate_names=list(serving_bundle.candidate_names),
            settings=dict(serving_bundle.settings),
        )

    def test_reload_prunes_touched_routines(
        self, serving_bundle, saved_bundle_dir
    ):
        from repro.core.persistence import save_bundle
        from repro.serving.registry import BundleHandle

        engine = ServingEngine(BundleHandle(saved_bundle_dir))
        engine.plan("dgemm", m=64, k=64, n=64)
        engine.plan("dsyrk", n=64, k=32)
        save_bundle(
            self._reduced_bundle(serving_bundle, ["dgemm"]),
            saved_bundle_dir,
            bundle_version=2,
        )
        assert engine.reload_source()
        stats = engine.cache_statistics()  # crashed with KeyError pre-fix
        assert "dsyrk" not in stats["routines"]
        assert engine.stats()["cache"]["cache_hits"] >= 0

    def test_reload_behind_engines_back_marks_unloadable(
        self, serving_bundle, saved_bundle_dir
    ):
        # A ModelRegistry.refresh() reloads the handle directly, without
        # engine.reload_source(), so the engine's touched set goes stale:
        # the stats loop must skip-with-marker instead of raising.
        from repro.core.persistence import save_bundle
        from repro.serving.registry import BundleHandle

        handle = BundleHandle(saved_bundle_dir)
        engine = ServingEngine(handle)
        engine.plan("dsyrk", n=64, k=32)
        save_bundle(
            self._reduced_bundle(serving_bundle, ["dgemm"]),
            saved_bundle_dir,
            bundle_version=2,
        )
        assert handle.reload()
        stats = engine.cache_statistics()
        assert stats["routines"]["dsyrk"] == {"unloadable": True}
        assert stats["cache_hits"] == 0
