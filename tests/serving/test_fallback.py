"""Tests for the composable fallback-policy chain."""

import pytest

from repro.serving.fallback import (
    CrossPrecisionPolicy,
    FallbackChain,
    InstalledPrecisionPolicy,
    MaxThreadsPolicy,
    UnservableRoutineError,
    default_runtime_chain,
    default_serving_chain,
)


class TestPolicies:
    def test_installed_precision_hit(self, serving_bundle):
        resolution = InstalledPrecisionPolicy().resolve("dgemm", serving_bundle)
        assert resolution.key == "dgemm"
        assert resolution.fallback_from is None
        assert not resolution.heuristic

    def test_installed_precision_miss(self, serving_bundle):
        assert InstalledPrecisionPolicy().resolve("sgemm", serving_bundle) is None

    def test_cross_precision_substitutes(self, serving_bundle):
        resolution = CrossPrecisionPolicy().resolve("sgemm", serving_bundle)
        assert resolution.key == "dgemm"
        assert resolution.fallback_from == "sgemm"
        assert resolution.policy == "cross-precision"

    def test_cross_precision_miss(self, serving_bundle):
        assert CrossPrecisionPolicy().resolve("ssymm", serving_bundle) is None

    def test_max_threads_always_resolves(self, serving_bundle):
        resolution = MaxThreadsPolicy().resolve("strsm", serving_bundle)
        assert resolution.heuristic
        assert resolution.key == "strsm"
        assert resolution.fallback_from is None


class TestChain:
    def test_first_resolution_wins(self, serving_bundle):
        chain = default_serving_chain()
        assert chain.resolve("dgemm", serving_bundle).policy == "installed"
        assert chain.resolve("sgemm", serving_bundle).policy == "cross-precision"
        assert chain.resolve("dtrmm", serving_bundle).policy == "max-threads"

    def test_runtime_chain_raises_for_unknown(self, serving_bundle):
        chain = default_runtime_chain()
        with pytest.raises(UnservableRoutineError):
            chain.resolve("dsymm", serving_bundle)

    def test_error_is_a_key_error(self, serving_bundle):
        with pytest.raises(KeyError):
            default_runtime_chain().resolve("dsymm", serving_bundle)

    def test_error_names_policies_and_available(self, serving_bundle):
        with pytest.raises(UnservableRoutineError) as excinfo:
            default_runtime_chain().resolve("dsymm", serving_bundle)
        message = str(excinfo.value)
        assert "installed" in message and "cross-precision" in message
        assert "dgemm" in message

    def test_normalizes_bare_routine_names(self, serving_bundle):
        resolution = default_runtime_chain().resolve("gemm", serving_bundle)
        assert resolution.key == "dgemm"

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FallbackChain([])

    def test_describe_lists_order(self):
        assert default_serving_chain().describe() == (
            "installed -> cross-precision -> max-threads"
        )

    def test_custom_composition(self, serving_bundle):
        # A chain without cross-precision must not substitute precisions.
        chain = FallbackChain([InstalledPrecisionPolicy(), MaxThreadsPolicy()])
        resolution = chain.resolve("sgemm", serving_bundle)
        assert resolution.policy == "max-threads"
        assert resolution.key == "sgemm"
