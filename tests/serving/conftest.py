"""Fixtures for the serving-layer tests.

The serving tests get their own trained bundle (instead of the suite-wide
``small_bundle``) so cache-state assertions are not perturbed by other test
files planning against the shared fixture.
"""

from __future__ import annotations

import pytest

from repro.core.install import install_adsala
from repro.core.persistence import save_bundle


@pytest.fixture(scope="session")
def serving_bundle(laptop):
    """A two-routine installation reserved for the serving tests."""
    return install_adsala(
        platform=laptop,
        routines=["dgemm", "dsyrk"],
        n_samples=14,
        threads_per_shape=4,
        n_test_shapes=6,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=7,
    )


@pytest.fixture()
def clear_caches(serving_bundle):
    """Start and end the test with empty per-routine prediction caches."""
    for installation in serving_bundle.routines.values():
        installation.predictor.clear_cache()
    yield serving_bundle
    for installation in serving_bundle.routines.values():
        installation.predictor.clear_cache()


@pytest.fixture()
def saved_bundle_dir(serving_bundle, tmp_path):
    """The serving bundle saved to disk at the current schema."""
    return save_bundle(serving_bundle, tmp_path / "bundle", bundle_version=1)
