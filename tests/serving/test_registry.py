"""Tests for the versioned model registry: lazy loading and hot reload."""

import json

import pytest

from repro.core.persistence import SCHEMA_VERSION, save_bundle
from repro.serving.registry import BundleHandle, ModelRegistry


class TestBundleHandleLazyLoading:
    def test_manifest_only_at_construction(self, saved_bundle_dir):
        handle = BundleHandle(saved_bundle_dir)
        assert handle.loaded_routines == []
        assert handle.installed_routines == ["dgemm", "dsyrk"]

    def test_membership_does_not_load(self, saved_bundle_dir):
        handle = BundleHandle(saved_bundle_dir)
        assert "dgemm" in handle.routines
        assert "dsymm" not in handle.routines
        assert len(handle.routines) == 2
        assert handle.loaded_routines == []

    def test_predictor_loads_one_routine_only(self, saved_bundle_dir):
        handle = BundleHandle(saved_bundle_dir)
        predictor = handle.predictor("dgemm")
        assert handle.loaded_routines == ["dgemm"]
        assert predictor.routine == "dgemm"
        # Second access reuses the cached installation.
        assert handle.predictor("dgemm") is predictor

    def test_unknown_routine_raises_key_error(self, saved_bundle_dir):
        handle = BundleHandle(saved_bundle_dir)
        with pytest.raises(KeyError, match="not installed"):
            handle.predictor("dsymm")

    def test_routines_mapping_yields_installations(self, saved_bundle_dir):
        handle = BundleHandle(saved_bundle_dir)
        installation = handle.routines["dsyrk"]
        assert installation.routine == "dsyrk"
        assert handle.loaded_routines == ["dsyrk"]

    def test_versions_exposed(self, saved_bundle_dir):
        handle = BundleHandle(saved_bundle_dir)
        assert handle.schema_version == SCHEMA_VERSION
        assert handle.bundle_version == 1

    def test_verify_passthrough(self, saved_bundle_dir):
        assert BundleHandle(saved_bundle_dir).verify()["ok"]

    def test_describe(self, saved_bundle_dir):
        description = BundleHandle(saved_bundle_dir, name="prod").describe()
        assert description["name"] == "prod"
        assert description["platform"] == "laptop"
        assert description["routines"] == ["dgemm", "dsyrk"]


class TestHotReload:
    def test_fresh_handle_not_stale(self, saved_bundle_dir):
        handle = BundleHandle(saved_bundle_dir)
        assert not handle.is_stale()
        assert handle.reload() is False

    def test_rewrite_makes_handle_stale(self, serving_bundle, saved_bundle_dir):
        handle = BundleHandle(saved_bundle_dir)
        handle.predictor("dgemm")
        save_bundle(serving_bundle, saved_bundle_dir, bundle_version=2)
        assert handle.is_stale()
        assert handle.reload() is True
        assert handle.bundle_version == 2
        assert handle.loaded_routines == []  # lazy state dropped
        assert not handle.is_stale()

    def test_reload_serves_new_manifest(self, serving_bundle, saved_bundle_dir):
        handle = BundleHandle(saved_bundle_dir)
        manifest_path = saved_bundle_dir / "bundle.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["bundle_version"] = 9
        manifest_path.write_text(json.dumps(manifest))
        handle.reload()
        assert handle.bundle_version == 9


class TestModelRegistry:
    @pytest.fixture()
    def two_versions(self, serving_bundle, tmp_path):
        old = save_bundle(serving_bundle, tmp_path / "laptop-v1", bundle_version=1)
        new = save_bundle(serving_bundle, tmp_path / "laptop-v3", bundle_version=3)
        return old, new

    def test_register_and_get_by_name(self, saved_bundle_dir):
        registry = ModelRegistry()
        registry.register(saved_bundle_dir, name="prod")
        assert registry.names() == ["prod"]
        assert registry.get(name="prod").directory == saved_bundle_dir

    def test_unknown_name_raises(self, saved_bundle_dir):
        registry = ModelRegistry()
        registry.register(saved_bundle_dir)
        with pytest.raises(KeyError, match="No bundle named"):
            registry.get(name="nope")

    def test_highest_version_wins_per_platform(self, two_versions):
        registry = ModelRegistry()
        for directory in two_versions:
            registry.register(directory)
        assert registry.get(platform="laptop").bundle_version == 3

    def test_explicit_version_pin(self, two_versions):
        registry = ModelRegistry()
        for directory in two_versions:
            registry.register(directory)
        assert registry.get(platform="laptop", version=1).bundle_version == 1

    def test_missing_platform_raises(self, saved_bundle_dir):
        registry = ModelRegistry()
        registry.register(saved_bundle_dir)
        with pytest.raises(KeyError):
            registry.get(platform="gadi")

    def test_scan_root_discovers_bundles(self, serving_bundle, tmp_path):
        save_bundle(serving_bundle, tmp_path / "a", bundle_version=1)
        save_bundle(serving_bundle, tmp_path / "b", bundle_version=2)
        (tmp_path / "not-a-bundle").mkdir()
        registry = ModelRegistry(tmp_path)
        assert registry.names() == ["a", "b"]

    def test_refresh_reports_reloaded_added_removed(
        self, serving_bundle, tmp_path
    ):
        first = save_bundle(serving_bundle, tmp_path / "first", bundle_version=1)
        registry = ModelRegistry(tmp_path)
        assert registry.names() == ["first"]

        # Change the existing bundle, add a second, remove nothing yet.
        save_bundle(serving_bundle, first, bundle_version=2)
        save_bundle(serving_bundle, tmp_path / "second", bundle_version=1)
        report = registry.refresh()
        assert report == {"first": "reloaded", "second": "added"}
        assert registry.get(name="first").bundle_version == 2

        # Delete one manifest: the handle is dropped on the next refresh.
        (first / "bundle.json").unlink()
        report = registry.refresh()
        assert report["first"] == "removed"
        assert registry.names() == ["second"]

    def test_refresh_without_changes_is_empty(self, saved_bundle_dir):
        registry = ModelRegistry()
        registry.register(saved_bundle_dir)
        assert registry.refresh() == {}

    def test_refresh_does_not_duplicate_custom_named_bundle(
        self, serving_bundle, tmp_path
    ):
        # Regression: scan() guarded on handle *names*, so a bundle
        # registered under a custom name was re-registered under its
        # directory name by the next refresh()/scan() — two handles (and
        # two lazy model caches) for one bundle.
        directory = save_bundle(
            serving_bundle, tmp_path / "prod-bundle", bundle_version=1
        )
        registry = ModelRegistry()
        registry.register(directory, name="custom")
        registry.root = tmp_path
        assert registry.refresh() == {}
        assert registry.names() == ["custom"]

    def test_scan_skips_directories_registered_under_custom_name(
        self, serving_bundle, tmp_path
    ):
        directory = save_bundle(
            serving_bundle, tmp_path / "prod-bundle", bundle_version=1
        )
        registry = ModelRegistry()
        registry.register(directory, name="custom")
        assert registry.scan(tmp_path) == []
        assert registry.names() == ["custom"]

    def test_describe_lists_all(self, two_versions):
        registry = ModelRegistry()
        for directory in two_versions:
            registry.register(directory)
        rows = registry.describe()
        assert [row["bundle_version"] for row in rows] == [1, 3]


class TestReloadCrashSafety:
    def test_unreadable_manifest_keeps_previous_state(
        self, serving_bundle, tmp_path
    ):
        directory = save_bundle(serving_bundle, tmp_path / "bundle", bundle_version=1)
        registry = ModelRegistry()
        handle = registry.register(directory, name="prod")
        handle.predictor("dgemm")

        # Simulate a manifest caught mid-rewrite: refresh reports the error,
        # the handle keeps serving its previous state, loaded models intact.
        manifest_path = directory / "bundle.json"
        good_manifest = manifest_path.read_text()
        manifest_path.write_text("{ truncated")
        assert registry.refresh() == {"prod": "error"}
        assert handle.bundle_version == 1
        assert handle.loaded_routines == ["dgemm"]
        assert handle.predictor("dgemm").routine == "dgemm"

        # Once the write completes, the next refresh picks it up normally.
        import json as json_mod

        manifest = json_mod.loads(good_manifest)
        manifest["bundle_version"] = 2
        manifest_path.write_text(json_mod.dumps(manifest))
        assert registry.refresh() == {"prod": "reloaded"}
        assert handle.bundle_version == 2

    def test_save_bundle_leaves_no_temp_manifest(self, serving_bundle, tmp_path):
        directory = save_bundle(serving_bundle, tmp_path / "bundle")
        leftovers = [p.name for p in directory.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
