"""Tests for the seeded fault-injection harness and chaos equivalence.

The chaos extension of the PR 5/6 stress-equivalence suites: with worker
kills, frame corruption and shared-memory destruction injected mid-traffic
from a seeded schedule, the supervised frontend must still answer **every
request id exactly once**, each plan **bit-identical** to a sequential
single-engine replay — zero lost, zero duplicated, zero wrong.
"""

import threading

import pytest

from repro.serving import (
    FaultInjector,
    InjectedFault,
    RestartPolicy,
    ShardedFrontend,
    parse_fault_spec,
)
from repro.serving.engine import ServingEngine
from repro.serving.workload import generate_workload


def _plan_key(plan):
    """The deterministic fields of a plan (everything but from_cache)."""
    return (
        plan.routine,
        tuple(sorted(plan.dims.items())),
        plan.threads,
        plan.predicted_time,
        plan.baseline_time,
        plan.fallback_from,
        plan.policy,
    )


def _sequential_reference(bundle, workload):
    """One fresh single engine answering the stream back to back."""
    for installation in bundle.routines.values():
        installation.predictor.clear_cache()
    engine = ServingEngine(bundle)
    plans = engine.plan_many(request.as_tuple() for request in workload)
    for installation in bundle.routines.values():
        installation.predictor.clear_cache()
    return plans


def _chaos_policy():
    """Fast backoff; hang_timeout still far above worker spawn time."""
    return RestartPolicy(backoff_base=0.005, backoff_cap=0.02, hang_timeout=30.0)


class TestParseFaultSpec:
    def test_counts(self):
        assert parse_fault_spec("kill:3,hang:1") == {"kill": 3, "hang": 1}

    def test_bare_kind_means_one(self):
        assert parse_fault_spec("kill") == {"kill": 1}

    def test_repeated_kind_accumulates(self):
        assert parse_fault_spec("kill:2,kill:3") == {"kill": 5}

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind 'explode'"):
            parse_fault_spec("explode:1")

    def test_bad_count(self):
        with pytest.raises(ValueError, match="must be an integer"):
            parse_fault_spec("kill:lots")
        with pytest.raises(ValueError, match="non-negative"):
            parse_fault_spec("kill:-1")

    def test_empty_spec(self):
        with pytest.raises(ValueError, match="empty fault spec"):
            parse_fault_spec("  ,  ")


class TestSchedule:
    def test_same_seed_same_schedule(self):
        first = FaultInjector("kill:4,hang:2,slow:3", seed=13, horizon=50)
        second = FaultInjector("kill:4,hang:2,slow:3", seed=13, horizon=50)
        assert first.schedule() == second.schedule()
        assert len(first.schedule()) == 9

    def test_different_seed_different_schedule(self):
        base = FaultInjector("kill:6,slow:6", seed=1, horizon=200)
        other = FaultInjector("kill:6,slow:6", seed=2, horizon=200)
        assert base.schedule() != other.schedule()

    def test_warmup_protects_early_dispatches(self):
        injector = FaultInjector("kill:5", seed=3, horizon=20, warmup=4)
        assert min(injector.schedule()) >= 4

    def test_remaining_drains_as_faults_fire(self, clear_caches):
        injector = FaultInjector("slow:2", seed=0, horizon=2, warmup=0)
        frontend = ShardedFrontend.from_bundle(
            clear_caches, 1, injector=injector, max_batch_size=1
        )
        with frontend:
            for step in range(4):
                frontend.plan("dgemm", m=64 + step, k=32, n=16)
        assert injector.remaining == 0
        assert injector.snapshot()["injected"] == {"slow": 2}

    def test_unsupervised_thread_shard_surfaces_injected_fault(self, clear_caches):
        injector = FaultInjector("kill:1", seed=0, horizon=1, warmup=0)
        frontend = ShardedFrontend.from_bundle(
            clear_caches, 1, supervise=False, injector=injector
        )
        with frontend:
            future = frontend.submit("dgemm", m=64, k=64, n=64)
            with pytest.raises(InjectedFault, match="injected kill fault"):
                future.result(timeout=30)


class TestChaosEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_exactly_once_bit_identical_under_worker_kills(
        self, clear_caches, backend
    ):
        """4 clients, 2 shards, >=5 kills: zero lost/duplicated/wrong plans."""
        bundle = clear_caches
        n_clients, per_client = 4, 60
        workload = generate_workload(
            ["dgemm", "dsyrk"],
            n_clients * per_client,
            distribution="cycling",
            seed=37,
            pool_size=12,
        )
        reference = _sequential_reference(bundle, workload)

        injector = FaultInjector("kill:5", seed=11, horizon=25)
        frontend = ShardedFrontend.from_bundle(
            bundle,
            2,
            backend=backend,
            max_batch_size=4,  # many dispatches, so every kill fires
            injector=injector,
            restart_policy=_chaos_policy(),
        )
        results = [None] * len(workload)
        ids = [None] * len(workload)

        def client(client_index):
            slots = range(client_index, len(workload), n_clients)
            pending = []
            for slot in slots:
                request = workload[slot]
                pending.append(
                    (slot, frontend.submit(request.routine, **request.dims))
                )
            for slot, future in pending:
                results[slot] = future.result(timeout=120)
                ids[slot] = future.request_id

        with frontend:
            clients = [
                threading.Thread(target=client, args=(index,))
                for index in range(n_clients)
            ]
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join()
            stats = frontend.stats()

        # Every scheduled kill actually fired mid-traffic.
        supervision = stats["supervision"]
        assert supervision["injected"]["injected"] == {"kill": 5}
        assert supervision["failures"] >= 5
        assert supervision["restarts"] >= 1
        assert supervision["quarantined"] == []
        # Exactly one plan per request id: none lost, none duplicated.
        assert None not in results
        assert len(set(ids)) == len(workload)
        assert stats["admission"]["in_flight"] == 0
        assert stats["admission"]["shed"] == 0
        # Bit-identical to the sequential single-engine replay, per request.
        for slot in range(len(workload)):
            assert _plan_key(results[slot]) == _plan_key(reference[slot]), slot

    def test_plan_many_survives_kills(self, clear_caches):
        bundle = clear_caches
        workload = generate_workload(
            ["dgemm", "dsyrk"], 96, distribution="skewed", seed=41
        )
        reference = _sequential_reference(bundle, workload)
        injector = FaultInjector("kill:3", seed=19, horizon=12)
        frontend = ShardedFrontend.from_bundle(
            bundle,
            2,
            backend="process",
            max_batch_size=4,
            injector=injector,
            restart_policy=_chaos_policy(),
        )
        with frontend:
            plans = frontend.plan_many(
                request.as_tuple() for request in workload
            )
            snapshot = frontend.supervisor.snapshot()
        assert snapshot["injected"]["injected"] == {"kill": 3}
        assert [_plan_key(p) for p in plans] == [_plan_key(p) for p in reference]


class TestShmFault:
    def test_dead_segments_are_reexported_on_restart(self, clear_caches):
        injector = FaultInjector("shm:1", seed=5, horizon=6, warmup=1)
        frontend = ShardedFrontend.from_bundle(
            clear_caches,
            2,
            backend="process",
            max_batch_size=2,
            injector=injector,
            restart_policy=_chaos_policy(),
        )
        with frontend:
            for step in range(16):
                plan = frontend.plan("dgemm", m=64 + step, k=32, n=16)
                assert plan.threads >= 1
            export = frontend.shards[0]._export
            snapshot = frontend.supervisor.snapshot()
        assert snapshot["injected"]["injected"] == {"shm": 1}
        # The model segments died with the fault; recovery re-exported them
        # from the retained source before respawning the worker.
        assert export.n_reexports >= 1
        assert snapshot["restarts"] >= 1


class TestCorruptFault:
    def test_corrupted_frame_recovers_transparently(self, clear_caches):
        injector = FaultInjector("corrupt:1", seed=9, horizon=4, warmup=1)
        frontend = ShardedFrontend.from_bundle(
            clear_caches,
            1,
            backend="process",
            max_batch_size=2,
            injector=injector,
            restart_policy=_chaos_policy(),
        )
        with frontend:
            for step in range(10):
                assert frontend.plan("dgemm", m=64 + step, k=32, n=16).threads >= 1
            snapshot = frontend.supervisor.snapshot()
        assert snapshot["injected"]["injected"] == {"corrupt": 1}
        assert snapshot["failures"] >= 1
        assert snapshot["restarts"] >= 1
        assert snapshot["quarantined"] == []
