"""Tests for the concurrent sharded serving frontend.

The headline guarantee extends PR 2/3's equivalence tradition to
concurrency: whatever the shard count and client thread count, the frontend
produces **exactly one plan per request id**, and each plan is bit-identical
(routine, dims, threads, predicted/baseline times, fallback policy) to what
a sequential single-engine replay of the same stream would have produced.
Only ``from_cache`` flags may differ, because each shard warms its own LRU.
"""

import threading
import time

import pytest

from repro.serving.engine import ServingEngine
from repro.serving.frontend import (
    PlanFuture,
    QueueFullError,
    ShardedFrontend,
    shard_index,
)
from repro.serving.workload import generate_workload


def _plan_key(plan):
    """The deterministic fields of a plan (everything but from_cache)."""
    return (
        plan.routine,
        tuple(sorted(plan.dims.items())),
        plan.threads,
        plan.predicted_time,
        plan.baseline_time,
        plan.fallback_from,
        plan.policy,
    )


def _sequential_reference(bundle, workload):
    """One fresh single engine answering the stream back to back."""
    for installation in bundle.routines.values():
        installation.predictor.clear_cache()
    engine = ServingEngine(bundle)
    plans = engine.plan_many(request.as_tuple() for request in workload)
    for installation in bundle.routines.values():
        installation.predictor.clear_cache()
    return plans


class _GatedEngine(ServingEngine):
    """An engine whose batch processing blocks until a test opens the gate."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()

    def execute(self, requests):
        self.gate.wait(timeout=30)
        return super().execute(requests)


class TestRouting:
    def test_shard_index_deterministic_and_in_range(self):
        key = (("k", 128), ("m", 64), ("n", 32))
        first = shard_index("dgemm", key, 4)
        assert first == shard_index("dgemm", key, 4)
        assert 0 <= first < 4
        # Different shapes spread over shards (not all on one).
        indices = {
            shard_index("dgemm", (("k", k), ("m", 64), ("n", 32)), 4)
            for k in range(64, 64 + 64)
        }
        assert len(indices) > 1

    def test_same_shape_always_lands_on_same_shard(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, n_shards=3)
        with frontend:
            for _ in range(12):
                frontend.plan("dgemm", m=256, k=128, n=64)
        touched = [
            shard.engine.telemetry.n_requests for shard in frontend.shards
        ]
        assert sorted(touched) == [0, 0, 12]


class TestConcurrentStress:
    @pytest.mark.parametrize("distribution", ["cycling", "skewed"])
    def test_exactly_one_plan_per_request_id_matching_sequential(
        self, clear_caches, distribution
    ):
        """4 client threads x 1000 requests: no lost, duplicated or wrong plans."""
        bundle = clear_caches
        n_clients, per_client = 4, 1000
        workload = generate_workload(
            ["dgemm", "dsyrk"],
            n_clients * per_client,
            distribution=distribution,
            seed=29,
            pool_size=12,
        )
        reference = _sequential_reference(bundle, workload)

        frontend = ShardedFrontend.from_bundle(
            bundle, n_shards=2, max_pending=256
        )
        results = [None] * len(workload)
        ids = [None] * len(workload)

        def client(client_index):
            slots = range(client_index, len(workload), n_clients)
            pending = []
            for slot in slots:
                request = workload[slot]
                future = frontend.submit(request.routine, **request.dims)
                pending.append((slot, future))
            for slot, future in pending:
                results[slot] = future.result(timeout=60)
                ids[slot] = future.request_id

        with frontend:
            clients = [
                threading.Thread(target=client, args=(index,))
                for index in range(n_clients)
            ]
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join()
            stats = frontend.stats()

        # Exactly one plan per request id: none lost, none duplicated.
        assert None not in results
        assert len(set(ids)) == len(workload)
        assert stats["requests"] == len(workload)
        assert stats["admission"]["shed"] == 0
        assert stats["admission"]["in_flight"] == 0
        # Bit-identical to the sequential single-engine replay, per request.
        for slot, request in enumerate(workload):
            assert _plan_key(results[slot]) == _plan_key(reference[slot]), slot

    def test_plan_many_matches_sequential_in_order(self, clear_caches):
        bundle = clear_caches
        workload = generate_workload(
            ["dgemm", "dsyrk"], 120, distribution="skewed", seed=31
        )
        reference = _sequential_reference(bundle, workload)
        frontend = ShardedFrontend.from_bundle(bundle, n_shards=3)
        plans = frontend.plan_many(request.as_tuple() for request in workload)
        assert len(plans) == len(workload)
        assert [_plan_key(p) for p in plans] == [_plan_key(p) for p in reference]

    def test_concurrent_submit_and_plan_many(self, clear_caches):
        """The async and bulk paths interleave safely on the same shards."""
        bundle = clear_caches
        workload = generate_workload(
            ["dgemm", "dsyrk"], 200, distribution="cycling", seed=37, pool_size=10
        )
        reference = _sequential_reference(bundle, workload)
        frontend = ShardedFrontend.from_bundle(bundle, n_shards=2)
        with frontend:
            futures = [
                frontend.submit(request.routine, **request.dims)
                for request in workload[:100]
            ]
            bulk = frontend.plan_many(
                request.as_tuple() for request in workload[100:]
            )
            async_plans = [future.result(timeout=60) for future in futures]
        combined = async_plans + bulk
        assert [_plan_key(p) for p in combined] == [
            _plan_key(p) for p in reference
        ]


class TestAdmissionControl:
    def _gated_frontend(self, bundle, max_pending, backpressure):
        engine = _GatedEngine(bundle)
        frontend = ShardedFrontend(
            [engine], max_pending=max_pending, backpressure=backpressure
        )
        return frontend, engine

    def test_reject_mode_sheds_and_counts(self, clear_caches):
        frontend, engine = self._gated_frontend(
            clear_caches, max_pending=2, backpressure="reject"
        )
        with frontend:
            first = frontend.submit("dgemm", m=64, k=64, n=64)
            second = frontend.submit("dgemm", m=96, k=64, n=64)
            with pytest.raises(QueueFullError):
                frontend.submit("dgemm", m=128, k=64, n=64)
            assert frontend.n_shed == 1
            engine.gate.set()
            assert first.result(timeout=30).routine == "dgemm"
            assert second.result(timeout=30).routine == "dgemm"
            # Slots freed: admission accepts again.
            third = frontend.submit("dgemm", m=160, k=64, n=64)
            assert third.result(timeout=30).dims["m"] == 160
        stats = frontend.stats()
        assert stats["admission"]["shed"] == 1
        assert stats["admission"]["submitted"] == 3

    def test_block_mode_waits_for_a_slot(self, clear_caches):
        frontend, engine = self._gated_frontend(
            clear_caches, max_pending=1, backpressure="block"
        )
        with frontend:
            first = frontend.submit("dgemm", m=64, k=64, n=64)
            blocked_result = {}

            def blocked_submit():
                future = frontend.submit("dgemm", m=96, k=64, n=64)
                blocked_result["plan"] = future.result(timeout=30)

            thread = threading.Thread(target=blocked_submit)
            thread.start()
            time.sleep(0.05)
            assert thread.is_alive()  # still waiting on the admission slot
            assert "plan" not in blocked_result
            engine.gate.set()
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert blocked_result["plan"].dims["m"] == 96
            assert first.result(timeout=30).dims["m"] == 64
        assert frontend.n_shed == 0

    def test_invalid_requests_do_not_consume_slots(self, clear_caches):
        frontend, engine = self._gated_frontend(
            clear_caches, max_pending=1, backpressure="reject"
        )
        engine.gate.set()
        with frontend:
            with pytest.raises(ValueError):
                frontend.submit("dgemm", m=0, k=64, n=64)
            # The slot is still free: a valid submit succeeds immediately.
            assert frontend.submit("dgemm", m=64, k=64, n=64).result(
                timeout=30
            ).threads >= 1
        assert frontend.n_shed == 0


class TestLifecycleAndValidation:
    def test_close_answers_in_flight_then_rejects_new(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, n_shards=2)
        frontend.start()
        futures = [
            frontend.submit("dgemm", m=64 + 16 * i, k=64, n=64) for i in range(8)
        ]
        frontend.close()
        for future in futures:
            assert future.result(timeout=30) is not None
        with pytest.raises(RuntimeError):
            frontend.submit("dgemm", m=64, k=64, n=64)

    def test_shared_source_rejected(self, clear_caches):
        with pytest.raises(ValueError, match="own source"):
            ShardedFrontend([clear_caches, clear_caches])

    def test_bad_backpressure_and_bounds(self, clear_caches):
        with pytest.raises(ValueError):
            ShardedFrontend([clear_caches], backpressure="drop")
        with pytest.raises(ValueError):
            ShardedFrontend([clear_caches], max_pending=0)
        with pytest.raises(ValueError):
            ShardedFrontend([])
        with pytest.raises(ValueError):
            ShardedFrontend.from_bundle(clear_caches, n_shards=0)

    def test_future_carries_request_id(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, n_shards=1)
        with frontend:
            first = frontend.submit("dgemm", m=64, k=64, n=64)
            second = frontend.submit("dsyrk", n=64, k=32)
        assert isinstance(first, PlanFuture)
        assert second.request_id == first.request_id + 1


class TestMergedStatistics:
    def test_stats_merge_across_shards(self, clear_caches):
        bundle = clear_caches
        workload = generate_workload(
            ["dgemm", "dsyrk"], 160, distribution="skewed", seed=41
        )
        frontend = ShardedFrontend.from_bundle(bundle, n_shards=3)
        plans = frontend.plan_many(request.as_tuple() for request in workload)
        for plan in plans:
            frontend.record_observation(plan, plan.predicted_time * 1.1)
        stats = frontend.stats()
        assert stats["shards"] == 3
        assert stats["requests"] == len(workload)
        per_routine_plans = sum(
            entry["plans"] for entry in stats["routines"].values()
        )
        assert per_routine_plans == len(workload)
        observations = sum(
            entry["observations"] for entry in stats["routines"].values()
        )
        assert observations == len(workload)
        for entry in stats["routines"].values():
            assert entry["mean_abs_rel_error"] == pytest.approx(
                0.1 / 1.1, rel=1e-9
            )
        # The per-shard raw snapshots ride along and sum to the same totals.
        assert sum(s["requests_drained"] for s in stats["per_shard"]) == 0
        assert stats["batches"] == sum(
            shard.engine.telemetry.n_batches for shard in frontend.shards
        )

    def test_cache_statistics_merge(self, clear_caches):
        bundle = clear_caches
        workload = generate_workload(
            ["dgemm", "dsyrk"], 80, distribution="cycling", seed=43, pool_size=6
        )
        frontend = ShardedFrontend.from_bundle(bundle, n_shards=2)
        frontend.plan_many(request.as_tuple() for request in workload)
        merged = frontend.cache_statistics()
        assert merged["cache_hits"] + merged["cache_misses"] > 0
        for entry in merged["routines"].values():
            probes = entry["hits"] + entry["misses"]
            assert entry["hit_rate"] == pytest.approx(
                entry["hits"] / probes if probes else 0.0
            )
        assert merged["timing"]["capacity"] == sum(
            shard.engine.timing_cache_capacity for shard in frontend.shards
        )

    def test_fallback_observation_routed_to_planning_shard(self, clear_caches):
        # A fallback-served plan carries the *resolved* routine; its
        # observation must still land on the shard the request was routed
        # by (the requested key), i.e. the shard that planned it.
        frontend = ShardedFrontend.from_bundle(clear_caches, n_shards=3)
        with frontend:
            plan = frontend.plan("sgemm", m=64, k=64, n=64)
        assert plan.fallback_from == "sgemm"  # served by the dgemm model
        frontend.record_observation(plan, abs(plan.predicted_time) + 1.0)
        observations = [
            telemetry.n_observations
            for shard in frontend.shards
            for telemetry in [shard.engine.telemetry.routines.get("dgemm")]
            if telemetry is not None
        ]
        planned = [shard.engine.telemetry.n_requests for shard in frontend.shards]
        assert sum(observations) == 1
        assert planned[planned.index(1)] == 1  # exactly one shard planned it
        planning_shard = frontend.shards[planned.index(1)]
        assert (
            planning_shard.engine.telemetry.routines["dgemm"].n_observations == 1
        )

    def test_stats_report_backend_and_worker_identity(self, clear_caches):
        """Thread-backend stats name the backend, worker thread and pid."""
        import os

        frontend = ShardedFrontend.from_bundle(clear_caches, n_shards=2)
        with frontend:
            frontend.plan("dgemm", m=128, k=64, n=32)
            stats = frontend.stats()
        assert stats["backend"] == "thread"
        per_shard = stats["per_shard"]
        assert [entry["backend"] for entry in per_shard] == ["thread", "thread"]
        assert [entry["worker"] for entry in per_shard] == [
            "adsala-shard-0",
            "adsala-shard-1",
        ]
        # Thread shards execute in this very process.
        assert [entry["pid"] for entry in per_shard] == [os.getpid()] * 2

    def test_reinstall_candidates_union(self, clear_caches):
        bundle = clear_caches
        frontend = ShardedFrontend.from_bundle(bundle, n_shards=2)
        # Drive enough drifted observations into whichever shards serve
        # these shapes to trip the per-shard drift flags.
        workload = generate_workload(
            ["dgemm"], 120, distribution="cycling", seed=47, pool_size=4
        )
        plans = frontend.plan_many(request.as_tuple() for request in workload)
        for plan in plans:
            frontend.record_observation(plan, abs(plan.predicted_time) * 10 + 1.0)
        assert frontend.reinstall_candidates() == ["dgemm"]
