"""Tests for the process shard backend (:mod:`repro.serving.procshard`).

Promotes the PR 5 stress-equivalence suite to worker processes: whatever
the shard count and client thread count, the process backend produces
exactly one plan per request id, each bit-identical (routine, dims,
threads, predicted/baseline times, fallback policy) to a sequential
single-engine replay — only ``from_cache`` may differ, since each worker
warms its own LRU.  On top of that: shared-memory segment lifecycle
(created on construction, probeable by deterministic name, released
exactly once on close), worker-death behaviour (clear errors, never
hangs), and the inline fallback when shared memory is unavailable.
"""

import os
import signal
import threading
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro.shm as shm_mod
from repro.serving.engine import ServingEngine, normalize_request
from repro.serving.frontend import ShardedFrontend
from repro.serving.procshard import ProcessShard, export_source_spec
from repro.serving.workload import generate_workload


def _plan_key(plan):
    """The deterministic fields of a plan (everything but from_cache)."""
    return (
        plan.routine,
        tuple(sorted(plan.dims.items())),
        plan.threads,
        plan.predicted_time,
        plan.baseline_time,
        plan.fallback_from,
        plan.policy,
    )


def _sequential_reference(bundle, workload):
    """One fresh single engine answering the stream back to back."""
    for installation in bundle.routines.values():
        installation.predictor.clear_cache()
    engine = ServingEngine(bundle)
    plans = engine.plan_many(request.as_tuple() for request in workload)
    for installation in bundle.routines.values():
        installation.predictor.clear_cache()
    return plans


def _segments_in_dev_shm(names):
    root = Path("/dev/shm")
    if not root.is_dir():
        return None  # probing unsupported on this platform
    return [name for name in names if (root / name).exists()]


def _kill_worker(shard: ProcessShard) -> int:
    """SIGKILL a shard's live worker and wait until it is truly gone."""
    pid = shard.worker_pid
    assert pid is not None and pid != os.getpid()
    os.kill(pid, signal.SIGKILL)
    shard._proc.join(timeout=10)
    return pid


class TestProcessStressEquivalence:
    def test_exactly_one_plan_per_request_id_matching_sequential(
        self, clear_caches
    ):
        """4 clients x 2 worker-process shards: lossless and bit-identical."""
        bundle = clear_caches
        n_clients, per_client = 4, 100
        workload = generate_workload(
            ["dgemm", "dsyrk"],
            n_clients * per_client,
            distribution="skewed",
            seed=29,
            pool_size=12,
        )
        reference = _sequential_reference(bundle, workload)

        frontend = ShardedFrontend.from_bundle(
            bundle, n_shards=2, backend="process", max_pending=256
        )
        results = [None] * len(workload)
        ids = [None] * len(workload)

        def client(client_index):
            pending = []
            for slot in range(client_index, len(workload), n_clients):
                request = workload[slot]
                future = frontend.submit(request.routine, **request.dims)
                pending.append((slot, future))
            for slot, future in pending:
                results[slot] = future.result(timeout=120)
                ids[slot] = future.request_id

        with frontend:
            clients = [
                threading.Thread(target=client, args=(index,))
                for index in range(n_clients)
            ]
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join()
            stats = frontend.stats()

        # Exactly one plan per request id: none lost, none duplicated.
        assert None not in results
        assert len(set(ids)) == len(workload)
        assert stats["backend"] == "process"
        assert stats["requests"] == len(workload)
        assert stats["admission"]["shed"] == 0
        assert stats["admission"]["in_flight"] == 0
        # Bit-identical to the sequential single-engine replay, per request.
        for slot in range(len(workload)):
            assert _plan_key(results[slot]) == _plan_key(reference[slot]), slot

    def test_plan_many_matches_sequential_in_order(self, clear_caches):
        bundle = clear_caches
        workload = generate_workload(
            ["dgemm", "dsyrk"], 120, distribution="cycling", seed=31, pool_size=9
        )
        reference = _sequential_reference(bundle, workload)
        frontend = ShardedFrontend.from_bundle(bundle, 2, backend="process")
        with frontend:
            plans = frontend.plan_many(
                request.as_tuple() for request in workload
            )
        assert [_plan_key(p) for p in plans] == [_plan_key(p) for p in reference]

    def test_fallback_plans_served_identically(self, clear_caches):
        """Cross-precision fallback resolves inside the worker too."""
        frontend = ShardedFrontend.from_bundle(clear_caches, 1, backend="process")
        with frontend:
            plan = frontend.plan("sgemm", m=64, k=64, n=64)
        assert plan.fallback_from == "sgemm"
        assert plan.routine == "dgemm"
        assert plan.policy == "cross-precision"


class TestSharedMemoryLifecycle:
    def test_workers_share_one_export_and_release_on_close(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 2, backend="process")
        registries = {id(shard._export.registry) for shard in frontend.shards}
        assert len(registries) == 1  # one export shared by both shards
        registry = frontend.shards[0]._export.registry
        names = registry.segment_names()
        if not registry.shared_available:
            pytest.skip("shared memory unavailable in this environment")
        assert names and all(name.startswith("adsala-") for name in names)
        live = _segments_in_dev_shm(names)
        if live is not None:
            assert sorted(live) == sorted(names)  # probeable while serving
        with frontend:
            frontend.plan("dgemm", m=96, k=48, n=24)
        assert registry.closed
        assert registry.n_closes == 1
        if live is not None:
            assert _segments_in_dev_shm(names) == []  # all unlinked

    def test_double_close_releases_segments_exactly_once(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 2, backend="process")
        registry = frontend.shards[0]._export.registry
        names = registry.segment_names()
        frontend.start()
        frontend.close()
        frontend.close()
        for shard in frontend.shards:
            shard.stop()  # belt and braces: still exactly-once
        assert registry.closed
        assert registry.n_closes == 1
        live = _segments_in_dev_shm(names)
        assert live in (None, [])

    def test_frontend_construction_survives_missing_shared_memory(
        self, clear_caches, monkeypatch
    ):
        """No shared memory → RuntimeWarning + per-process copies, not a crash."""

        def denied(*args, **kwargs):
            raise PermissionError("shared memory denied by test")

        monkeypatch.setattr(shm_mod, "SharedMemory", denied)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            frontend = ShardedFrontend.from_bundle(
                clear_caches, 2, backend="process"
            )
        assert any(
            issubclass(w.category, RuntimeWarning)
            and "per-process" in str(w.message)
            for w in caught
        )
        registry = frontend.shards[0]._export.registry
        assert not registry.shared_available
        assert registry.segment_names() == []
        workload = generate_workload(
            ["dgemm", "dsyrk"], 24, distribution="cycling", seed=53
        )
        reference = _sequential_reference(clear_caches, workload)
        with frontend:
            plans = frontend.plan_many(
                request.as_tuple() for request in workload
            )
        assert [_plan_key(p) for p in plans] == [_plan_key(p) for p in reference]


class TestWorkerDeath:
    def _live_shard(self, bundle) -> ProcessShard:
        export = export_source_spec(bundle, max_batch_size=16)
        shard = ProcessShard(0, export)
        request = normalize_request("dgemm", {"m": 64, "k": 32, "n": 16}, 0)
        shard.execute([request])  # launches the worker
        return shard

    def test_killed_worker_surfaces_clear_error_not_hang(self, clear_caches):
        shard = self._live_shard(clear_caches)
        try:
            pid = _kill_worker(shard)
            request = normalize_request("dgemm", {"m": 80, "k": 40, "n": 20}, 1)
            start = time.perf_counter()
            with pytest.raises(RuntimeError, match=f"pid {pid}.*died"):
                shard.execute([request])
            assert time.perf_counter() - start < 30  # an error, not a hang
        finally:
            shard.stop()

    def test_futures_resolve_with_error_after_kill(self, clear_caches):
        # supervise=False restores the fail-fast contract this test pins
        # down; the supervised recovery path is covered in test_supervisor.
        frontend = ShardedFrontend.from_bundle(
            clear_caches, 1, backend="process", supervise=False
        )
        with frontend:
            assert frontend.plan("dgemm", m=64, k=64, n=64).threads >= 1
            _kill_worker(frontend.shards[0])
            future = frontend.submit("dgemm", m=96, k=48, n=24)
            with pytest.raises(RuntimeError, match="died"):
                future.result(timeout=60)

    def test_close_after_dead_worker_is_idempotent(self, clear_caches):
        shard = self._live_shard(clear_caches)
        registry = shard._export.registry
        _kill_worker(shard)
        shard.stop()  # must not raise or hang on the corpse
        shard.stop()
        assert registry.closed
        assert registry.n_closes == 1
        # Post-mortem stats answer with an empty-but-shaped snapshot.
        snapshot = shard.stats()
        assert snapshot["requests"] == 0
        assert snapshot["routines"] == {}
        assert shard.cache_statistics()["cache_hits"] == 0
        assert shard.reinstall_candidates() == []

    def test_observations_after_death_are_dropped_not_fatal(self, clear_caches):
        shard = self._live_shard(clear_caches)
        try:
            request = normalize_request("dgemm", {"m": 64, "k": 32, "n": 16}, 2)
            (plan,) = shard.execute([request])
            _kill_worker(shard)
            shard.stop()
            shard.record_observation(plan, plan.predicted_time * 1.2)  # no-op
        finally:
            shard.stop()


class TestCloseEscalation:
    def test_close_escalates_to_kill_when_worker_ignores_stop(self, clear_caches):
        """Regression for the stop() backstop: a worker that ignores both the
        STOP frame and SIGTERM must be SIGKILLed within the bounded join
        budget — close() may be slow, but it must never hang forever."""
        export = export_source_spec(
            clear_caches,
            max_batch_size=8,
            worker_faults={"ignore_stop": True},
        )
        shard = ProcessShard(0, export, stop_timeout=0.5)
        request = normalize_request("dgemm", {"m": 64, "k": 32, "n": 16}, 0)
        (plan,) = shard.execute([request])  # worker up and serving
        assert plan.threads >= 1
        start = time.perf_counter()
        shard.stop()
        elapsed = time.perf_counter() - start
        assert elapsed < 30  # 3 bounded joins, not an unbounded hang
        assert shard.stop_escalation == "kill"
        assert export.registry.closed

    def test_clean_close_does_not_escalate(self, clear_caches):
        export = export_source_spec(clear_caches, max_batch_size=8)
        shard = ProcessShard(0, export)
        request = normalize_request("dgemm", {"m": 64, "k": 32, "n": 16}, 0)
        shard.execute([request])
        shard.stop()
        assert shard.stop_escalation is None

    def test_restart_on_closed_shard_raises(self, clear_caches):
        export = export_source_spec(clear_caches, max_batch_size=8)
        shard = ProcessShard(0, export)
        shard.stop()
        with pytest.raises(RuntimeError, match="closed"):
            shard.restart()


class TestStatsAndAttribution:
    def test_per_shard_pids_are_distinct_worker_processes(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 2, backend="process")
        workload = generate_workload(
            ["dgemm", "dsyrk"], 60, distribution="skewed", seed=61, pool_size=16
        )
        with frontend:
            frontend.plan_many(request.as_tuple() for request in workload)
            stats = frontend.stats()
        per_shard = stats["per_shard"]
        assert [entry["backend"] for entry in per_shard] == ["process"] * 2
        assert [entry["worker"] for entry in per_shard] == [
            "adsala-procshard-0",
            "adsala-procshard-1",
        ]
        pids = [entry["pid"] for entry in per_shard]
        assert all(isinstance(pid, int) for pid in pids)
        assert len(set(pids)) == 2  # two real workers...
        assert os.getpid() not in pids  # ...neither of them us

    def test_observations_reach_worker_telemetry(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 2, backend="process")
        workload = generate_workload(
            ["dgemm", "dsyrk"], 40, distribution="cycling", seed=67, pool_size=8
        )
        with frontend:
            plans = frontend.plan_many(
                request.as_tuple() for request in workload
            )
            for plan in plans:
                frontend.record_observation(plan, plan.predicted_time * 1.1)
            stats = frontend.stats()
        observations = sum(
            entry["observations"] for entry in stats["routines"].values()
        )
        assert observations == len(workload)
        for entry in stats["routines"].values():
            assert entry["mean_abs_rel_error"] == pytest.approx(
                0.1 / 1.1, rel=1e-6
            )

    def test_drifted_workers_flag_reinstall_candidates(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(
            clear_caches, 2, backend="process", drift_threshold=0.25
        )
        workload = generate_workload(
            ["dgemm"], 120, distribution="cycling", seed=47, pool_size=4
        )
        with frontend:
            plans = frontend.plan_many(
                request.as_tuple() for request in workload
            )
            for plan in plans:
                frontend.record_observation(
                    plan, abs(plan.predicted_time) * 10 + 1.0
                )
            assert frontend.reinstall_candidates() == ["dgemm"]
        # The final pre-stop snapshot keeps answering after close.
        assert frontend.reinstall_candidates() == ["dgemm"]

    def test_stats_survive_close(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 2, backend="process")
        workload = generate_workload(
            ["dgemm", "dsyrk"], 30, distribution="skewed", seed=71
        )
        with frontend:
            frontend.plan_many(request.as_tuple() for request in workload)
        stats = frontend.stats()
        assert stats["requests"] == len(workload)
        assert stats["backend"] == "process"


class TestConstructionValidation:
    def test_prebuilt_engines_rejected(self, clear_caches):
        engine = ServingEngine(clear_caches)
        with pytest.raises(ValueError, match="worker process"):
            ShardedFrontend([engine], backend="process")

    def test_unknown_backend_rejected(self, clear_caches):
        with pytest.raises(ValueError, match="backend"):
            ShardedFrontend([clear_caches], backend="greenlet")

    def test_shared_source_allowed_for_process_backend(self, clear_caches):
        # The thread backend rejects shared sources; the process backend
        # *expects* them (one export, N workers).
        frontend = ShardedFrontend(
            [clear_caches, clear_caches], backend="process"
        )
        assert frontend.n_shards == 2
        frontend.close()

    def test_closed_shard_rejects_new_batches(self, clear_caches):
        export = export_source_spec(clear_caches)
        shard = ProcessShard(0, export)
        shard.stop()
        request = normalize_request("dgemm", {"m": 64, "k": 32, "n": 16}, 0)
        with pytest.raises(RuntimeError, match="closed"):
            shard.execute([request])


class TestWireCodec:
    def test_request_roundtrip_preserves_everything(self):
        from repro.serving.procshard import decode_requests, encode_requests
        from repro.serving.procshard import _parse_frame

        requests = [
            normalize_request("dgemm", {"m": 64, "k": 32, "n": 16}, 5),
            normalize_request("dsyrk", {"n": 48, "k": 24}, 9),
            normalize_request("strsm", {"m": 1 << 12, "n": 96}, 12),
        ]
        kind, count, payload = _parse_frame(encode_requests(requests))
        decoded = decode_requests(count, payload)
        assert [(r.request_id, r.routine, r.dims, r.dims_key) for r in decoded] == [
            (r.request_id, r.routine, r.dims, r.dims_key) for r in requests
        ]

    def test_plan_roundtrip_is_bit_exact(self):
        from repro.core.runtime import ExecutionPlan
        from repro.serving.procshard import decode_plans, encode_plans
        from repro.serving.procshard import _parse_frame

        requests = [
            normalize_request("dgemm", {"m": 64, "k": 32, "n": 16}, 0),
            normalize_request("sgemm", {"m": 8, "k": 8, "n": 8}, 1),
        ]
        plans = [
            ExecutionPlan(
                routine="dgemm",
                dims=requests[0].dims,
                threads=4,
                predicted_time=np.float64(1.2345678901234e-4),
                baseline_time=np.float64(9.8765432109876e-4),
                from_cache=True,
            ),
            ExecutionPlan(
                routine="dgemm",
                dims=requests[1].dims,
                threads=2,
                predicted_time=3.14e-5,
                baseline_time=2.71e-5,
                from_cache=False,
                fallback_from="sgemm",
                policy="cross-precision",
            ),
        ]
        _, count, payload = _parse_frame(encode_plans(plans))
        decoded = decode_plans(count, payload, requests)
        for original, clone in zip(plans, decoded):
            assert clone.routine == original.routine
            assert clone.dims == original.dims
            assert clone.threads == original.threads
            assert clone.predicted_time == original.predicted_time  # bit-exact
            assert clone.baseline_time == original.baseline_time
            assert clone.from_cache == original.from_cache
            assert clone.fallback_from == original.fallback_from
            assert clone.policy == original.policy
