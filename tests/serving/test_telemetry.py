"""Tests for serving telemetry: rolling stats, drift detection, counters."""

import pytest

from repro.serving.telemetry import EngineTelemetry, RollingStats, RoutineTelemetry


class TestRollingStats:
    def test_empty_defaults(self):
        stats = RollingStats(window=4)
        assert stats.mean == 0.0 and stats.max == 0.0 and len(stats) == 0

    def test_mean_and_max(self):
        stats = RollingStats(window=8)
        for value in (1.0, 2.0, 3.0):
            stats.add(value)
        assert stats.mean == pytest.approx(2.0)
        assert stats.max == 3.0
        assert stats.last == 3.0

    def test_window_evicts_oldest(self):
        stats = RollingStats(window=2)
        for value in (10.0, 1.0, 3.0):
            stats.add(value)
        assert len(stats) == 2
        assert stats.mean == pytest.approx(2.0)  # (1 + 3) / 2, the 10 left
        assert stats.n_total == 3

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RollingStats(window=0)

    def test_snapshot_keys(self):
        stats = RollingStats()
        stats.add(0.5)
        snap = stats.snapshot()
        assert snap["count"] == 1 and snap["total"] == 1
        assert snap["mean"] == pytest.approx(0.5)


class TestRoutineTelemetry:
    def test_relative_error_definition(self):
        telemetry = RoutineTelemetry("dgemm")
        telemetry.record_observation(predicted=1.0, observed=2.0)
        assert telemetry.mean_abs_rel_error == pytest.approx(0.5)

    def test_invalid_observations_skipped(self):
        telemetry = RoutineTelemetry("dgemm")
        telemetry.record_observation(predicted=1.0, observed=0.0)
        telemetry.record_observation(predicted=-1.0, observed=1.0)
        assert telemetry.n_observations == 0
        assert telemetry.n_invalid_observations == 2

    def test_drift_requires_min_observations(self):
        telemetry = RoutineTelemetry("dgemm")
        for _ in range(4):
            telemetry.record_observation(predicted=1.0, observed=2.0)
        assert not telemetry.drifting(threshold=0.25, min_observations=5)
        telemetry.record_observation(predicted=1.0, observed=2.0)
        assert telemetry.drifting(threshold=0.25, min_observations=5)

    def test_accurate_routine_never_drifts(self):
        telemetry = RoutineTelemetry("dsyrk")
        for _ in range(50):
            telemetry.record_observation(predicted=1.0, observed=1.01)
        assert not telemetry.drifting(threshold=0.25, min_observations=5)

    def test_plan_counters(self):
        telemetry = RoutineTelemetry("dgemm")
        telemetry.record_plan(from_cache=True, fallback=False, heuristic=False)
        telemetry.record_plan(from_cache=False, fallback=True, heuristic=True)
        snap = telemetry.snapshot()
        assert snap["plans"] == 2
        assert snap["cache_hits"] == 1
        assert snap["fallback_plans"] == 1
        assert snap["heuristic_plans"] == 1


class TestEngineTelemetry:
    def test_batch_counters(self):
        telemetry = EngineTelemetry()
        telemetry.record_batch(8)
        telemetry.record_batch(2)
        assert telemetry.n_batches == 2
        assert telemetry.n_requests == 10
        assert telemetry.batch_sizes.mean == pytest.approx(5.0)

    def test_reinstall_candidates(self):
        telemetry = EngineTelemetry(drift_threshold=0.25, min_observations=3)
        for _ in range(3):
            telemetry.record_observation("dgemm", predicted=1.0, observed=2.0)
            telemetry.record_observation("dsyrk", predicted=1.0, observed=1.02)
        assert telemetry.reinstall_candidates() == ["dgemm"]

    def test_snapshot_serialisable(self):
        import json

        telemetry = EngineTelemetry()
        telemetry.record_batch(4)
        telemetry.record_plan("dgemm", from_cache=False, fallback=False, heuristic=False)
        telemetry.record_observation("dgemm", predicted=1.0, observed=1.1)
        snap = telemetry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["routines"]["dgemm"]["plans"] == 1

    def test_drift_report_for_unknown_routine(self):
        assert EngineTelemetry().drift_report("dgemm") is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EngineTelemetry(drift_threshold=0.0)
        with pytest.raises(ValueError):
            EngineTelemetry(min_observations=0)


class TestCacheHitRate:
    def test_hit_rate_zero_without_plans(self):
        from repro.serving.telemetry import RoutineTelemetry

        telemetry = RoutineTelemetry("dgemm")
        assert telemetry.cache_hit_rate == 0.0
        assert telemetry.snapshot()["cache_hit_rate"] == 0.0

    def test_hit_rate_tracks_cached_plans(self):
        from repro.serving.telemetry import RoutineTelemetry

        telemetry = RoutineTelemetry("dgemm")
        for from_cache in (True, False, True, True):
            telemetry.record_plan(
                from_cache=from_cache, fallback=False, heuristic=False
            )
        assert telemetry.cache_hit_rate == 0.75
        assert telemetry.snapshot()["cache_hit_rate"] == 0.75
