"""Tests for serving telemetry: rolling stats, drift detection, counters."""

import numpy as np
import pytest

from repro.serving.telemetry import EngineTelemetry, RollingStats, RoutineTelemetry


class TestRollingStats:
    def test_empty_defaults(self):
        stats = RollingStats(window=4)
        assert stats.mean == 0.0 and stats.max == 0.0 and len(stats) == 0

    def test_mean_and_max(self):
        stats = RollingStats(window=8)
        for value in (1.0, 2.0, 3.0):
            stats.add(value)
        assert stats.mean == pytest.approx(2.0)
        assert stats.max == 3.0
        assert stats.last == 3.0

    def test_window_evicts_oldest(self):
        stats = RollingStats(window=2)
        for value in (10.0, 1.0, 3.0):
            stats.add(value)
        assert len(stats) == 2
        assert stats.mean == pytest.approx(2.0)  # (1 + 3) / 2, the 10 left
        assert stats.n_total == 3

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RollingStats(window=0)

    def test_snapshot_keys(self):
        stats = RollingStats()
        stats.add(0.5)
        snap = stats.snapshot()
        assert snap["count"] == 1 and snap["total"] == 1
        assert snap["mean"] == pytest.approx(0.5)

    def test_long_stream_mean_matches_numpy_window_mean(self):
        # Regression: the subtract-on-evict running sum accumulated
        # rounding error without bound.  Occasional huge samples (exactly
        # what |observed-predicted|/observed produces when observed is
        # tiny) leave residuals in the sum long after they leave the
        # window; pre-fix this drifted to ~1e-8 absolute error.
        rng = np.random.default_rng(123)
        stats = RollingStats(window=64)
        for index in range(100_000):
            stats.add(1e8 if index % 1000 == 0 else rng.random())
        window = np.asarray(stats._values, dtype=float)
        assert abs(stats.mean - np.mean(window)) < 1e-12
        assert stats.n_total == 100_000

    def test_resync_preserves_window_semantics(self):
        # The periodic exact resync must not change what the window holds.
        stats = RollingStats(window=3)
        for value in range(20):
            stats.add(float(value))
        assert len(stats) == 3
        assert stats.mean == pytest.approx((17 + 18 + 19) / 3)
        assert stats.max == 19.0 and stats.last == 19.0


class TestRoutineTelemetry:
    def test_relative_error_definition(self):
        telemetry = RoutineTelemetry("dgemm")
        telemetry.record_observation(predicted=1.0, observed=2.0)
        assert telemetry.mean_abs_rel_error == pytest.approx(0.5)

    def test_invalid_observations_skipped(self):
        telemetry = RoutineTelemetry("dgemm")
        telemetry.record_observation(predicted=1.0, observed=0.0)
        telemetry.record_observation(predicted=-1.0, observed=1.0)
        assert telemetry.n_observations == 0
        assert telemetry.n_invalid_observations == 2

    def test_drift_requires_min_observations(self):
        telemetry = RoutineTelemetry("dgemm")
        for _ in range(4):
            telemetry.record_observation(predicted=1.0, observed=2.0)
        assert not telemetry.drifting(threshold=0.25, min_observations=5)
        telemetry.record_observation(predicted=1.0, observed=2.0)
        assert telemetry.drifting(threshold=0.25, min_observations=5)

    def test_accurate_routine_never_drifts(self):
        telemetry = RoutineTelemetry("dsyrk")
        for _ in range(50):
            telemetry.record_observation(predicted=1.0, observed=1.01)
        assert not telemetry.drifting(threshold=0.25, min_observations=5)

    def test_plan_counters(self):
        telemetry = RoutineTelemetry("dgemm")
        telemetry.record_plan(from_cache=True, fallback=False, heuristic=False)
        telemetry.record_plan(from_cache=False, fallback=True, heuristic=True)
        snap = telemetry.snapshot()
        assert snap["plans"] == 2
        assert snap["cache_hits"] == 1
        assert snap["fallback_plans"] == 1
        assert snap["heuristic_plans"] == 1


class TestEngineTelemetry:
    def test_batch_counters(self):
        telemetry = EngineTelemetry()
        telemetry.record_batch(8)
        telemetry.record_batch(2)
        assert telemetry.n_batches == 2
        assert telemetry.n_requests == 10
        assert telemetry.batch_sizes.mean == pytest.approx(5.0)

    def test_reinstall_candidates(self):
        telemetry = EngineTelemetry(drift_threshold=0.25, min_observations=3)
        for _ in range(3):
            telemetry.record_observation("dgemm", predicted=1.0, observed=2.0)
            telemetry.record_observation("dsyrk", predicted=1.0, observed=1.02)
        assert telemetry.reinstall_candidates() == ["dgemm"]

    def test_snapshot_serialisable(self):
        import json

        telemetry = EngineTelemetry()
        telemetry.record_batch(4)
        telemetry.record_plan("dgemm", from_cache=False, fallback=False, heuristic=False)
        telemetry.record_observation("dgemm", predicted=1.0, observed=1.1)
        snap = telemetry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["routines"]["dgemm"]["plans"] == 1

    def test_drift_report_for_unknown_routine(self):
        assert EngineTelemetry().drift_report("dgemm") is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EngineTelemetry(drift_threshold=0.0)
        with pytest.raises(ValueError):
            EngineTelemetry(min_observations=0)


class TestCacheHitRate:
    def test_hit_rate_zero_without_plans(self):
        from repro.serving.telemetry import RoutineTelemetry

        telemetry = RoutineTelemetry("dgemm")
        assert telemetry.cache_hit_rate == 0.0
        assert telemetry.snapshot()["cache_hit_rate"] == 0.0

    def test_hit_rate_tracks_cached_plans(self):
        from repro.serving.telemetry import RoutineTelemetry

        telemetry = RoutineTelemetry("dgemm")
        for from_cache in (True, False, True, True):
            telemetry.record_plan(
                from_cache=from_cache, fallback=False, heuristic=False
            )
        assert telemetry.cache_hit_rate == 0.75
        assert telemetry.snapshot()["cache_hit_rate"] == 0.75


class TestShapeHistogram:
    def key(self, **dims):
        return tuple(sorted(dims.items()))

    def test_records_and_counts(self):
        from repro.serving.telemetry import ShapeHistogram

        histogram = ShapeHistogram()
        for _ in range(3):
            histogram.record(self.key(m=64, n=64))
        histogram.record(self.key(m=128, n=128))
        assert len(histogram) == 2
        assert histogram.n_recorded == 4
        assert histogram.top(1) == [({"m": 64, "n": 64}, 3)]
        assert {"m": 128, "n": 128} in histogram.shapes()

    def test_capacity_evicts_least_recently_seen(self):
        from repro.serving.telemetry import ShapeHistogram

        histogram = ShapeHistogram(capacity=2)
        histogram.record(self.key(m=1))
        histogram.record(self.key(m=2))
        histogram.record(self.key(m=1))  # refresh m=1 -> m=2 is the LRU
        histogram.record(self.key(m=3))
        assert histogram.n_evicted == 1
        assert {"m": 2} not in histogram.shapes()
        assert {"m": 1} in histogram.shapes()

    def test_sample_is_frequency_weighted(self):
        import numpy as np

        from repro.serving.telemetry import ShapeHistogram

        histogram = ShapeHistogram()
        for _ in range(99):
            histogram.record(self.key(m=64))
        histogram.record(self.key(m=1024))
        rng = np.random.default_rng(0)
        samples = histogram.sample(200, rng)
        hot = sum(1 for dims in samples if dims == {"m": 64})
        assert hot > 150  # ~99 % of the mass

    def test_sample_validation(self):
        import numpy as np

        from repro.serving.telemetry import ShapeHistogram

        histogram = ShapeHistogram()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="empty histogram"):
            histogram.sample(1, rng)
        histogram.record(self.key(m=1))
        with pytest.raises(ValueError, match="must be positive"):
            histogram.sample(0, rng)

    def test_snapshot_serialisable(self):
        import json

        from repro.serving.telemetry import ShapeHistogram

        histogram = ShapeHistogram()
        histogram.record(self.key(m=64, n=32))
        snap = histogram.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["distinct"] == 1
        assert snap["top"][0]["dims"] == {"m": 64, "n": 32}

    def test_capacity_validation(self):
        from repro.serving.telemetry import ShapeHistogram

        with pytest.raises(ValueError):
            ShapeHistogram(capacity=0)


class TestTrafficLog:
    def test_observations_with_context_fill_the_log(self):
        telemetry = RoutineTelemetry("dgemm", window=4)
        dims = {"m": 64, "k": 64, "n": 64}
        for i in range(6):
            telemetry.record_observation(
                predicted=1.0, observed=1.1 + i * 0.01, dims=dims, threads=4
            )
        assert len(telemetry.traffic) == 4  # bounded by the window
        record = telemetry.traffic[-1]
        assert record.dims == dims and record.threads == 4
        assert record.observed == pytest.approx(1.15)

    def test_context_free_observations_skip_the_log(self):
        telemetry = RoutineTelemetry("dgemm")
        telemetry.record_observation(predicted=1.0, observed=1.1)
        assert telemetry.n_observations == 1
        assert len(telemetry.traffic) == 0

    def test_invalid_observations_skip_the_log(self):
        telemetry = RoutineTelemetry("dgemm")
        telemetry.record_observation(
            predicted=1.0, observed=0.0, dims={"m": 1}, threads=2
        )
        assert len(telemetry.traffic) == 0

    def test_plan_with_dims_key_feeds_the_histogram(self):
        telemetry = RoutineTelemetry("dgemm")
        telemetry.record_plan(
            from_cache=False, fallback=False, heuristic=False,
            dims_key=(("m", 64), ("n", 32)),
        )
        assert telemetry.shapes.n_recorded == 1
        assert telemetry.snapshot()["shapes"]["distinct"] == 1

    def test_reset_window_clears_errors_and_traffic_only(self):
        telemetry = RoutineTelemetry("dgemm", window=8)
        telemetry.record_plan(
            from_cache=False, fallback=False, heuristic=False,
            dims_key=(("m", 64),),
        )
        for _ in range(5):
            telemetry.record_observation(
                predicted=1.0, observed=2.0, dims={"m": 64}, threads=2
            )
        telemetry.reset_window()
        assert len(telemetry.errors) == 0
        assert len(telemetry.traffic) == 0
        assert telemetry.n_observations == 5       # lifetime counters survive
        assert telemetry.shapes.n_recorded == 1    # workload shape info survives
        assert not telemetry.drifting(threshold=0.25, min_observations=1)

    def test_engine_reset_routine(self):
        telemetry = EngineTelemetry(min_observations=2)
        for _ in range(3):
            telemetry.record_observation("dgemm", predicted=1.0, observed=2.0)
        assert telemetry.reinstall_candidates() == ["dgemm"]
        assert telemetry.reset_routine("dgemm") is True
        assert telemetry.reinstall_candidates() == []
        assert telemetry.reset_routine("unknown") is False


class TestRollingQuantile:
    def test_empty_and_validation(self):
        stats = RollingStats(window=4)
        assert stats.quantile(0.5) == 0.0
        stats.add(1.0)
        with pytest.raises(ValueError):
            stats.quantile(1.5)
        with pytest.raises(ValueError):
            stats.quantile(-0.1)

    def test_matches_numpy_on_spiky_stream(self):
        # Pin against np.quantile's default (linear-interpolation) method
        # on exactly the kind of stream the error window sees: mostly
        # small relative errors with occasional huge spikes from
        # near-zero observed times.
        rng = np.random.default_rng(77)
        stats = RollingStats(window=256)
        samples = []
        for index in range(1000):
            value = 1e7 if index % 97 == 0 else float(rng.random())
            stats.add(value)
            samples.append(value)
        window = np.asarray(samples[-256:], dtype=float)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert stats.quantile(q) == float(np.quantile(window, q))

    def test_quantile_tracks_the_live_window_only(self):
        stats = RollingStats(window=2)
        for value in (100.0, 1.0, 3.0):
            stats.add(value)
        # Only (1, 3) remain: the median interpolates between them.
        assert stats.quantile(0.5) == pytest.approx(2.0)


class TestLatencyTelemetry:
    def test_snapshot_reports_error_quantiles(self):
        telemetry = RoutineTelemetry("dgemm")
        for observed in (1.0, 2.0, 4.0, 8.0):
            telemetry.record_observation(predicted=1.0, observed=observed)
        snap = telemetry.snapshot()
        errors = [abs(o - 1.0) / o for o in (1.0, 2.0, 4.0, 8.0)]
        assert snap["p50_abs_rel_error"] == pytest.approx(
            float(np.quantile(errors, 0.5))
        )
        assert snap["p99_abs_rel_error"] == pytest.approx(
            float(np.quantile(errors, 0.99))
        )

    def test_record_latency_feeds_histogram_snapshot(self):
        telemetry = EngineTelemetry()
        telemetry.record_latency("dgemm", 3e-4)
        telemetry.record_latency("dgemm", 2e-3)
        snap = telemetry.snapshot()["routines"]["dgemm"]["latency"]
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(2.3e-3)
        assert sum(snap["counts"]) == 2

    def test_latency_survives_window_reset(self):
        telemetry = RoutineTelemetry("dgemm")
        telemetry.record_latency(1e-4)
        telemetry.reset_window()
        assert telemetry.latency.count == 1  # like shapes: survives promotion
