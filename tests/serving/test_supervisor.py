"""Tests for shard supervision: restarts, deadlines, quarantine, hangs.

The fault-tolerance contract on top of the PR 5/6 equivalence tradition:
whatever the supervisor does to keep shards alive — restart, redispatch,
reroute — every submitted request is answered **exactly once**, and every
answer is bit-identical to what a healthy sequential replay would have
produced.  Deadlines bound how long a caller can be made to wait for that
answer; quarantine bounds how long a dying shard can hog its key range.
"""

import os
import signal
import threading
import time

import pytest

from repro.serving import (
    DeadlineExceededError,
    FaultInjector,
    NoHealthyShardError,
    RestartPolicy,
    ShardedFrontend,
    ShardFailure,
    ShardSupervisor,
)
from repro.serving.engine import ServingEngine, normalize_request
from repro.serving.shard import EngineShard


def _kill_worker(shard) -> int:
    """SIGKILL a process shard's live worker and wait until it is gone."""
    pid = shard.worker_pid
    assert pid is not None and pid != os.getpid()
    os.kill(pid, signal.SIGKILL)
    shard._proc.join(timeout=10)
    return pid


def _fast_policy(**overrides):
    """A RestartPolicy tuned for test speed (tiny backoff).

    ``hang_timeout`` stays generous: it must comfortably exceed worker
    *spawn* time (~1.5s for a process shard), or the liveness monitor
    SIGKILLs replacements while they are still importing.
    """
    defaults = dict(
        backoff_base=0.005,
        backoff_cap=0.02,
        hang_timeout=30.0,
        health_interval=0.05,
    )
    defaults.update(overrides)
    return RestartPolicy(**defaults)


def _always_failing(shard, exc_text="synthetic transport failure"):
    """Monkeypatch a shard so every dispatch raises a recoverable failure."""

    def broken(requests):
        raise ShardFailure(exc_text)

    shard._execute_batch = broken


class TestRestartPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_consecutive_failures"):
            RestartPolicy(max_consecutive_failures=0)
        with pytest.raises(ValueError, match="hang_timeout"):
            RestartPolicy(hang_timeout=0)
        with pytest.raises(ValueError, match="backoff"):
            RestartPolicy(backoff_base=-0.1)

    def test_backoff_doubles_then_caps(self):
        policy = RestartPolicy(backoff_base=0.1, backoff_cap=0.35)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.35)  # capped, not 0.4
        assert policy.backoff(10) == pytest.approx(0.35)

    def test_monitor_interval_defaults_to_quarter_of_hang_timeout(self):
        assert RestartPolicy(hang_timeout=2.0).monitor_interval == pytest.approx(0.5)
        assert RestartPolicy(hang_timeout=100.0).monitor_interval == 1.0  # bounded
        assert RestartPolicy(health_interval=0.07).monitor_interval == 0.07

    def test_supervisor_needs_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardSupervisor([])


class TestDeadlines:
    def test_expired_request_is_shed_with_named_error(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 1)
        with frontend:
            frontend.plan("dgemm", m=64, k=64, n=64)
            future = frontend.submit("dgemm", timeout=1e-9, m=96, k=48, n=24)
            with pytest.raises(DeadlineExceededError) as excinfo:
                future.result(timeout=30)
            message = str(excinfo.value)
            assert f"request {future.request_id}" in message
            assert "shard 0" in message
            stats = frontend.stats()
        assert stats["supervision"]["deadline_expired"] == 1
        # A shed request is still *completed*: its admission slot came back.
        assert stats["admission"]["in_flight"] == 0

    def test_result_timeout_names_request_and_shard(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 1)
        gate = threading.Event()
        original = frontend.shards[0]._execute_batch

        def gated(requests):
            gate.wait(timeout=30)
            return original(requests)

        frontend.shards[0]._execute_batch = gated
        with frontend:
            future = frontend.submit("dgemm", m=64, k=64, n=64)
            with pytest.raises(DeadlineExceededError) as excinfo:
                future.result(timeout=0.05)
            assert f"request {future.request_id}" in str(excinfo.value)
            assert "shard 0" in str(excinfo.value)
            gate.set()
            assert future.result(timeout=30).threads >= 1

    def test_plan_timeout_is_end_to_end(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 1)
        with frontend:
            with pytest.raises(DeadlineExceededError):
                frontend.plan("dgemm", timeout=1e-9, m=64, k=64, n=64)

    def test_plan_many_deadline(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 2)
        with frontend:
            with pytest.raises(DeadlineExceededError):
                frontend.plan_many(
                    [("dgemm", {"m": 64 + i, "k": 32, "n": 16}) for i in range(8)],
                    timeout=1e-9,
                )
            # And without a timeout the same stream is fine.
            plans = frontend.plan_many(
                [("dgemm", {"m": 64 + i, "k": 32, "n": 16}) for i in range(8)]
            )
            assert len(plans) == 8

    def test_timeout_must_be_positive(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 1)
        with frontend:
            with pytest.raises(ValueError, match="timeout must be positive"):
                frontend.submit("dgemm", timeout=0, m=64, k=64, n=64)
            with pytest.raises(ValueError, match="timeout must be positive"):
                frontend.plan_many([("dgemm", {"m": 64, "k": 64, "n": 64})], timeout=-1)


class TestKillRecovery:
    def test_process_shard_restarts_after_kill(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(
            clear_caches,
            1,
            backend="process",
            restart_policy=_fast_policy(),
        )
        with frontend:
            before = frontend.plan("dgemm", m=64, k=64, n=64)
            first_pid = frontend.shards[0].worker_pid
            _kill_worker(frontend.shards[0])
            # The very next submission rides through restart + redispatch.
            after = frontend.submit("dgemm", m=64, k=64, n=64).result(timeout=60)
            assert after.threads == before.threads
            assert frontend.shards[0].worker_pid != first_pid
            snapshot = frontend.supervisor.snapshot()
        assert snapshot["failures"] >= 1
        assert snapshot["restarts"] >= 1
        assert snapshot["redispatched"] >= 1
        assert snapshot["quarantined"] == []
        assert snapshot["recovery_episodes"] >= 1
        assert snapshot["recovery_max_s"] > 0.0

    def test_explicit_restart_revives_a_dead_shard(self, clear_caches):
        from repro.serving import WorkerDiedError
        from repro.serving.procshard import export_source_spec, ProcessShard

        export = export_source_spec(clear_caches, max_batch_size=8)
        shard = ProcessShard(0, export)
        try:
            request = normalize_request("dgemm", {"m": 64, "k": 32, "n": 16}, 0)
            (healthy,) = shard._dispatch([request])
            _kill_worker(shard)
            with pytest.raises(WorkerDiedError):
                shard._dispatch([request])
            shard.restart()
            (revived,) = shard._dispatch([request])
            assert revived.threads == healthy.threads
        finally:
            shard.stop()


class TestQuarantine:
    def test_failing_shard_quarantines_and_reroutes(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(
            clear_caches,
            2,
            restart_policy=_fast_policy(max_consecutive_failures=2),
        )
        # Which shard does dgemm 64/64/64 land on?  Break exactly that one.
        probe = normalize_request("dgemm", {"m": 64, "k": 64, "n": 64}, 0)
        from repro.serving.shard import shard_index

        victim = shard_index(probe.routine, probe.dims_key, 2)
        survivor = 1 - victim
        _always_failing(frontend.shards[victim])
        with frontend:
            with pytest.warns(RuntimeWarning, match=f"shard {victim} quarantined"):
                plan = frontend.plan("dgemm", m=64, k=64, n=64)
            assert plan.threads >= 1
            # The answer came from the survivor, not the broken shard.
            assert frontend.shards[survivor].n_requests_drained >= 1
            # Subsequent traffic for the dark key range routes straight there.
            again = frontend.submit("dgemm", m=64, k=64, n=64)
            assert again.shard == survivor
            assert again.result(timeout=30).threads == plan.threads
            snapshot = frontend.supervisor.snapshot()
        assert snapshot["quarantined"] == [victim]
        assert snapshot["healthy_shards"] == 1
        per_victim = snapshot["per_shard"][victim]
        # Every request the victim ever saw is accounted for: failures on
        # the broken dispatches, a redispatch for the stranded batch, and a
        # reroute for the follow-up submission.
        assert per_victim["failures"] > 2  # tripped the breaker
        assert per_victim["redispatched"] >= 1
        assert per_victim["rerouted"] >= 1
        assert per_victim["last_error"]

    def test_no_healthy_shard_fails_loudly(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(
            clear_caches,
            1,
            restart_policy=_fast_policy(max_consecutive_failures=1),
        )
        _always_failing(frontend.shards[0])
        with frontend:
            with pytest.warns(RuntimeWarning, match="quarantined"):
                future = frontend.submit("dgemm", m=64, k=64, n=64)
                with pytest.raises(NoHealthyShardError) as excinfo:
                    future.result(timeout=30)
            # The original transport failure rides along as the cause.
            assert isinstance(excinfo.value.__cause__, ShardFailure)
            # With the breaker open, later submissions fail synchronously
            # (and give their admission slot back).
            with pytest.raises(NoHealthyShardError):
                frontend.submit("dgemm", m=64, k=64, n=64)
            stats = frontend.stats()
        assert stats["admission"]["in_flight"] == 0
        assert stats["supervision"]["healthy_shards"] == 0

    def test_bulk_path_reroutes_around_quarantine(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(
            clear_caches,
            2,
            restart_policy=_fast_policy(max_consecutive_failures=1),
        )
        _always_failing(frontend.shards[0])
        with frontend:
            with pytest.warns(RuntimeWarning, match="quarantined"):
                plans = frontend.plan_many(
                    [
                        ("dgemm", {"m": 64 + i, "k": 32, "n": 16})
                        for i in range(12)
                    ]
                )
            assert len(plans) == 12
            assert all(plan.threads >= 1 for plan in plans)
            snapshot = frontend.supervisor.snapshot()
        assert snapshot["quarantined"] == [0]


class TestHangRecovery:
    def test_hung_thread_shard_is_abandoned_and_replaced(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(
            clear_caches,
            1,
            restart_policy=_fast_policy(hang_timeout=0.3, health_interval=0.05),
        )
        shard = frontend.shards[0]
        release = threading.Event()
        hung_once = threading.Event()
        original = shard._execute_batch

        def hang_first_batch(requests):
            if not hung_once.is_set():
                hung_once.set()
                release.wait(timeout=30)  # wedge the first drain worker
            return original(requests)

        shard._execute_batch = hang_first_batch
        try:
            with frontend:
                future = frontend.submit("dgemm", m=64, k=64, n=64)
                # The monitor must declare the hang and answer the request
                # on a replacement worker while the zombie stays wedged.
                plan = future.result(timeout=30)
                assert plan.threads >= 1
                snapshot = frontend.supervisor.snapshot()
                assert snapshot["hangs"] >= 1
                assert snapshot["restarts"] >= 1
                assert snapshot["redispatched"] >= 1
                # The wedged engine was swapped out, not reused.
                release.set()
        finally:
            release.set()

    def test_monitor_thread_lifecycle(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 1)
        with frontend:
            frontend.plan("dgemm", m=64, k=64, n=64)
            monitor = frontend.supervisor._monitor
            assert monitor is not None and monitor.is_alive()
        assert frontend.supervisor._monitor is None

    def test_stalled_for_tracks_oldest_inflight(self, clear_caches):
        engine = ServingEngine(clear_caches)
        shard = EngineShard(0, engine)
        assert shard.stalled_for() is None
        token = object()
        with shard._inflight_lock:
            shard._inflight[token] = (time.monotonic() - 5.0, None)
        try:
            assert shard.stalled_for() == pytest.approx(5.0, abs=0.5)
        finally:
            with shard._inflight_lock:
                shard._inflight.pop(token)


class TestObservability:
    def test_stats_supervision_block(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(
            clear_caches, 2, injector=FaultInjector("slow:1", seed=0, horizon=4)
        )
        with frontend:
            frontend.plan("dgemm", m=64, k=64, n=64)
            stats = frontend.stats()
        supervision = stats["supervision"]
        assert supervision["healthy_shards"] == 2
        assert supervision["quarantined"] == []
        assert supervision["policy"]["max_consecutive_failures"] >= 1
        assert len(supervision["per_shard"]) == 2
        for entry in supervision["per_shard"]:
            assert entry["deadline_expired"] == 0
            assert entry["duplicate_answers"] == 0
        assert supervision["injected"]["spec"] == {"slow": 1}

    def test_unsupervised_frontend_reports_none(self, clear_caches):
        frontend = ShardedFrontend.from_bundle(clear_caches, 1, supervise=False)
        with frontend:
            frontend.plan("dgemm", m=64, k=64, n=64)
            stats = frontend.stats()
        assert stats["supervision"] is None
        assert frontend.supervisor is None
