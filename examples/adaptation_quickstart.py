"""Adaptation quickstart: drift in, retrained model out, no restart.

The full closed loop on the small "laptop" preset:

1. install a two-routine bundle and serve it through the micro-batching
   engine;
2. inject hardware drift — the "machine" under the engine loses 45 % of
   its clock and its synchronisation cost x2.5 — and watch the rolling
   observed-vs-predicted error trip the drift detector;
3. run one :class:`~repro.adaptive.controller.AdaptationController` step:
   budgeted re-gather seeded from the observed traffic shapes, retrain
   with the installer's model-selection criterion, shadow-compare against
   the live model on the recorded traffic, promote the winner as bundle
   v2 and hot-reload the engine;
4. verify the error recovered, inspect the audit trail, then roll the
   bundle back to v1 byte-for-byte.

Run with::

    python examples/adaptation_quickstart.py
"""

import tempfile

from repro import install_adsala
from repro.adaptive import (
    AdaptationConfig,
    AdaptationController,
    DriftInjector,
    make_calibration,
)
from repro.core.persistence import save_bundle
from repro.machine import get_platform
from repro.serving import EngineTelemetry, ModelRegistry, ServingEngine, generate_workload

DRIFT_THRESHOLD = 0.25


def serve_and_observe(engine, observer, seed):
    """One traffic round: plan a skewed workload, feed back observed times."""
    workload = generate_workload(
        ["dgemm", "dsyrk"], 300, distribution="skewed", seed=seed
    )
    plans = engine.plan_many(request.as_tuple() for request in workload)
    for plan in plans:
        engine.record_observation(
            plan, observer.time(plan.routine, plan.dims, plan.threads)
        )


def rolling_errors(engine):
    return {
        routine: round(telemetry.mean_abs_rel_error, 4)
        for routine, telemetry in engine.telemetry.routines.items()
    }


def main() -> None:
    platform = get_platform("laptop")
    bundle = install_adsala(
        platform=platform,
        routines=["dgemm", "dsyrk"],
        n_samples=20,
        threads_per_shape=5,
        n_test_shapes=8,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=0,
    )

    with tempfile.TemporaryDirectory() as root:
        directory = save_bundle(bundle, f"{root}/laptop-v1", bundle_version=1)
        registry = ModelRegistry(root)
        handle = registry.get(platform="laptop")
        engine = ServingEngine(
            handle, telemetry=EngineTelemetry(drift_threshold=DRIFT_THRESHOLD)
        )

        # -- the machine drifts under the serving engine ----------------------
        calibration = make_calibration(clock=0.55, sync=2.5)
        injector = DriftInjector(platform, calibration)
        observer = injector.simulator(seed=1)
        print(f"Injecting drift: {injector.calibration}")
        serve_and_observe(engine, observer, seed=3)
        print(f"Rolling error after drift:   {rolling_errors(engine)}")
        print(f"Drift flags (> {DRIFT_THRESHOLD}): {engine.reinstall_candidates()}")

        # -- one adaptation step closes the loop ------------------------------
        controller = AdaptationController(
            engine,
            AdaptationConfig(
                seed=11,
                regather_shapes=12,
                regather_threads_per_shape=4,
                regather_test_shapes=6,
                candidate_models=("LinearRegression", "DecisionTree"),
                max_latency_regression=2.0,
            ),
            measurement_simulator=injector.simulator(seed=2),
            calibration=calibration,
        )
        report = controller.step()
        print(f"Adaptation step: {report.summary()}")
        for routine, verdict in report.shadow.items():
            print(f"  shadow {routine}: live {verdict.live_error:.3f} "
                  f"({verdict.live_model}) vs candidate "
                  f"{verdict.candidate_error:.3f} ({verdict.candidate_model})"
                  f" -> {'accept' if verdict.accepted else 'reject'}")
        print(f"Engine now serves bundle v{handle.bundle_version} "
              f"(hot-reloaded: {report.reloaded})")

        # -- fresh drifted traffic: the error recovered -----------------------
        serve_and_observe(engine, observer, seed=4)
        print(f"Rolling error after adapt:   {rolling_errors(engine)}")
        follow_up = controller.step()
        print(f"Lifecycle states: {controller.states()} "
              f"(recovered: {follow_up.recovered})")

        # -- audit trail and one-command rollback -----------------------------
        events = controller.promoter.log.events()
        print(f"Audit trail ({len(events)} events): "
              + " -> ".join(sorted({event['event'] for event in events})))
        restored = controller.rollback()
        print(f"Rolled back to bundle v{restored}; engine serves "
              f"v{handle.bundle_version} from {directory}")


if __name__ == "__main__":
    main()
