"""Install once, persist to disk, reload at 'runtime' — the paper's Fig. 1 split.

The paper separates the expensive installation phase (data gathering +
model training, done once per machine) from the runtime phase (load the
config + model files, predict thread counts with microsecond overhead).
This example performs the split explicitly through the persistence layer
and verifies the reloaded library plans identically, then shows the
equivalent ``adsala`` CLI invocations.

Run with::

    python examples/install_and_persist.py
"""

import tempfile
import time
from pathlib import Path

from repro import install_adsala
from repro.core.persistence import load_bundle, save_bundle
from repro.core.runtime import AdsalaRuntime
from repro.machine import get_platform


def main() -> None:
    platform = get_platform("gadi")

    install_start = time.perf_counter()
    bundle = install_adsala(
        platform=platform,
        routines=["dgemm", "dtrsm"],
        n_samples=40,
        threads_per_shape=8,
        n_test_shapes=10,
        candidate_models=["LinearRegression", "DecisionTree", "XGBoost"],
        seed=0,
    )
    install_seconds = time.perf_counter() - install_start
    print(f"Installation phase: {install_seconds:.1f}s "
          f"(simulated data gathering + model selection for 2 routines)")

    with tempfile.TemporaryDirectory() as tmp:
        bundle_dir = Path(tmp) / "adsala-gadi"
        save_bundle(bundle, bundle_dir)
        files = sorted(p.name for p in bundle_dir.iterdir())
        print(f"Persisted bundle: {files}")

        load_start = time.perf_counter()
        restored = load_bundle(bundle_dir)
        load_seconds = time.perf_counter() - load_start
        print(f"Runtime phase: bundle loaded in {load_seconds * 1e3:.1f}ms")

        runtime = AdsalaRuntime(restored)
        calls = [
            ("dgemm", dict(m=64, k=2048, n=64)),
            ("dgemm", dict(m=3000, k=3000, n=3000)),
            ("dtrsm", dict(m=2000, n=500)),
        ]
        original_runtime = AdsalaRuntime(bundle)
        print("\nPlans from the reloaded bundle (and agreement with the original):")
        for routine, dims in calls:
            plan = runtime.plan(routine, **dims)
            original = original_runtime.plan(routine, **dims)
            agreement = "==" if plan.threads == original.threads else "!="
            print(
                f"  {routine} {dims}: {plan.threads} threads "
                f"({agreement} original), speedup {plan.estimated_speedup:.2f}x"
            )
            assert plan.threads == original.threads

    print(
        "\nEquivalent CLI workflow:\n"
        "  adsala install --platform gadi --routines dgemm dtrsm --output ./adsala-gadi\n"
        "  adsala predict --bundle ./adsala-gadi --routine dgemm --dims 64 2048 64\n"
        "  adsala bench table7 --platform gadi"
    )


if __name__ == "__main__":
    main()
