"""A minimal out-of-tree ADSALA routine plugin.

The core library never imports this file: drop the directory onto
``ADSALA_PLUGIN_PATH`` and the catalog discovers it.  The routine is a
"black box" — no analytic cost model, only a ``measure`` hook standing in
for timing the real kernel on the machine (here: a synthetic scaling law
reading the live platform calibration, so machine drift moves its times
and the adaptation loop can re-learn them).
"""

import numpy as np

from repro.routines import make_routine_spec

PLUGIN_NAME = "example-blackbox"
PLUGIN_VERSION = "1.0"


def _measure(platform, precision, dims, threads):
    """Measured wall time (seconds) for batches of opaque_scan calls."""
    p = np.asarray(dims["p"], dtype=np.float64)
    q = np.asarray(dims["q"], dtype=np.float64)
    t = np.asarray(threads, dtype=np.float64)
    width = 2.0 if precision == "s" else 1.0
    rate = platform.peak_gflops_per_core * 1e9 * width
    work = 48.0 * p * q * np.sqrt(q)
    kernel = work / (rate * t / (1.0 + 0.10 * (t - 1.0)))
    itemsize = 4.0 if precision == "s" else 8.0
    traffic = 3.0 * p * q * itemsize / (
        platform.total_memory_bandwidth_gbs * 1e9 * t / (t + 5.0)
    )
    return kernel + traffic + 2e-6 * t


ROUTINES = [
    make_routine_spec(
        "opaque_scan",
        ("p", "q"),
        [
            ("input", ("p", "q"), "regular"),
            ("state", ("q", "q"), "regular"),
            ("output", ("p", "q"), "regular"),
        ],
        flops=lambda d: 48.0 * d["p"] * d["q"] * np.sqrt(
            np.asarray(d["q"], dtype=np.float64)
        ),
        measure=_measure,
        dim_ranges={"p": (64, 8192), "q": (32, 2048)},
    )
]
