"""Quickstart: install ADSALA, plan BLAS calls, execute them.

This mirrors the workflow of the paper's Fig. 1 end to end on the small
"laptop" platform preset so it finishes in a few seconds:

1. installation — gather simulated timing data for two routines, train and
   select the runtime-prediction models;
2. runtime — ask the library how many threads to use for specific calls and
   inspect the predicted speedup over the max-thread baseline;
3. execution — run a real matrix product through the blocked multi-threaded
   substrate with the chosen thread count.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import AdsalaBlas, install_adsala
from repro.machine import get_platform


def main() -> None:
    platform = get_platform("laptop")
    print("Installing ADSALA on:")
    print(platform.describe())
    print()

    bundle = install_adsala(
        platform=platform,
        routines=["dgemm", "dsymm"],
        n_samples=40,
        threads_per_shape=8,
        n_test_shapes=20,
        candidate_models=["LinearRegression", "DecisionTree", "XGBoost"],
        seed=0,
    )
    print("Selected models per routine:")
    for routine, model in bundle.best_models().items():
        print(f"  {routine:8s} -> {model}")
    print()

    blas = AdsalaBlas(bundle)

    print("Thread-count plans (simulated Gadi-style timings):")
    for routine, dims in [
        ("dgemm", dict(m=64, k=2048, n=64)),        # skinny: overhead-bound
        ("dgemm", dict(m=2048, k=2048, n=2048)),    # large: compute-bound
        ("dsymm", dict(m=1024, n=4096)),
    ]:
        plan = blas.plan(routine, **dims)
        print(
            f"  {routine} {dims}: use {plan.threads:>3d} threads "
            f"(max is {platform.max_threads}); predicted speedup "
            f"{plan.estimated_speedup:.2f}x over max threads"
        )
    print()

    rng = np.random.default_rng(0)
    A = rng.standard_normal((512, 384))
    B = rng.standard_normal((384, 256))
    C = blas.gemm(A, B)
    print(
        "Executed dgemm through the blocked multi-threaded substrate: "
        f"result {C.shape}, max abs error vs numpy = {np.abs(C - A @ B).max():.2e}"
    )


if __name__ == "__main__":
    main()
