"""Blocked Cholesky factorisation + triangular solves on ADSALA-planned BLAS.

This is the kind of higher-level dense solver the paper's introduction
motivates: a right-looking blocked Cholesky factorisation whose update steps
are SYRK/GEMM/TRSM calls, followed by forward/backward TRSM solves.  Every
BLAS Level 3 call goes through :class:`repro.AdsalaBlas`, so the thread count
of each call is chosen by the trained models; the example reports the calls
that were planned and checks the numerical result against NumPy.

Run with::

    python examples/blocked_cholesky_solver.py
"""

from collections import Counter

import numpy as np

from repro import AdsalaBlas, install_adsala
from repro.machine import get_platform


def blocked_cholesky(blas: AdsalaBlas, A: np.ndarray, block: int = 128) -> np.ndarray:
    """Lower-triangular Cholesky factor of symmetric positive-definite ``A``."""
    n = A.shape[0]
    L = np.array(A, dtype=float, copy=True)
    for start in range(0, n, block):
        end = min(start + block, n)
        # Diagonal block: unblocked factorisation (small).
        L[start:end, start:end] = np.linalg.cholesky(L[start:end, start:end])
        if end < n:
            # Panel update: L21 = A21 * L11^{-T}.  Expressed as a left-side
            # TRSM on the transposed panel: solve L11 @ Y = A21^T, L21 = Y^T.
            panel = blas.trsm(
                L[start:end, start:end],
                L[end:, start:end].T,
                lower=True,
            ).T
            L[end:, start:end] = panel
            # Trailing update: A22 -= L21 @ L21^T  ->  SYRK.
            update = blas.syrk(panel)
            L[end:, end:] -= update
    return np.tril(L)


def main() -> None:
    platform = get_platform("setonix")
    print(f"Installing ADSALA (dgemm, dsyrk, dtrsm) for {platform.name} ...")
    bundle = install_adsala(
        platform=platform,
        routines=["dgemm", "dsyrk", "dtrsm"],
        n_samples=40,
        threads_per_shape=8,
        n_test_shapes=12,
        candidate_models=["LinearRegression", "DecisionTree", "XGBoost"],
        seed=0,
    )
    for routine, model in bundle.best_models().items():
        print(f"  {routine:6s} -> {model}")
    print()

    blas = AdsalaBlas(bundle, execution_thread_cap=2, tile=128)
    runtime = blas.runtime

    # Build a well-conditioned SPD system and solve it.
    rng = np.random.default_rng(0)
    n = 640
    G = rng.standard_normal((n, n))
    A = G @ G.T + n * np.eye(n)
    b = rng.standard_normal((n, 4))

    L = blocked_cholesky(blas, A, block=160)
    # Solve A x = b via two triangular solves.
    y = blas.trsm(L, b, lower=True)
    x = blas.trsm(L.T, y, lower=False)

    residual = np.linalg.norm(A @ x - b) / np.linalg.norm(b)
    print(f"Blocked Cholesky solve of a {n}x{n} SPD system: relative residual {residual:.2e}")

    planned = Counter()
    planned_threads = {}
    # Summarise what the runtime planned (routine -> number of calls).
    print(f"\nBLAS calls planned by ADSALA: {runtime.calls_planned}")
    stats = runtime.cache_statistics()
    print(
        f"model evaluations: {stats['model_evaluations']}, "
        f"cache hits: {stats['cache_hits']}"
    )
    last = blas.last_plan
    print(
        f"last call: {last.routine} {last.dims} -> {last.threads} threads "
        f"(simulated speedup {last.estimated_speedup:.2f}x over {platform.max_threads} threads)"
    )

    assert residual < 1e-10, "solver lost accuracy"


if __name__ == "__main__":
    main()
