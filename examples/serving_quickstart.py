"""Serving quickstart: registry, micro-batched engine, telemetry, drift.

The production serving path on the small "laptop" preset, end to end:

1. install a two-routine bundle and save it versioned to disk;
2. open it through a :class:`~repro.serving.registry.ModelRegistry` (lazy
   per-routine loading — nothing is unpickled until first use);
3. push a skewed mixed-routine request stream through the micro-batching
   :class:`~repro.serving.engine.ServingEngine` and compare against a
   scalar ``plan()`` loop;
4. feed observed runtimes back in and watch the drift detector flag a
   routine for re-installation.

Run with::

    python examples/serving_quickstart.py
"""

import tempfile
import time

from repro import install_adsala
from repro.core.persistence import save_bundle
from repro.machine import get_platform
from repro.serving import ModelRegistry, ServingEngine, generate_workload


def main() -> None:
    platform = get_platform("laptop")
    bundle = install_adsala(
        platform=platform,
        routines=["dgemm", "dsyrk"],
        n_samples=20,
        threads_per_shape=5,
        n_test_shapes=8,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=0,
    )

    with tempfile.TemporaryDirectory() as root:
        directory = save_bundle(bundle, f"{root}/laptop-v1", bundle_version=1)
        registry = ModelRegistry(root)
        handle = registry.get(platform="laptop")
        print(f"Registry serves {handle.name} (bundle v{handle.bundle_version}, "
              f"schema v{handle.schema_version}) from {directory}")
        print(f"Loaded routines before first request: {handle.loaded_routines}")

        workload = generate_workload(
            handle.installed_routines, 400, distribution="skewed", seed=1
        )

        scalar_engine = ServingEngine(handle, max_batch_size=1)
        start = time.perf_counter()
        scalar_plans = scalar_engine.plan_many(r.as_tuple() for r in workload)
        scalar_rate = len(workload) / (time.perf_counter() - start)

        for installation in (handle.routines[r] for r in handle.loaded_routines):
            installation.predictor.clear_cache()
        engine = ServingEngine(handle, max_batch_size=64)
        start = time.perf_counter()
        plans = engine.plan_many(r.as_tuple() for r in workload)
        batched_rate = len(workload) / (time.perf_counter() - start)

        assert [p.threads for p in plans] == [p.threads for p in scalar_plans]
        print(f"Loaded routines after serving:      {handle.loaded_routines}")
        print(f"Scalar loop:   {scalar_rate:8.0f} plans/sec")
        print(f"Micro-batched: {batched_rate:8.0f} plans/sec "
              f"({batched_rate / scalar_rate:.1f}x, identical plans)")

        # Pretend the machine drifted: dgemm calls now run 60% slower than
        # the model predicts.  The rolling error statistic crosses the
        # threshold and flags the routine for re-installation.
        for plan in plans:
            slowdown = 1.6 if plan.routine == "dgemm" else 1.01
            engine.record_observation(plan, plan.predicted_time * slowdown)
        stats = engine.stats()
        for routine, snap in stats["routines"].items():
            print(f"  {routine}: {snap['plans']} plans, "
                  f"mean |err| {snap['mean_abs_rel_error']:.2f}")
        print(f"Re-install candidates: {engine.reinstall_candidates()}")


if __name__ == "__main__":
    main()
