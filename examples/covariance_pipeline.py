"""Covariance / Gram-matrix pipeline driven by ADSALA thread planning.

A classic SYRK-dominated workload: computing covariance matrices of feature
blocks of very different shapes (tall-skinny activity matrices, short-fat
sensor panels).  The interesting part is that the optimal thread count
differs wildly across these shapes — exactly the situation the paper's
runtime targets — so the example prints, for each block, the thread count
ADSALA picks and the simulated time saved versus always using every hardware
thread.

Run with::

    python examples/covariance_pipeline.py
"""

import numpy as np

from repro import AdsalaBlas, install_adsala
from repro.machine import get_platform


# (name, n_features, n_observations) — covariance is an n_features^2 SYRK
# over n_observations columns.
WORKLOAD = [
    ("gene-expression panel  ", 256, 60000),
    ("sensor array snapshot  ", 4000, 900),
    ("image patch dictionary ", 1024, 8192),
    ("portfolio returns       ", 64, 150000),
    ("embedding batch         ", 2048, 2048),
]


def main() -> None:
    platform = get_platform("gadi")
    print(f"Installing ADSALA (dsyrk) for {platform.name} ...")
    bundle = install_adsala(
        platform=platform,
        routines=["dsyrk"],
        n_samples=50,
        threads_per_shape=10,
        n_test_shapes=15,
        candidate_models=["LinearRegression", "DecisionTree", "XGBoost"],
        seed=0,
    )
    print(f"  selected model: {bundle.best_models()['dsyrk']}\n")

    blas = AdsalaBlas(bundle, execution_thread_cap=2)
    simulator = bundle.simulator

    print(f"{'block':<24s} {'shape':>14s} {'threads':>8s} {'baseline':>10s} "
          f"{'ADSALA':>10s} {'speedup':>8s}")
    total_baseline = 0.0
    total_adsala = 0.0
    for name, n_features, n_observations in WORKLOAD:
        dims = {"n": n_features, "k": n_observations}
        plan = blas.plan("dsyrk", **dims)
        baseline = simulator.time_at_max_threads("dsyrk", dims)
        optimised = simulator.time("dsyrk", dims, plan.threads)
        total_baseline += baseline
        total_adsala += optimised
        print(
            f"{name:<24s} {n_features:>6d}x{n_observations:<7d} {plan.threads:>8d} "
            f"{baseline * 1e3:>8.1f}ms {optimised * 1e3:>8.1f}ms "
            f"{baseline / optimised:>7.2f}x"
        )

    print("-" * 80)
    print(
        f"{'pipeline total':<24s} {'':>14s} {'':>8s} {total_baseline * 1e3:>8.1f}ms "
        f"{total_adsala * 1e3:>8.1f}ms {total_baseline / total_adsala:>7.2f}x"
    )

    # Execute one real (scaled-down) covariance to show the numerical path.
    rng = np.random.default_rng(1)
    X = rng.standard_normal((300, 5000))
    X -= X.mean(axis=1, keepdims=True)
    cov = blas.syrk(X) / (X.shape[1] - 1)
    reference = np.cov(X)
    print(
        "\nExecuted one covariance through the blocked substrate: "
        f"max abs error vs numpy.cov = {np.abs(cov - reference).max():.2e}"
    )


if __name__ == "__main__":
    main()
