"""Compare ADSALA installations on the two simulated HPC platforms.

Reproduces, at example scale, the cross-platform story of the paper's
Tables IV/V and VII: the winning model and the achievable speedup differ
between the AMD (Setonix/BLIS) and Intel (Gadi/MKL) machines, and between
routines on the same machine.

Run with::

    python examples/platform_comparison.py
"""

import numpy as np

from repro import install_adsala
from repro.core.evalcost import estimate_native_eval_time
from repro.machine import get_platform

ROUTINES = ["dgemm", "dsymm", "dsyrk", "dtrsm"]


def evaluate(bundle):
    """Mean speedup per routine on the held-out test shapes (eval time included)."""
    simulator = bundle.simulator
    summary = {}
    for routine, installation in bundle.routines.items():
        predictor = installation.predictor
        eval_time = estimate_native_eval_time(
            predictor.model,
            n_candidates=len(predictor.candidate_threads),
            n_features=predictor.pipeline.n_features_out_,
        )
        ratios = []
        for dims in installation.test_shapes:
            threads = predictor.predict_threads(dims, use_cache=False)
            ratios.append(
                simulator.time_at_max_threads(routine, dims)
                / (simulator.time(routine, dims, threads) + eval_time)
            )
        summary[routine] = (installation.best_model_name, float(np.mean(ratios)))
    return summary


def main() -> None:
    results = {}
    for platform_name in ("setonix", "gadi"):
        platform = get_platform(platform_name)
        print(f"Installing ADSALA on {platform_name} "
              f"({platform.physical_cores} cores, {platform.max_threads} hardware threads, "
              f"{platform.baseline_blas.upper()} baseline) ...")
        bundle = install_adsala(
            platform=platform,
            routines=ROUTINES,
            n_samples=40,
            threads_per_shape=10,
            n_test_shapes=25,
            candidate_models=[
                "LinearRegression", "BayesianRidge", "DecisionTree", "XGBoost", "KNN",
            ],
            seed=0,
        )
        results[platform_name] = evaluate(bundle)
    print()

    header = f"{'routine':<8s}" + "".join(
        f"{name + ' model':>18s}{name + ' speedup':>18s}" for name in results
    )
    print(header)
    print("-" * len(header))
    for routine in ROUTINES:
        line = f"{routine:<8s}"
        for platform_name in results:
            model, speedup = results[platform_name][routine]
            line += f"{model:>18s}{speedup:>17.2f}x"
        print(line)

    print()
    for platform_name, summary in results.items():
        speedups = [s for _, s in summary.values()]
        print(
            f"{platform_name}: mean speedup across routines "
            f"{np.mean(speedups):.2f}x (min {min(speedups):.2f}x, max {max(speedups):.2f}x)"
        )
    print(
        "\nAs in the paper, SYMM shows the most headroom on both machines and "
        "the winning model is platform- and routine-dependent."
    )


if __name__ == "__main__":
    main()
