"""Paper Table IV: best model per subroutine on Setonix (BLIS baseline).

Expected shape: tree-ensemble models (XGBoost-style) win most routines, with
the occasional linear/Bayesian model on routines where prediction latency
matters more than accuracy.
"""

from repro.harness.experiments import table4_model_selection_setonix
from repro.harness.tables import format_table

from benchmarks.conftest import run_once


TREE_MODELS = {"XGBoost", "LightGBM", "RandomForest", "DecisionTree", "AdaBoost"}


def test_table4_model_selection_setonix(benchmark, record):
    rows = run_once(benchmark, table4_model_selection_setonix)
    text = format_table(
        rows, title="Table IV: best model per subroutine on Setonix (simulated)"
    )
    record("table4_model_selection_setonix", text)

    assert len(rows) == 12  # six routines x two precisions
    best_models = [row["best_model"] for row in rows]
    # A healthy share of routines picks a tree-based model (the paper's
    # Table IV is dominated by XGBoost; at quick-preset data sizes linear
    # models win more often, see EXPERIMENTS.md).
    assert sum(model in TREE_MODELS for model in best_models) >= 3
    # The selected configuration should never lose to the max-thread baseline
    # by more than a few percent on any routine.
    assert all(row["estimated_mean_speedup"] > 0.9 for row in rows)
    # ... and should show a positive win for SYMM, the routine with the most
    # headroom (paper Table VII).
    symm_rows = [row for row in rows if "symm" in row["subroutine"]]
    assert max(row["estimated_mean_speedup"] for row in symm_rows) > 1.05
