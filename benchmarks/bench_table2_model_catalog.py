"""Paper Table II: comparison of candidate ML model characteristics."""

from repro.harness.experiments import table2_model_catalog
from repro.harness.tables import format_table

from benchmarks.conftest import run_once


def test_table2_model_catalog(benchmark, record):
    rows = run_once(benchmark, table2_model_catalog)
    text = format_table(rows, title="Table II: comparisons of ML model characteristics")
    record("table2_model_catalog", text)

    assert len(rows) == 10
    linear = [r for r in rows if r["category"] == "Linear Models"]
    assert {r["model"] for r in linear} == {"LinearRegression", "ElasticNet", "BayesianRidge"}
    assert all(r["parametric"] == "No" for r in rows if r["category"] != "Linear Models")
