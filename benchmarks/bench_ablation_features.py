"""Ablation: per-thread features (x/nt terms of paper Table III) on vs. off.

The per-thread features encode how the FLOP and memory volumes are divided
across the team; dropping them forces the model to learn the thread-count
interaction from the raw ``nt`` column alone.  The ablation compares the
achieved speedup of an XGBoost-style model with the full Table III feature
set against the same model trained on the truncated set.
"""

import numpy as np

from repro.core.gather import DataGatherer
from repro.core.predictor import ThreadPredictor
from repro.harness.tables import format_table
from repro.machine.platforms import get_platform
from repro.machine.simulator import TimingSimulator
from repro.ml.boosting import GradientBoostingRegressor
from repro.preprocessing.pipeline import PreprocessingPipeline

from benchmarks.conftest import run_once


def _mean_speedup(simulator, routine, predictor, test_shapes, column_subset=None):
    ratios = []
    for dims in test_shapes:
        threads = predictor.predict_threads(dims, use_cache=False)
        ratios.append(
            simulator.time_at_max_threads(routine, dims)
            / simulator.time(routine, dims, threads)
        )
    return float(np.mean(ratios))


class _ColumnSubsetPipeline:
    """Wrap a fitted pipeline, restricting the raw feature matrix first."""

    def __init__(self, inner: PreprocessingPipeline, keep: list):
        self._inner = inner
        self._keep = keep
        self.n_features_out_ = inner.n_features_out_

    def transform(self, X):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return self._inner.transform(X[:, self._keep])


def test_ablation_per_thread_features(benchmark, record):
    platform = get_platform("gadi")
    simulator = TimingSimulator(platform, seed=0)
    routine = "dgemm"
    gatherer = DataGatherer(simulator, routine, n_shapes=50, threads_per_shape=10, seed=0)
    dataset = gatherer.gather()
    test_shapes = gatherer.gather_test_set(25)

    full_names = dataset.feature_names
    truncated_keep = [
        i for i, name in enumerate(full_names) if "/nt" not in name
    ]

    def run():
        X = dataset.feature_matrix()
        y = dataset.target()
        results = {}

        # Full Table III feature set.
        full_pipeline = PreprocessingPipeline(feature_names=full_names, remove_outliers=False)
        X_full, y_full = full_pipeline.fit_transform(X, y)
        full_model = GradientBoostingRegressor(n_estimators=60, max_depth=4).fit(X_full, y_full)
        full_predictor = ThreadPredictor(
            routine, full_pipeline, full_model, platform.candidate_thread_counts(), "XGBoost"
        )
        results["with_per_thread_features"] = _mean_speedup(
            simulator, routine, full_predictor, test_shapes
        )

        # Truncated feature set (no x/nt terms).
        truncated_names = [full_names[i] for i in truncated_keep]
        truncated_pipeline = PreprocessingPipeline(
            feature_names=truncated_names, remove_outliers=False
        )
        X_truncated, y_truncated = truncated_pipeline.fit_transform(X[:, truncated_keep], y)
        truncated_model = GradientBoostingRegressor(n_estimators=60, max_depth=4).fit(
            X_truncated, y_truncated
        )
        wrapped = _ColumnSubsetPipeline(truncated_pipeline, truncated_keep)
        truncated_predictor = ThreadPredictor(
            routine, wrapped, truncated_model, platform.candidate_thread_counts(), "XGBoost"
        )
        results["without_per_thread_features"] = _mean_speedup(
            simulator, routine, truncated_predictor, test_shapes
        )
        return results

    results = run_once(benchmark, run)
    record(
        "ablation_per_thread_features",
        format_table(
            [{k: round(v, 3) for k, v in results.items()}],
            title="Ablation: per-thread (x/nt) features for dgemm on Gadi (mean speedup)",
        ),
    )

    # The full feature set should not be worse than the truncated one.
    assert (
        results["with_per_thread_features"]
        >= results["without_per_thread_features"] - 0.05
    )
    # And both configurations keep the library at or above the baseline.
    assert results["with_per_thread_features"] > 0.95
