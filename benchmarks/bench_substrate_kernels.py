"""Micro-benchmarks of the execution substrate itself.

These are conventional pytest-benchmark measurements (multiple rounds) of
the blocked BLAS kernels and of the runtime predictor, on the local machine.
They are not paper artefacts; they document the cost of this package's own
moving parts (useful when judging the prediction-latency trade-off).
"""

import numpy as np
import pytest

from repro.blas.threaded import ThreadedBlas
from repro.harness.experiments import QUICK_CONFIG, get_bundle


SIZE = 384


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    return rng.normal(size=(SIZE, SIZE)), rng.normal(size=(SIZE, SIZE))


@pytest.mark.parametrize("threads", [1, 2])
def test_bench_blocked_gemm(benchmark, operands, threads):
    A, B = operands
    executor = ThreadedBlas(n_threads=threads, tile=128)
    result = benchmark(lambda: executor.gemm(A, B))
    assert result.shape == (SIZE, SIZE)


def test_bench_blocked_syrk(benchmark, operands):
    A, _ = operands
    executor = ThreadedBlas(n_threads=2, tile=128)
    result = benchmark(lambda: executor.syrk(A))
    assert result.shape == (SIZE, SIZE)


def test_bench_blocked_trsm(benchmark, operands):
    A, B = operands
    A = A + SIZE * np.eye(SIZE)
    executor = ThreadedBlas(n_threads=2, tile=128)
    result = benchmark(lambda: executor.trsm(A, B))
    assert result.shape == (SIZE, SIZE)


def test_bench_predictor_latency(benchmark):
    """Wall-clock latency of one thread-count prediction (Python runtime)."""
    bundle = get_bundle("gadi", ["dgemm"], QUICK_CONFIG)
    predictor = bundle.predictor("dgemm")
    dims = {"m": 2048, "k": 2048, "n": 2048}
    predictor.clear_cache()
    threads = benchmark(lambda: predictor.plan(dims, use_cache=False).threads)
    assert 1 <= threads <= bundle.platform.max_threads


def test_bench_simulator_evaluation(benchmark):
    """Latency of one simulated timing query (the installer's inner loop)."""
    from repro.machine.platforms import get_platform
    from repro.machine.simulator import TimingSimulator

    simulator = TimingSimulator(get_platform("gadi"), seed=0)
    value = benchmark(lambda: simulator.time("dgemm", {"m": 1024, "k": 1024, "n": 1024}, 48))
    assert value > 0
