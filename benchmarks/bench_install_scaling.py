"""Benchmark: installation-pipeline scaling (batch timing, flat trees, jobs).

Tracks the perf trajectory of the three hot paths rebuilt for batch /
process-parallel execution:

* **data gathering** — scalar per-call simulator loop vs the vectorised
  ``TimingSimulator.time_batch`` campaign (one array pass per routine);
* **end-to-end installation** — the pre-vectorisation reference pipeline
  (scalar gather, per-shape selection loops, per-feature split search,
  recursive tree prediction — forced via ``repro.ml.tree.reference_mode``)
  vs the optimised serial pipeline vs the process-parallel pipeline on
  2+ jobs;
* **runtime prediction** — the compiled fused feature→preprocess→ensemble
  kernel (PR 3) vs the recursive reference, in µs per ``plan`` call
  (``benchmarks/bench_plan_latency.py`` tracks this path in detail).

Results land in ``benchmarks/results/install_scaling.txt`` so the numbers
are tracked from this PR onward.  Note the parallel row only beats the
optimised serial row when the machine actually has >1 usable core; the
asserted end-to-end speedup takes the best optimised mode.
"""

import gc
import os
import time

from repro.core.gather import DataGatherer
from repro.core.install import install_adsala
from repro.core.predictor import ThreadPredictor
from repro.harness.experiments import QUICK_CONFIG
from repro.harness.tables import format_table
from repro.machine.platforms import get_platform
from repro.machine.simulator import TimingSimulator
from repro.ml import tree as tree_mod

from benchmarks.conftest import run_once

#: The six double-precision routines of the paper's Table I.
ROUTINES = ["dgemm", "dsymm", "dsyrk", "dsyr2k", "dtrmm", "dtrsm"]

PREDICT_REPEATS = 200
PREDICT_DIMS = {"m": 1024, "k": 1024, "n": 1024}


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def test_install_scaling(benchmark, record, record_json):
    platform = get_platform("gadi")
    config = QUICK_CONFIG
    install_kwargs = dict(
        platform=platform,
        routines=ROUTINES,
        n_samples=config.n_samples,
        threads_per_shape=config.threads_per_shape,
        n_test_shapes=config.n_test_shapes,
        candidate_models=list(config.candidate_models),
        seed=config.seed,
    )
    n_jobs = int(os.environ.get("ADSALA_JOBS", "0")) or max(
        2, min(6, os.cpu_count() or 1)
    )

    def run():
        # -- data gathering: scalar reference vs one vectorised batch pass --
        gather_scalar_s = 0.0
        gather_batch_s = 0.0
        for routine in ROUTINES:
            def make(routine=routine):
                return DataGatherer(
                    TimingSimulator(platform, seed=config.seed),
                    routine,
                    n_shapes=config.n_samples,
                    threads_per_shape=config.threads_per_shape,
                    seed=config.seed,
                )
            scalar_ds, elapsed = _timed(lambda: make().gather(use_batch=False))
            gather_scalar_s += elapsed
            batch_ds, elapsed = _timed(lambda: make().gather(use_batch=True))
            gather_batch_s += elapsed
            assert scalar_ds.times == batch_ds.times  # bit-identical campaigns

        # -- end-to-end installation: reference vs optimised vs parallel --
        # Best-of-two timings for the serial modes, dropping each bundle
        # before the next timed phase (holding three full bundles inflates
        # GC/memory pressure enough to skew single runs).
        install_reference_s = float("inf")
        for attempt in range(2):
            gc.collect()
            with tree_mod.reference_mode():
                bundle, elapsed = _timed(
                    lambda: install_adsala(
                        **install_kwargs, n_jobs=1, use_batch_timing=False
                    )
                )
            install_reference_s = min(install_reference_s, elapsed)
            reference_models = bundle.best_models()
            del bundle

        install_serial_s = float("inf")
        for attempt in range(2):
            gc.collect()
            bundle_serial, elapsed = _timed(
                lambda: install_adsala(**install_kwargs, n_jobs=1)
            )
            install_serial_s = min(install_serial_s, elapsed)

        gc.collect()
        bundle_parallel, install_parallel_s = _timed(
            lambda: install_adsala(**install_kwargs, n_jobs=n_jobs)
        )
        assert (
            reference_models
            == bundle_serial.best_models()
            == bundle_parallel.best_models()
        )
        del bundle_parallel

        # -- per-call prediction latency: flat descent vs recursive walk --
        # Use the fitted RandomForest candidate (the heaviest t_eval in the
        # pool) so the comparison actually exercises tree inference.
        installation = bundle_serial.routines["dgemm"]
        report = installation.selection
        predictor = ThreadPredictor(
            routine="dgemm",
            pipeline=report._pipeline,
            model=report._fitted_models["RandomForest"],
            candidate_threads=platform.candidate_thread_counts(),
            model_name="RandomForest",
        )
        predictor.predict_runtimes(PREDICT_DIMS)  # warm-up
        _, flat_s = _timed(
            lambda: [
                predictor.plan(PREDICT_DIMS, use_cache=False)
                for _ in range(PREDICT_REPEATS)
            ]
        )
        with tree_mod.reference_mode():
            _, reference_s = _timed(
                lambda: [
                    predictor.plan(PREDICT_DIMS, use_cache=False)
                    for _ in range(PREDICT_REPEATS)
                ]
            )

        return {
            "gather_scalar_s": gather_scalar_s,
            "gather_batch_s": gather_batch_s,
            "install_reference_s": install_reference_s,
            "install_serial_s": install_serial_s,
            "install_parallel_s": install_parallel_s,
            "n_jobs": n_jobs,
            "predict_reference_us": reference_s / PREDICT_REPEATS * 1e6,
            "predict_flat_us": flat_s / PREDICT_REPEATS * 1e6,
        }

    result = run_once(benchmark, run)
    gather_speedup = result["gather_scalar_s"] / result["gather_batch_s"]
    best_install_s = min(result["install_serial_s"], result["install_parallel_s"])
    install_speedup = result["install_reference_s"] / best_install_s
    predict_speedup = result["predict_reference_us"] / result["predict_flat_us"]

    rows = [
        {
            "stage": "data gathering (6 routines)",
            "reference_s": round(result["gather_scalar_s"], 3),
            "optimized_s": round(result["gather_batch_s"], 3),
            "speedup": round(gather_speedup, 1),
            "notes": "scalar simulator loop vs one time_batch pass",
        },
        {
            "stage": "install end-to-end (serial)",
            "reference_s": round(result["install_reference_s"], 2),
            "optimized_s": round(result["install_serial_s"], 2),
            "speedup": round(
                result["install_reference_s"] / result["install_serial_s"], 2
            ),
            "notes": "batch timing + vectorised/flat trees, 1 job",
        },
        {
            "stage": f"install end-to-end ({result['n_jobs']} jobs)",
            "reference_s": round(result["install_reference_s"], 2),
            "optimized_s": round(result["install_parallel_s"], 2),
            "speedup": round(
                result["install_reference_s"] / result["install_parallel_s"], 2
            ),
            "notes": "adds per-routine process fan-out",
        },
        {
            "stage": "predictor plan() us/call",
            "reference_s": round(result["predict_reference_us"], 1),
            "optimized_s": round(result["predict_flat_us"], 1),
            "speedup": round(predict_speedup, 2),
            "notes": "recursive node walk vs compiled fused kernel",
        },
    ]
    record(
        "install_scaling",
        format_table(
            rows,
            title=(
                "Install-pipeline scaling: reference vs batch/flat/parallel "
                f"(quick preset, {len(ROUTINES)} routines, "
                f"cpu_count={os.cpu_count()})"
            ),
        ),
    )
    record_json(
        "install_scaling",
        [
            {
                "stage": "data gathering (6 routines)",
                "reference_s": result["gather_scalar_s"],
                "optimized_s": result["gather_batch_s"],
                "speedup": gather_speedup,
            },
            {
                "stage": "install end-to-end (serial)",
                "reference_s": result["install_reference_s"],
                "optimized_s": result["install_serial_s"],
                "speedup": result["install_reference_s"] / result["install_serial_s"],
            },
            {
                "stage": f"install end-to-end ({result['n_jobs']} jobs)",
                "reference_s": result["install_reference_s"],
                "optimized_s": result["install_parallel_s"],
                "speedup": result["install_reference_s"] / result["install_parallel_s"],
            },
            {
                "stage": "predictor plan()",
                "reference_s": result["predict_reference_us"] / 1e6,
                "optimized_s": result["predict_flat_us"] / 1e6,
                "speedup": predict_speedup,
            },
        ],
    )

    # The batch simulator path must collapse the gathering campaign.
    assert gather_speedup >= 5.0
    # The optimised pipeline (best of serial / 2+ jobs) must at least halve
    # the end-to-end installation time.
    assert install_speedup >= 2.0
    # Flattening must not be slower than the recursive reference.
    assert predict_speedup > 1.0
