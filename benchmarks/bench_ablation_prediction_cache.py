"""Ablation: the last-call prediction cache (paper Section III-B).

The runtime remembers the previous call's dimensions and prediction so that
back-to-back identical BLAS calls skip the model evaluation.  This benchmark
measures the per-call planning latency with and without the cache for a
repeated-call workload.
"""

import time

from repro.harness.experiments import QUICK_CONFIG, get_bundle
from repro.harness.tables import format_table

from benchmarks.conftest import run_once

REPEATS = 200
DIMS = {"m": 1024, "k": 1024, "n": 1024}


def test_ablation_prediction_cache(benchmark, record):
    bundle = get_bundle("gadi", ["dgemm"], QUICK_CONFIG)
    predictor = bundle.predictor("dgemm")

    def timed_loop(use_cache: bool) -> float:
        predictor.clear_cache()
        start = time.perf_counter()
        for _ in range(REPEATS):
            predictor.plan(DIMS, use_cache=use_cache)
        return (time.perf_counter() - start) / REPEATS

    def run():
        return {
            "cached_us_per_call": timed_loop(True) * 1e6,
            "uncached_us_per_call": timed_loop(False) * 1e6,
        }

    result = run_once(benchmark, run)
    result["speedup"] = round(result["uncached_us_per_call"] / result["cached_us_per_call"], 1)
    record(
        "ablation_prediction_cache",
        format_table(
            [
                {
                    "cached_us_per_call": round(result["cached_us_per_call"], 2),
                    "uncached_us_per_call": round(result["uncached_us_per_call"], 2),
                    "cache_speedup": result["speedup"],
                }
            ],
            title="Ablation: last-call prediction cache (repeated identical dgemm calls)",
        ),
    )

    # Serving repeated identical calls from the cache must be much cheaper
    # than re-evaluating the model.
    assert result["cached_us_per_call"] < result["uncached_us_per_call"] / 3

    # And the cache must not change the decision.
    predictor.clear_cache()
    uncached_threads = predictor.plan(DIMS, use_cache=False).threads
    cached_threads = predictor.plan(DIMS, use_cache=True).threads
    assert cached_threads == uncached_threads
