"""Ablation: the prediction cache (paper Section III-B, generalised to LRU).

The runtime remembers recently seen call dimensions and their predictions so
that repeated BLAS calls skip the model evaluation.  Two experiments:

* the paper's original repeated-identical-call workload, cached vs uncached;
* a capacity sweep over a *cycling* workload (a handful of problem shapes
  alternating round-robin, the pattern of blocked solvers) — the classic
  LRU pathology: any capacity below the cycle length yields zero hits, any
  capacity at or above it serves the steady state entirely from cache.
"""

import time

from repro.core.predictor import ThreadPredictor
from repro.harness.experiments import QUICK_CONFIG, get_bundle
from repro.harness.tables import format_table

from benchmarks.conftest import run_once

REPEATS = 200
DIMS = {"m": 1024, "k": 1024, "n": 1024}

#: Cycling-workload trace: distinct shapes visited round-robin.
CYCLE_SHAPES = 8
CYCLE_ROUNDS = 40
CAPACITIES = (1, 2, 4, 8, 16)


def test_ablation_prediction_cache(benchmark, record):
    bundle = get_bundle("gadi", ["dgemm"], QUICK_CONFIG)
    predictor = bundle.predictor("dgemm")

    def timed_loop(use_cache: bool) -> float:
        predictor.clear_cache()
        start = time.perf_counter()
        for _ in range(REPEATS):
            predictor.plan(DIMS, use_cache=use_cache)
        return (time.perf_counter() - start) / REPEATS

    def run():
        return {
            "cached_us_per_call": timed_loop(True) * 1e6,
            "uncached_us_per_call": timed_loop(False) * 1e6,
        }

    result = run_once(benchmark, run)
    result["speedup"] = round(result["uncached_us_per_call"] / result["cached_us_per_call"], 1)
    record(
        "ablation_prediction_cache",
        format_table(
            [
                {
                    "cached_us_per_call": round(result["cached_us_per_call"], 2),
                    "uncached_us_per_call": round(result["uncached_us_per_call"], 2),
                    "cache_speedup": result["speedup"],
                }
            ],
            title="Ablation: last-call prediction cache (repeated identical dgemm calls)",
        ),
    )

    # Serving repeated identical calls from the cache must be much cheaper
    # than re-evaluating the model.
    assert result["cached_us_per_call"] < result["uncached_us_per_call"] / 3

    # And the cache must not change the decision.
    predictor.clear_cache()
    uncached_threads = predictor.plan(DIMS, use_cache=False).threads
    cached_threads = predictor.plan(DIMS, use_cache=True).threads
    assert cached_threads == uncached_threads


def test_ablation_cache_capacity_sweep(benchmark, record):
    bundle = get_bundle("gadi", ["dgemm"], QUICK_CONFIG)
    base = bundle.predictor("dgemm")
    trace = [
        {"m": 256 * (i + 1), "k": 1024, "n": 512 + 128 * i}
        for i in range(CYCLE_SHAPES)
    ] * CYCLE_ROUNDS

    def run():
        rows = []
        for capacity in CAPACITIES:
            predictor = ThreadPredictor(
                routine=base.routine,
                pipeline=base.pipeline,
                model=base.model,
                candidate_threads=base.candidate_threads,
                model_name=base.model_name,
                cache_capacity=capacity,
            )
            start = time.perf_counter()
            for dims in trace:
                predictor.plan(dims)
            elapsed = time.perf_counter() - start
            info = predictor.cache_info()
            rows.append(
                {
                    "capacity": capacity,
                    "hit_rate": round(info["hits"] / len(trace), 3),
                    "us_per_call": round(elapsed / len(trace) * 1e6, 2),
                    "model_evaluations": predictor.n_model_evaluations,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    record(
        "ablation_prediction_cache_capacity",
        format_table(
            rows,
            title=(
                f"Ablation: LRU capacity on a cycling workload "
                f"({CYCLE_SHAPES} shapes x {CYCLE_ROUNDS} rounds)"
            ),
        ),
    )

    by_capacity = {row["capacity"]: row for row in rows}
    # LRU below the cycle length thrashes: every lookup misses.
    assert by_capacity[1]["hit_rate"] == 0.0
    assert by_capacity[4]["hit_rate"] == 0.0
    # At or above the cycle length only the first round misses.
    expected_steady = 1.0 - 1.0 / CYCLE_ROUNDS
    assert by_capacity[8]["hit_rate"] >= expected_steady - 1e-9
    assert by_capacity[16]["hit_rate"] >= expected_steady - 1e-9
    # Serving from cache must be much cheaper than re-evaluating.
    assert by_capacity[16]["us_per_call"] < by_capacity[1]["us_per_call"] / 3
