"""Benchmark: micro-batched serving engine vs a looped scalar ``plan()``.

The serving refactor's core bet is that answering plan requests in
micro-batches — one ``predict_runtimes_batch`` + one ``time_batch`` pass
per (routine, batch) group — beats a loop of scalar ``plan()`` calls, which
pays feature construction, preprocessing, model evaluation and two scalar
simulator calls *per request*.

Measured over three request mixes on a mixed-routine bundle (the serving
regimes from :mod:`repro.serving.workload`):

* ``uniform`` — fresh shapes per request, cache-hostile: batching does all
  the work (this row backs the >=3x acceptance criterion);
* ``cycling`` — a small shape pool, the LRU cache's home turf: both paths
  mostly hit the cache, batching keeps only its queue-drain overhead;
* ``skewed`` — Zipf mix: the realistic middle ground.

Scalar and batched paths produce bit-identical plans (asserted here and in
``tests/serving/test_engine.py``), so this is a pure-throughput comparison.
Results land in ``benchmarks/results/serving_throughput.txt``.
"""

import time

from repro.core.install import install_adsala
from repro.harness.tables import format_table
from repro.machine.platforms import get_platform
from repro.serving.engine import ServingEngine
from repro.serving.workload import generate_workload

from benchmarks.conftest import run_once

ROUTINES = ["dgemm", "dsymm", "dsyrk"]
N_REQUESTS = 600
BATCH_SIZE = 64
MIN_UNIFORM_SPEEDUP = 3.0


def _clear_caches(bundle):
    for installation in bundle.routines.values():
        installation.predictor.clear_cache()


def _throughput(bundle, workload, max_batch_size, use_cache=True):
    """Plans/sec of one engine pass over the workload (caches cleared first)."""
    _clear_caches(bundle)
    engine = ServingEngine(bundle, max_batch_size=max_batch_size, use_cache=use_cache)
    start = time.perf_counter()
    plans = engine.plan_many(request.as_tuple() for request in workload)
    elapsed = time.perf_counter() - start
    return len(plans) / elapsed, plans


def test_serving_throughput(benchmark, record, record_json):
    platform = get_platform("gadi")
    bundle = install_adsala(
        platform=platform,
        routines=ROUTINES,
        n_samples=24,
        threads_per_shape=6,
        n_test_shapes=8,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=0,
    )

    def run():
        rows = []
        speedups = {}
        for mix in ("uniform", "cycling", "skewed"):
            workload = generate_workload(
                ROUTINES, N_REQUESTS, distribution=mix, seed=17, pool_size=8
            )
            # Scalar reference: micro-batch of one per request — the exact
            # per-call path AdsalaRuntime.plan() takes.
            scalar_rate, scalar_plans = _throughput(bundle, workload, max_batch_size=1)
            batched_rate, batched_plans = _throughput(
                bundle, workload, max_batch_size=BATCH_SIZE
            )
            assert [p.threads for p in scalar_plans] == [
                p.threads for p in batched_plans
            ], f"scalar/batched thread choices diverged on {mix}"
            speedups[mix] = batched_rate / scalar_rate
            rows.append(
                {
                    "workload": mix,
                    "requests": N_REQUESTS,
                    "scalar_plans_per_s": round(scalar_rate),
                    "batched_plans_per_s": round(batched_rate),
                    "speedup": round(batched_rate / scalar_rate, 2),
                }
            )
        return rows, speedups

    rows, speedups = run_once(benchmark, run)
    text = format_table(
        rows,
        title=(
            f"Serving throughput: micro-batched engine (batch={BATCH_SIZE}) vs "
            f"scalar plan() loop ({len(ROUTINES)} routines, gadi)"
        ),
    )
    print()
    print(text)
    record("serving_throughput", text)
    record_json(
        "serving_throughput",
        [
            {
                "stage": f"serving {row['workload']} mix ({N_REQUESTS} requests)",
                "reference_s": N_REQUESTS / row["scalar_plans_per_s"],
                "optimized_s": N_REQUESTS / row["batched_plans_per_s"],
                "speedup": row["speedup"],
                "scalar_plans_per_s": row["scalar_plans_per_s"],
                "batched_plans_per_s": row["batched_plans_per_s"],
            }
            for row in rows
        ],
    )
    assert speedups["uniform"] >= MIN_UNIFORM_SPEEDUP, (
        f"micro-batching speedup {speedups['uniform']:.2f}x on the uniform "
        f"mixed-shape workload is below the {MIN_UNIFORM_SPEEDUP}x target"
    )
