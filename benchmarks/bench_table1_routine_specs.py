"""Paper Table I: BLAS Level 3 routine specifications."""

from repro.harness.experiments import table1_routine_specs
from repro.harness.tables import format_table

from benchmarks.conftest import run_once


def test_table1_routine_specs(benchmark, record):
    rows = run_once(benchmark, table1_routine_specs)
    text = format_table(rows, title="Table I: specifications of BLAS level III subroutines")
    record("table1_routine_specs", text)

    assert len(rows) == 6
    gemm = next(r for r in rows if r["routine"] == "GEMM")
    assert gemm["dims"] == 3 and gemm["B_shape"] == "kxn"
    trsm = next(r for r in rows if r["routine"] == "TRSM")
    assert trsm["A_type"] == "triangular"
