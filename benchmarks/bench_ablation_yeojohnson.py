"""Ablation: Yeo-Johnson feature transformation on vs. off.

The paper reports a 10-20% RMSE reduction for linear regression when the
Yeo-Johnson transform is applied, with little effect on the other models.
On the *simulated* timing data of this reproduction the effect goes the
other way for the raw-RMSE metric: the synthetic runtimes are close to
polynomial in the raw size features, so power-transforming the features
makes the linear fit worse in absolute RMSE (see EXPERIMENTS.md for the
discussion of this deviation).  What matters for the library is the end
metric — the achieved speedup — which this ablation shows is essentially
insensitive to the transform for the model that actually gets selected.
"""

from repro.core.gather import DataGatherer
from repro.core.selection import evaluate_candidates
from repro.harness.tables import format_table
from repro.machine.platforms import get_platform
from repro.machine.simulator import TimingSimulator

from benchmarks.conftest import run_once

CANDIDATES = ["LinearRegression", "BayesianRidge", "XGBoost", "DecisionTree"]


def test_ablation_yeojohnson_transform(benchmark, record):
    platform = get_platform("gadi")
    simulator = TimingSimulator(platform, seed=0)
    gatherer = DataGatherer(simulator, "dgemm", n_shapes=50, threads_per_shape=10, seed=0)
    dataset = gatherer.gather()
    test_shapes = gatherer.gather_test_set(20)

    def run():
        results = {}
        for use_yj in (True, False):
            report = evaluate_candidates(
                dataset,
                simulator,
                test_shapes,
                candidate_names=CANDIDATES,
                use_yeo_johnson=use_yj,
                seed=0,
            )
            results[use_yj] = {e.model_name: e for e in report.evaluations}
        return results

    results = run_once(benchmark, run)

    rows = []
    for model in CANDIDATES:
        with_yj = results[True][model]
        without_yj = results[False][model]
        rows.append(
            {
                "model": model,
                "rmse_with_yj": f"{with_yj.rmse:.4g}",
                "rmse_without_yj": f"{without_yj.rmse:.4g}",
                "speedup_with_yj": round(with_yj.estimated_mean_speedup, 3),
                "speedup_without_yj": round(without_yj.estimated_mean_speedup, 3),
            }
        )
    record(
        "ablation_yeojohnson",
        format_table(rows, title="Ablation: Yeo-Johnson transform (dgemm on Gadi, simulated)"),
    )

    # Every configuration trains and evaluates successfully.
    for row in rows:
        assert float(row["rmse_with_yj"]) > 0
        assert float(row["rmse_without_yj"]) > 0

    # The transform visibly changes the linear models (it is not a no-op)...
    linear = next(r for r in rows if r["model"] == "LinearRegression")
    assert float(linear["rmse_with_yj"]) != float(linear["rmse_without_yj"])

    # ...but the end metric the library optimises — the achieved speedup of
    # the candidates — stays in the same band with or without it.
    for row in rows:
        assert abs(row["speedup_with_yj"] - row["speedup_without_yj"]) < 0.35
        assert row["speedup_with_yj"] > 0.7
        assert row["speedup_without_yj"] > 0.7
    # The best candidate remains clearly useful in both configurations.
    assert max(row["speedup_with_yj"] for row in rows) > 0.95
    assert max(row["speedup_without_yj"] for row in rows) > 0.95
