"""Benchmark: serving throughput and time-to-recovery under sustained chaos.

The fault-tolerance contract costs something only when faults actually
fire: supervision is passive bookkeeping on the healthy path.  This
benchmark quantifies both sides, per shard backend:

* **Healthy** — the PR 5/6 multi-client stress drive with supervision on
  and no faults: the reference throughput.
* **Chaos** — the same drive with ``kill:5`` injected from a seeded
  schedule (worker SIGKILLs mid-traffic).  Every request id must still be
  answered exactly once, bit-identical to a sequential single-engine
  replay; the recorded metrics are the throughput retained under chaos
  and the supervisor's measured time-to-recovery per failure episode
  (failure detected → first healthy batch on the restarted worker).

Each recovery must complete inside ``RECOVERY_WINDOW_S`` — a loose wall
bound (worker respawn is ~1-2s of spawn + import) asserted on every run,
so a regression that turns recovery into a retry storm fails loudly.

Results land in ``benchmarks/results/fault_recovery.{txt,json}``.
"""

import threading
import time

from repro.core.install import install_adsala
from repro.harness.tables import format_table
from repro.machine.platforms import get_platform
from repro.serving.engine import ServingEngine
from repro.serving.faults import FaultInjector
from repro.serving.frontend import ShardedFrontend
from repro.serving.supervisor import RestartPolicy
from repro.serving.workload import generate_workload

from benchmarks.conftest import run_once

ROUTINES = ["dgemm", "dsyrk"]
BACKENDS = ("thread", "process")
N_REQUESTS = 400
N_WARMUP = 16
N_SHARDS = 2
N_CLIENTS = 4
BATCH_SIZE = 4  # many small dispatches, so the whole schedule fires
N_KILLS = 5
FAULT_SEED = 11
FAULT_HORIZON = 25
#: Every failure episode must recover inside this wall-clock bound.
RECOVERY_WINDOW_S = 10.0


def _plan_key(plan):
    return (
        plan.routine,
        tuple(sorted(plan.dims.items())),
        plan.threads,
        plan.predicted_time,
        plan.baseline_time,
        plan.policy,
    )


def _clear_caches(bundle):
    for installation in bundle.routines.values():
        installation.predictor.clear_cache()


def _sequential_reference(bundle, workload):
    _clear_caches(bundle)
    engine = ServingEngine(bundle, max_batch_size=BATCH_SIZE)
    return engine.plan_many(request.as_tuple() for request in workload)


def _drive(bundle, backend, workload, warmup, injector):
    """M client threads submitting futures; returns rate, plans, stats."""
    _clear_caches(bundle)
    frontend = ShardedFrontend.from_bundle(
        bundle,
        n_shards=N_SHARDS,
        backend=backend,
        max_batch_size=BATCH_SIZE,
        max_pending=4096,
        injector=injector,
        restart_policy=RestartPolicy(backoff_base=0.01, backoff_cap=0.05),
    )
    results = [None] * len(workload)
    with frontend:
        # Worker spawn + import off the clock (and off the fault schedule's
        # warmup ordinals).
        frontend.plan_many(request.as_tuple() for request in warmup)

        def client(client_index):
            pending = []
            for slot in range(client_index, len(workload), N_CLIENTS):
                request = workload[slot]
                pending.append(
                    (slot, frontend.submit(request.routine, **request.dims))
                )
            for slot, future in pending:
                results[slot] = future.result(timeout=120)

        clients = [
            threading.Thread(target=client, args=(index,))
            for index in range(N_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = frontend.stats()
    return len(workload) / elapsed, results, stats


def test_fault_recovery(benchmark, record, record_json):
    platform = get_platform("laptop")
    bundle = install_adsala(
        platform=platform,
        routines=ROUTINES,
        n_samples=20,
        threads_per_shape=6,
        n_test_shapes=8,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=0,
    )
    workload = generate_workload(
        ROUTINES, N_REQUESTS, distribution="cycling", seed=17, pool_size=12
    )
    warmup = generate_workload(
        ROUTINES, N_WARMUP, distribution="cycling", seed=23, pool_size=8
    )
    reference = _sequential_reference(bundle, workload)

    def run():
        rows = []
        for backend in BACKENDS:
            healthy_rate, healthy_plans, healthy_stats = _drive(
                bundle, backend, workload, warmup, injector=None
            )
            assert None not in healthy_plans
            assert healthy_stats["supervision"]["failures"] == 0

            injector = FaultInjector(
                {"kill": N_KILLS}, seed=FAULT_SEED, horizon=FAULT_HORIZON
            )
            chaos_rate, chaos_plans, chaos_stats = _drive(
                bundle, backend, workload, warmup, injector=injector
            )
            supervision = chaos_stats["supervision"]

            # The whole schedule fired, and recovery held the contract:
            # exactly one bit-identical plan per request, nothing shed,
            # nothing quarantined, every episode inside the window.
            assert supervision["injected"]["injected"] == {"kill": N_KILLS}
            assert None not in chaos_plans, f"lost plans on {backend}"
            assert chaos_stats["admission"]["shed"] == 0
            assert chaos_stats["admission"]["in_flight"] == 0
            assert supervision["quarantined"] == []
            mismatches = [
                slot
                for slot, (chaos, ref) in enumerate(zip(chaos_plans, reference))
                if _plan_key(chaos) != _plan_key(ref)
            ]
            assert not mismatches, (
                f"plans diverged under chaos on {backend}: {mismatches[:5]}"
            )
            assert supervision["recovery_episodes"] >= 1
            assert supervision["recovery_max_s"] <= RECOVERY_WINDOW_S, (
                f"{backend} recovery took {supervision['recovery_max_s']:.2f}s "
                f"(window {RECOVERY_WINDOW_S}s)"
            )

            rows.append(
                {
                    "backend": backend,
                    "requests": N_REQUESTS,
                    "kills": N_KILLS,
                    "healthy_plans_per_s": round(healthy_rate),
                    "chaos_plans_per_s": round(chaos_rate),
                    "throughput_retained": round(chaos_rate / healthy_rate, 2),
                    "restarts": supervision["restarts"],
                    "redispatched": supervision["redispatched"],
                    "recovery_mean_ms": round(
                        supervision["recovery_mean_s"] * 1e3
                    ),
                    "recovery_max_ms": round(
                        supervision["recovery_max_s"] * 1e3
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        rows,
        title=(
            f"Fault recovery: {N_KILLS} worker kills across {N_REQUESTS} "
            f"requests ({N_SHARDS} shards x {N_CLIENTS} clients, "
            f"batch {BATCH_SIZE})"
        ),
    )
    print()
    print(text)
    record("fault_recovery", text)
    record_json(
        "fault_recovery",
        [
            {
                "stage": (
                    f"chaos serving, {row['backend']} backend "
                    f"({N_KILLS} kills, {N_REQUESTS} requests, "
                    f"{N_SHARDS} shards x {N_CLIENTS} clients)"
                ),
                # Schema note: reference is the healthy run, "optimized" the
                # chaos run — the ratio reads as throughput retained under
                # sustained faults (1.0 = chaos-free speed).
                "reference_s": N_REQUESTS / row["healthy_plans_per_s"],
                "optimized_s": N_REQUESTS / row["chaos_plans_per_s"],
                "speedup": row["throughput_retained"],
                "backend": row["backend"],
                "kills": row["kills"],
                "restarts": row["restarts"],
                "redispatched": row["redispatched"],
                "recovery_mean_ms": row["recovery_mean_ms"],
                "recovery_max_ms": row["recovery_max_ms"],
                "recovery_window_s": RECOVERY_WINDOW_S,
            }
            for row in rows
        ],
    )
