"""Paper Table III: features available for two- and three-dimension routines."""

from repro.harness.experiments import table3_features
from repro.harness.tables import format_table

from benchmarks.conftest import run_once


def test_table3_feature_lists(benchmark, record):
    rows = run_once(benchmark, table3_features)
    text = format_table(rows, title="Table III: features for BLAS subroutines")
    record("table3_features", text)

    three_dim = [r["three_dimensions"] for r in rows if r["three_dimensions"]]
    two_dim = [r["two_dimensions"] for r in rows if r["two_dimensions"]]
    assert len(three_dim) == 17
    assert len(two_dim) == 9
    assert "m*k*n/nt" in three_dim
    assert "memory_footprint/nt" in two_dim
