"""Ablation: scrambled Halton vs. plain Halton vs. pseudo-random sampling.

The paper motivates the *scrambled* Halton sequence by the correlation
between high-base dimensions of the plain sequence.  This ablation measures
(a) that correlation directly and (b) the uniformity (discrepancy proxy) of
the resulting design, for the three sampling strategies.
"""

import numpy as np

from repro.core.sampling import DomainSampler, HaltonSequence, ScrambledHaltonSequence
from repro.harness.tables import format_table

from benchmarks.conftest import run_once

N_POINTS = 200


def _max_pairwise_correlation(points: np.ndarray) -> float:
    corr = np.corrcoef(points, rowvar=False)
    off_diag = np.abs(corr[~np.eye(corr.shape[0], dtype=bool)])
    return float(off_diag.max())


def _coverage_imbalance(points: np.ndarray, bins: int = 4) -> float:
    """Max/min occupancy ratio over a per-dimension equal-width binning."""
    worst = 1.0
    for dim in range(points.shape[1]):
        counts, _ = np.histogram(points[:, dim], bins=bins, range=(0.0, 1.0))
        worst = max(worst, counts.max() / max(counts.min(), 1))
    return float(worst)


def test_ablation_sampling_strategies(benchmark, record):
    def run():
        rng = np.random.default_rng(0)
        strategies = {
            "scrambled_halton": ScrambledHaltonSequence([2, 3, 4], seed=0).take(N_POINTS),
            "plain_halton": HaltonSequence([2, 3, 4]).take(N_POINTS),
            "pseudo_random": rng.uniform(size=(N_POINTS, 3)),
        }
        rows = []
        for name, points in strategies.items():
            rows.append(
                {
                    "strategy": name,
                    "max_pairwise_corr": round(_max_pairwise_correlation(points), 3),
                    "coverage_imbalance": round(_coverage_imbalance(points), 2),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    record(
        "ablation_sampling",
        format_table(rows, title="Ablation: domain-sampling strategies (3-D GEMM domain)"),
    )

    by_name = {row["strategy"]: row for row in rows}
    # Scrambling reduces the inter-dimension correlation of the plain Halton
    # sequence (the paper's stated reason for using it).
    assert (
        by_name["scrambled_halton"]["max_pairwise_corr"]
        < by_name["plain_halton"]["max_pairwise_corr"]
    )
    # Low-discrepancy sequences cover the domain more evenly than pseudo-random
    # sampling.
    assert (
        by_name["scrambled_halton"]["coverage_imbalance"]
        <= by_name["pseudo_random"]["coverage_imbalance"]
    )


def test_ablation_sampler_end_to_end_coverage(benchmark, record):
    """The full DomainSampler keeps both slim and large problems in the design."""

    def run():
        sampler = DomainSampler("dgemm", seed=0)
        shapes = sampler.sample(150)
        ratios = [max(s.values()) / min(s.values()) for s in shapes]
        sizes = [min(s.values()) for s in shapes]
        return {
            "n_slim": int(np.sum(np.asarray(ratios) > 8.0)),
            "n_square": int(np.sum(np.asarray(ratios) < 2.0)),
            "smallest_dim": int(np.min(sizes)),
            "largest_dim": int(max(max(s.values()) for s in shapes)),
        }

    summary = run_once(benchmark, run)
    record(
        "ablation_sampling_coverage",
        format_table([summary], title="Domain coverage of the scrambled-Halton sampler (dgemm)"),
    )
    assert summary["n_slim"] > 5
    assert summary["n_square"] > 5
    assert summary["largest_dim"] > 10 * summary["smallest_dim"]
