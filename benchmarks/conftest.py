"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper (or an ablation
called out in DESIGN.md).  Heavy artefacts (trained installations) are shared
through :func:`repro.harness.experiments.get_bundle`, and every benchmark
writes the rows it produced to ``benchmarks/results/<name>.txt`` so the
numbers can be inspected (and copied into EXPERIMENTS.md) after a run.

Set ``ADSALA_BENCH_PRESET=paper`` for the paper-scale campaign (slower);
the default ``quick`` preset reproduces the qualitative results in minutes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Write benchmark output text to ``benchmarks/results/<name>.txt``."""

    def _record(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _record


@pytest.fixture(scope="session")
def record_json(results_dir):
    """Write machine-readable rows to ``benchmarks/results/<name>.json``.

    Every perf benchmark emits its stages in one shared schema — a list of
    ``{"stage", "reference_s", "optimized_s", "speedup"}`` objects — so the
    performance trajectory stays diffable and scriptable across PRs.
    """

    def _record_json(name: str, rows: list[dict]) -> Path:
        required = {"stage", "reference_s", "optimized_s", "speedup"}
        for row in rows:
            missing = required - row.keys()
            if missing:
                raise ValueError(
                    f"benchmark row for {name!r} is missing keys {sorted(missing)}"
                )
        path = results_dir / f"{name}.json"
        path.write_text(json.dumps(rows, indent=2) + "\n")
        return path

    return _record_json


def run_once(benchmark, func):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
