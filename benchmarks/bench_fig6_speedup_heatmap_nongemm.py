"""Paper Figure 6: heatmaps of the testing speedup (non-GEMM routines).

Expected shape: the speedup pattern mirrors the optimal-thread pattern of
Fig. 4 — large speedups where the optimal thread count is far below the
maximum (small/skinny problems, SYMM everywhere), approaching 1.0 where the
maximum is already close to optimal (large square problems).
"""

import numpy as np
import pytest

from repro.core.evalcost import estimate_native_eval_time
from repro.harness.experiments import get_bundle
from repro.harness.figures import render_heatmap_ascii, speedup_heatmap

from benchmarks.conftest import run_once

ROUTINES = ["dsymm", "dsyrk", "dtrmm", "dtrsm"]


@pytest.mark.parametrize("platform_name", ["setonix", "gadi"])
def test_fig6_speedup_heatmaps(benchmark, record, platform_name):
    bundle = get_bundle(platform_name)
    simulator = bundle.simulator

    def build():
        grids = {}
        for routine in ROUTINES:
            predictor = bundle.predictor(routine)
            eval_time = estimate_native_eval_time(
                predictor.model,
                n_candidates=len(predictor.candidate_threads),
                n_features=predictor.pipeline.n_features_out_,
            )
            grids[routine] = speedup_heatmap(
                routine, simulator, predictor, n_points=7, eval_time=eval_time
            )
        return grids

    grids = run_once(benchmark, build)
    record(
        f"fig6_speedup_heatmap_{platform_name}",
        "\n\n".join(render_heatmap_ascii(grid) for grid in grids.values()),
    )

    for routine, grid in grids.items():
        values = grid.values[~np.isnan(grid.values)]
        assert values.size > 0
        # No total catastrophes anywhere on the grid (isolated blue cells do
        # occur, exactly as in the paper's Fig. 6)...
        assert values.min() > 0.2
        # ...the field does not lose on average...
        assert values.mean() > 0.85
        # ...and wins somewhere (the overhead-bound corner).
        assert values.max() > 1.1

    # SYMM's speedup field is comparable to or better than SYRK's on average
    # (paper Fig. 6 / Table VII).
    symm = grids["dsymm"].values[~np.isnan(grids["dsymm"].values)]
    syrk = grids["dsyrk"].values[~np.isnan(grids["dsyrk"].values)]
    assert symm.mean() > syrk.mean() * 0.75
