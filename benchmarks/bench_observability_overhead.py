"""Benchmark: sharded serving throughput with full observability on vs bare.

The observability stack touches the production serve path in two very
different ways, so this benchmark measures them separately:

* **Per-request instrumentation** — the run-journal append that every
  plan pays (async writer, as ``adsala serve --journal`` configures it)
  with the live ``/metrics`` endpoint up.  This scales with traffic, so
  it is gated as a *fraction of serving throughput*: the paired trials
  below must show **under 5%** wall overhead on the gated mixes.
* **Scrape cost** — walking the merged ``stats()`` and rendering the
  Prometheus exposition is a fixed few milliseconds *per scrape*, paid
  only when a scraper polls.  At Prometheus' default 15s interval even a
  5ms scrape amortises to <0.04% of one core, so hammering the endpoint
  inside a ~300ms serve window would overstate production cost by ~100x.
  Instead each instrumented run times ``SCRAPES_PER_RUN`` scrapes of the
  live endpoint (engine + frontend + supervisor series all present and
  asserted) and reports the median milliseconds per scrape, gated by
  ``ADSALA_OBS_SCRAPE_MS_MAX`` (default 50ms).

Measured on the real serving topology — a 2-shard thread-backend
:class:`ShardedFrontend` driven by 4 closed-loop client threads calling
``submit()``/``result()``, exactly like the CLI's chaos-serve loop, with
every plan journaled from the client threads.

Bare and instrumented trials alternate order within each pair, and the
reported overhead is the **median** over the paired ratios — adjacent
runs share machine state, so pairing cancels drift, and the median
rejects the scheduler spikes that make single ratios swing ±15% on a
busy host.

Three workload mixes are reported.  The two gated ones bracket
production traffic: ``uniform`` (the ``adsala serve`` default — every
request runs model inference) and ``skewed/pool64`` (Zipf-like reuse
over a wide shape pool).  The third row, ``skewed/pool8``, is a
degenerate stress case — nearly every request is a plan-cache hit and
the bare loop tops 15k plans/s, so the ~4µs of Python that journaling
costs per row is structurally a large slice of a ~60µs request; it is
asserted only against a looser regression bound (the synchronous
journal the async writer replaced cost 30-80% here).  Budgets come from
``ADSALA_OBS_OVERHEAD_MAX`` (default 0.05) and
``ADSALA_OBS_STRESS_OVERHEAD_MAX`` (default 0.20).
Results land in ``benchmarks/results/observability_overhead.{txt,json}``.
"""

import os
import statistics
import threading
import time
import urllib.request

from repro.core.install import install_adsala
from repro.harness.tables import format_table
from repro.machine.platforms import get_platform
from repro.obs.collectors import StatsCollector
from repro.obs.journal import RunJournal
from repro.obs.metrics import MetricsRegistry, MetricsServer
from repro.serving.frontend import ShardedFrontend
from repro.serving.workload import generate_workload

from benchmarks.conftest import run_once

ROUTINES = ["dgemm", "dsyrk"]
N_REQUESTS = 2400
N_SHARDS = 2
N_CLIENTS = 4
BATCH_SIZE = 32
TRIALS = 7
SCRAPES_PER_RUN = 3
OVERHEAD_MAX = float(os.environ.get("ADSALA_OBS_OVERHEAD_MAX", "0.05"))
STRESS_OVERHEAD_MAX = float(
    os.environ.get("ADSALA_OBS_STRESS_OVERHEAD_MAX", "0.20")
)
SCRAPE_MS_MAX = float(os.environ.get("ADSALA_OBS_SCRAPE_MS_MAX", "50"))

# Series that every sharded-serve scrape must expose: engine counters and
# latency histogram, frontend admission/supervision gauges, and the
# supervisor restart counter.
REQUIRED_SERIES = (
    "adsala_plans_total",
    "adsala_requests_total",
    "adsala_plan_latency_seconds_bucket",
    "adsala_submitted_total",
    "adsala_shards_healthy",
    "adsala_shard_restarts_total",
)

MIXES = (
    # (label, distribution, pool_size, gated)
    ("uniform", "uniform", 8, True),
    ("skewed/pool64", "skewed", 64, True),
    ("skewed/pool8 (stress)", "skewed", 8, False),
)


def _clear_caches(bundle):
    for installation in bundle.routines.values():
        installation.predictor.clear_cache()


def _serve(bundle, workload, journal=None, scrape_url=None, scrape_times=None):
    """One closed-loop sharded serve; returns wall seconds for the loop.

    The timed window covers exactly the client submit/result loop (plus
    per-plan journaling when ``journal`` is given).  Scrapes happen after
    the clients drain, while the frontend and its stats are still live,
    and are timed individually into ``scrape_times``.
    """
    _clear_caches(bundle)
    frontend = ShardedFrontend.from_bundle(
        bundle, N_SHARDS, max_batch_size=BATCH_SIZE, backend="thread"
    )
    if scrape_url is not None:
        # The metrics collector was built before the frontend exists;
        # it reads the live stats() through this holder.
        scrape_url.holder["fn"] = frontend.stats
    results = [None] * len(workload)

    def client(client_index):
        for slot in range(client_index, len(workload), N_CLIENTS):
            request = workload[slot]
            future = frontend.submit(request.routine, **request.dims)
            plan = future.result(timeout=60)
            results[slot] = plan
            if journal is not None:
                journal.record_plan(
                    plan.routine,
                    plan.dims,
                    plan.threads,
                    plan.predicted_time,
                    baseline_time=plan.baseline_time,
                    from_cache=plan.from_cache,
                    fallback_from=plan.fallback_from,
                    policy=plan.policy,
                    shard=future.shard,
                    request_id=future.request_id,
                    version=1,
                )

    workers = [
        threading.Thread(target=client, args=(index,))
        for index in range(N_CLIENTS)
    ]
    with frontend:
        if journal is not None:
            journal.record_run_start(requests=len(workload))
        start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - start
        if journal is not None:
            journal.record_run_end(stats=frontend.stats(), plans=len(workload))
        for _ in range(SCRAPES_PER_RUN if scrape_url is not None else 0):
            scrape_start = time.perf_counter()
            with urllib.request.urlopen(scrape_url.url, timeout=10) as response:
                body = response.read().decode("utf-8")
            scrape_times.append(time.perf_counter() - scrape_start)
            for series in REQUIRED_SERIES:
                assert series in body, f"scrape is missing {series}"
    assert all(plan is not None for plan in results)
    return elapsed


class _LiveEndpoint:
    """Bundles the server URL with the stats holder the collector reads."""

    def __init__(self, server, holder):
        self.server = server
        self.holder = holder

    @property
    def url(self):
        return self.server.url


def _instrumented(bundle, workload, journal_path, scrape_times):
    registry = MetricsRegistry()
    holder = {"fn": lambda: {}}
    collector = StatsCollector(registry, stats_fn=lambda: holder["fn"]())
    with MetricsServer(registry, collector=collector) as server, RunJournal(
        journal_path, async_writer=True
    ) as journal:
        elapsed = _serve(
            bundle, workload, journal=journal,
            scrape_url=_LiveEndpoint(server, holder),
            scrape_times=scrape_times,
        )
    assert journal.n_rows == len(workload) + 2  # plans + run_start/run_end
    return elapsed


def test_observability_overhead(benchmark, record, record_json, tmp_path):
    platform = get_platform("laptop")
    bundle = install_adsala(
        platform=platform,
        routines=ROUTINES,
        n_samples=16,
        threads_per_shape=5,
        n_test_shapes=6,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=0,
    )

    def run():
        rows = []
        for label, distribution, pool_size, gated in MIXES:
            workload = generate_workload(
                ROUTINES, N_REQUESTS, distribution=distribution,
                seed=23, pool_size=pool_size,
            )
            _serve(bundle, workload)  # warmup
            overheads, bares, instrumenteds = [], [], []
            scrape_times = []
            for trial in range(TRIALS):
                # Alternate which side of the pair runs first so thermal
                # or load drift within a pair cancels instead of always
                # penalising the instrumented run.
                journal_path = (
                    tmp_path / f"journal_{trial}_{pool_size}_{distribution}.jsonl"
                )
                if trial % 2 == 0:
                    bare = _serve(bundle, workload)
                    instrumented = _instrumented(
                        bundle, workload, journal_path, scrape_times
                    )
                else:
                    instrumented = _instrumented(
                        bundle, workload, journal_path, scrape_times
                    )
                    bare = _serve(bundle, workload)
                bares.append(bare)
                instrumenteds.append(instrumented)
                overheads.append(instrumented / bare - 1.0)
            overhead = statistics.median(overheads)
            bare, instrumented = min(bares), min(instrumenteds)
            rows.append(
                {
                    "workload": label,
                    "gated": "yes" if gated else "stress",
                    "bare_plans_per_s": round(N_REQUESTS / bare),
                    "instrumented_plans_per_s": round(N_REQUESTS / instrumented),
                    "bare_s": round(bare, 4),
                    "instrumented_s": round(instrumented, 4),
                    "overhead": round(overhead, 4),
                    "scrape_ms": round(
                        statistics.median(scrape_times) * 1000.0, 2
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        rows,
        title=(
            f"Observability overhead: async journal + live /metrics endpoint "
            f"vs bare sharded serving ({N_REQUESTS} requests, {N_SHARDS} "
            f"shards, {N_CLIENTS} clients, median over {TRIALS} paired "
            f"trials; scrape cost reported per scrape, laptop)"
        ),
    )
    print()
    print(text)
    record("observability_overhead", text)
    record_json(
        "observability_overhead",
        [
            {
                "stage": f"serving {row['workload']} mix with full observability",
                "reference_s": row["bare_s"],
                "optimized_s": row["instrumented_s"],
                "speedup": round(row["bare_s"] / row["instrumented_s"], 4),
                "overhead": row["overhead"],
                "scrape_ms": row["scrape_ms"],
                "gated": row["gated"],
            }
            for row in rows
        ],
    )
    for row, (_, _, _, gated) in zip(rows, MIXES):
        budget = OVERHEAD_MAX if gated else STRESS_OVERHEAD_MAX
        assert row["overhead"] < budget, (
            f"observability overhead {row['overhead']:.1%} on the "
            f"{row['workload']} mix exceeds the {budget:.0%} budget"
        )
        assert row["scrape_ms"] < SCRAPE_MS_MAX, (
            f"median /metrics scrape took {row['scrape_ms']}ms on the "
            f"{row['workload']} mix (budget {SCRAPE_MS_MAX}ms)"
        )
