"""Paper Table VIII: profiling breakdown (total/sync/kernel/copy) on Gadi.

Expected shape: for every profiled case the ML-selected thread count reduces
the total time, with the largest absolute reduction coming from thread
synchronisation, then data copies — kernel time is a minor contributor for
these (deliberately overhead-bound) problem sizes.
"""

from collections import defaultdict

from repro.harness.experiments import table8_profiling
from repro.harness.tables import format_table

from benchmarks.conftest import run_once


def test_table8_profiling_breakdown(benchmark, record):
    rows = run_once(benchmark, lambda: table8_profiling("gadi", repeats=100))
    text = format_table(
        rows,
        title="Table VIII: profiling of 100 repeated calls on Gadi (simulated)",
    )
    record("table8_profiling_gadi", text)

    # Pair up "no ML" / "with ML" rows per case.
    cases = defaultdict(dict)
    for row in rows:
        label = "with_ml" if row["case"].endswith("with ML") else "no_ml"
        case_key = row["case"].rsplit(" ", 2)[0]
        cases[case_key][label] = row

    assert len(cases) == 6
    sync_reductions = []
    improved = 0
    for case_key, pair in cases.items():
        no_ml, with_ml = pair["no_ml"], pair["with_ml"]
        # The ML thread count never exceeds the max-thread baseline and the
        # call never gets meaningfully slower (for one kernel-bound SYRK case
        # the predictor may legitimately keep ~the maximum thread count, as
        # the paper's own dsyrk row shows only a marginal gain).
        assert with_ml["threads"] <= no_ml["threads"]
        assert with_ml["total_s"] <= no_ml["total_s"] * 1.001
        assert with_ml["thread_sync_s"] <= no_ml["thread_sync_s"] * 1.001
        if with_ml["total_s"] < no_ml["total_s"] * 0.999:
            improved += 1
        sync_reductions.append(no_ml["thread_sync_s"] / max(with_ml["thread_sync_s"], 1e-9))
        # For the small GEMM cases synchronisation dominates the kernel time
        # at max threads (the most dramatic rows of the paper's Table VIII;
        # the big SYMM/SYRK cases are kernel-bound in our simulator).
        if case_key.startswith(("dgemm", "sgemm")):
            assert no_ml["thread_sync_s"] > no_ml["kernel_call_s"]

    # The clear majority of the profiled cases get faster with ML selection.
    assert improved >= 4
    # At least one case shows a dramatic (several-fold) sync reduction.
    assert max(sync_reductions) > 3.0
