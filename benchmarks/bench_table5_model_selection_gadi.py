"""Paper Table V: best model per subroutine on Gadi (MKL baseline)."""

from repro.harness.experiments import table5_model_selection_gadi
from repro.harness.tables import format_table

from benchmarks.conftest import run_once


def test_table5_model_selection_gadi(benchmark, record):
    rows = run_once(benchmark, table5_model_selection_gadi)
    text = format_table(
        rows, title="Table V: best model per subroutine on Gadi (simulated)"
    )
    record("table5_model_selection_gadi", text)

    assert len(rows) == 12
    assert {row["subroutine"] for row in rows} == {
        prec + base
        for prec in ("s", "d")
        for base in ("gemm", "symm", "syrk", "syr2k", "trmm", "trsm")
    }
    # Every routine ends up with a usable model (positive estimated speedup,
    # not catastrophically below 1.0).
    assert all(row["estimated_mean_speedup"] > 0.9 for row in rows)
    # The paper finds only a handful of distinct winners across Table V;
    # the selection must not degenerate to a single model either.
    assert 1 <= len({row["best_model"] for row in rows}) <= 6
