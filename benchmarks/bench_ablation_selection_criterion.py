"""Ablation: estimated-speedup selection vs. pure-RMSE selection.

The paper selects the model with the highest *estimated speedup*
``s = t_original / (t_ADSALA + t_eval)`` rather than the lowest prediction
error.  This ablation quantifies what that choice buys: selecting purely by
RMSE favours slow, accurate models (kNN / RandomForest) whose evaluation
latency then eats part of the speedup at runtime.
"""

import numpy as np

from repro.core.evalcost import estimate_native_eval_time
from repro.harness.experiments import QUICK_CONFIG, get_bundle
from repro.harness.tables import format_table

from benchmarks.conftest import run_once

ROUTINES = ["dgemm", "dsymm", "dsyrk", "dtrsm"]


def achieved_speedup(bundle, routine, model_name):
    """Mean speedup (eval time included) of one candidate on the test shapes."""
    installation = bundle.routines[routine]
    report = installation.selection
    pipeline = report._pipeline
    model = report._fitted_models[model_name]

    from repro.core.predictor import ThreadPredictor

    predictor = ThreadPredictor(
        routine=routine,
        pipeline=pipeline,
        model=model,
        candidate_threads=bundle.platform.candidate_thread_counts(),
        model_name=model_name,
    )
    eval_time = estimate_native_eval_time(
        model,
        n_candidates=len(predictor.candidate_threads),
        n_features=pipeline.n_features_out_,
    )
    simulator = bundle.simulator
    ratios = []
    for dims in installation.test_shapes:
        threads = predictor.predict_threads(dims, use_cache=False)
        ratios.append(
            simulator.time_at_max_threads(routine, dims)
            / (simulator.time(routine, dims, threads) + eval_time)
        )
    return float(np.mean(ratios))


def test_ablation_selection_criterion(benchmark, record):
    bundle = get_bundle("gadi", config=QUICK_CONFIG)

    def run():
        rows = []
        for routine in ROUTINES:
            report = bundle.routines[routine].selection
            speedup_choice = report.best_model_name
            rmse_choice = min(report.evaluations, key=lambda e: e.rmse).model_name
            rows.append(
                {
                    "subroutine": routine,
                    "speedup_selected": speedup_choice,
                    "speedup_selected_result": round(
                        achieved_speedup(bundle, routine, speedup_choice), 3
                    ),
                    "rmse_selected": rmse_choice,
                    "rmse_selected_result": round(
                        achieved_speedup(bundle, routine, rmse_choice), 3
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    record(
        "ablation_selection_criterion",
        format_table(rows, title="Ablation: estimated-speedup vs. RMSE model selection (Gadi)"),
    )

    # The paper's criterion never does materially worse than RMSE selection,
    # and wins overall once evaluation latency is charged.
    speedup_total = sum(row["speedup_selected_result"] for row in rows)
    rmse_total = sum(row["rmse_selected_result"] for row in rows)
    assert all(
        row["speedup_selected_result"] >= row["rmse_selected_result"] - 0.05 for row in rows
    )
    assert speedup_total >= rmse_total - 0.05
