"""Benchmark: compiled fused prediction kernel vs the object-graph path.

A ``plan()`` call only pays for itself when it is much cheaper than the
BLAS call it optimises, so this benchmark tracks the *call-time* latency of
the predictor both ways:

* **reference** — the pre-compilation object path
  (``feature_matrix_for_threads`` → per-column preprocessing →
  per-tree ensemble loop), forced via ``repro.core.compiled.reference_mode``;
* **compiled** — the fused feature→preprocess→ensemble kernel
  (:class:`repro.core.compiled.CompiledPredictor`): preallocated feature
  grid over the kept columns only, two vectorised preprocessing
  expressions, one stacked whole-ensemble descent.

Measured on the quick bundle: a cold single-shape ``plan()`` (cache
bypassed — the paper's worst case) for the heaviest candidate models and
for every routine's winning model, plus the 64-shape batched evaluation the
serving engine rides.  Both paths produce bit-identical plans (asserted in
``tests/core/test_compiled.py``), so this is a pure-latency comparison.

When the native kernel bundle built, a **per-stage breakdown** follows:
feature-fill, fused transform, and stacked descent each timed native-vs-
NumPy in isolation, plus the Python glue saved by collapsing the three
staged calls into the single ``fused_evaluate`` foreign call — so a future
latency regression is attributable to one stage from the committed JSON.

Results land in ``benchmarks/results/plan_latency.{txt,json}``; the
benchmark asserts the compiled single-shape path is at least
``ADSALA_PLAN_SPEEDUP_MIN`` (default 3, CI smoke floor) times faster on
the heavyweight model — capable machines should see well over 10x.
"""

import os
import time

from repro.core import compiled as compiled_mod
from repro.core.install import install_adsala
from repro.core.predictor import ThreadPredictor
from repro.harness.experiments import QUICK_CONFIG
from repro.harness.tables import format_table
from repro.machine.platforms import get_platform

from benchmarks.conftest import run_once

#: The six double-precision routines of the paper's Table I.
ROUTINES = ["dgemm", "dsymm", "dsyrk", "dsyr2k", "dtrmm", "dtrsm"]

#: Heavyweight candidates measured individually (per-tree loops hurt most).
HEAVY_MODELS = ["RandomForest", "XGBoost"]

COMPILED_REPEATS = 400
REFERENCE_REPEATS = 80
BATCH_SHAPES = 64
MIN_COMPILED_SPEEDUP = float(os.environ.get("ADSALA_PLAN_SPEEDUP_MIN", "3.0"))


def _representative_dims(routine: str) -> dict:
    from repro.blas.api import parse_routine

    _, _, spec = parse_routine(routine)
    return {name: 1024 for name in spec.dim_names}


def _random_dims(routine: str, n: int, seed: int) -> list:
    import numpy as np

    from repro.blas.api import parse_routine

    _, _, spec = parse_routine(routine)
    rng = np.random.default_rng(seed)
    return [
        {name: int(rng.integers(64, 4096)) for name in spec.dim_names}
        for _ in range(n)
    ]


def _cold_plan_seconds(predictor: ThreadPredictor, dims: dict, repeats: int) -> float:
    """Mean seconds per cache-bypassing ``plan()`` call (one warm-up)."""
    predictor.plan(dims, use_cache=False)
    start = time.perf_counter()
    for _ in range(repeats):
        predictor.plan(dims, use_cache=False)
    return (time.perf_counter() - start) / repeats


def _batch_seconds(predictor: ThreadPredictor, dims_list: list, repeats: int) -> float:
    predictor.predict_runtimes_batch(dims_list)
    start = time.perf_counter()
    for _ in range(repeats):
        predictor.predict_runtimes_batch(dims_list)
    return (time.perf_counter() - start) / repeats


def _timed(fn, repeats: int) -> float:
    """Mean seconds per call (one warm-up)."""
    fn()
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def _stage_breakdown_rows(predictor: ThreadPredictor, dims_list: list) -> list:
    """Native-vs-NumPy timing per evaluate stage, same row schema.

    ``reference_s`` is the NumPy expression, ``optimized_s`` the native
    kernel; the final "glue" row times the full staged Python sequence
    (native per-stage kernels called separately) against the single fused
    foreign call, isolating the per-call Python overhead the fusion
    removes.
    """
    import numpy as np

    compiled = predictor.compile()
    if compiled._fused_call is None:
        return []
    repeats = COMPILED_REPEATS // 2
    writer = compiled._writer
    program = compiled._program
    lambdas, shift, scale = compiled._flat_state
    rows = []

    # Feature fill: C column-program replay vs the NumPy block writer.
    dims = writer.load_dims(dims_list).copy()
    grid = writer.grid_view(dims.shape[0])
    fill_native = _timed(
        lambda: compiled._native_fill(program, dims, writer.nt, grid), repeats
    )
    fill_numpy = _timed(lambda: writer.write(dims), repeats)
    rows.append(
        {
            "stage": "stage: feature-fill (native vs NumPy)",
            "reference_s": fill_numpy,
            "optimized_s": fill_native,
            "speedup": fill_numpy / fill_native,
        }
    )

    # Fused transform: the native kernel is in-place, so it works on a
    # scratch refreshed from a template each call; the refresh is charged
    # to the native side (it is small next to the transcendentals).
    template = writer.write(dims).copy()
    scratch = np.empty_like(template)

    def transform_native():
        scratch[...] = template
        compiled._native_transform(scratch, lambdas, shift, scale)

    t_native = _timed(transform_native, repeats)
    t_numpy = _timed(lambda: compiled._fused.transform_kept(template), repeats)
    rows.append(
        {
            "stage": "stage: yeo-johnson + affine (native vs NumPy)",
            "reference_s": t_numpy,
            "optimized_s": t_native,
            "speedup": t_numpy / t_native,
        }
    )

    # Stacked descent: packed-node C walk vs the frontier NumPy gathers.
    stack = compiled._model_kernel.stack
    if stack is not None:
        transformed = compiled._fused.transform_kept(template)
        d_native = _timed(lambda: stack._descend(transformed), repeats)
        saved = stack._native
        stack._native = None
        try:
            d_numpy = _timed(lambda: stack._descend(transformed), repeats)
        finally:
            stack._native = saved
        rows.append(
            {
                "stage": "stage: stacked descent (native vs NumPy)",
                "reference_s": d_numpy,
                "optimized_s": d_native,
                "speedup": d_numpy / d_native,
            }
        )

    # Glue: three staged native calls from Python vs one fused C call.
    fused_full = _timed(
        lambda: predictor.predict_runtimes_batch(dims_list), repeats
    )
    fused_call = compiled._fused_call
    compiled._fused_call = None
    try:
        staged_full = _timed(
            lambda: predictor.predict_runtimes_batch(dims_list), repeats
        )
    finally:
        compiled._fused_call = fused_call
    rows.append(
        {
            "stage": "stage: python glue (staged native calls vs one fused call)",
            "reference_s": staged_full,
            "optimized_s": fused_full,
            "speedup": staged_full / fused_full,
        }
    )
    return rows


def test_plan_latency(benchmark, record, record_json):
    platform = get_platform("gadi")
    config = QUICK_CONFIG
    bundle = install_adsala(
        platform=platform,
        routines=ROUTINES,
        n_samples=config.n_samples,
        threads_per_shape=config.threads_per_shape,
        n_test_shapes=config.n_test_shapes,
        candidate_models=list(config.candidate_models),
        seed=config.seed,
        n_jobs=1,
    )

    def run():
        rows = []

        # -- heavyweight candidates, cold single-shape plan -----------------
        report = bundle.routines["dgemm"].selection
        dims = _representative_dims("dgemm")
        for model_name in HEAVY_MODELS:
            predictor = ThreadPredictor(
                routine="dgemm",
                pipeline=report._pipeline,
                model=report._fitted_models[model_name],
                candidate_threads=platform.candidate_thread_counts(),
                model_name=model_name,
            )
            compiled_s = _cold_plan_seconds(predictor, dims, COMPILED_REPEATS)
            with compiled_mod.reference_mode():
                reference_s = _cold_plan_seconds(
                    predictor, dims, REFERENCE_REPEATS
                )
            rows.append(
                {
                    "stage": f"plan() cold dgemm {model_name}",
                    "reference_s": reference_s,
                    "optimized_s": compiled_s,
                    "speedup": reference_s / compiled_s,
                }
            )

        # -- every routine's winning model, cold single-shape plan ----------
        compiled_total = reference_total = 0.0
        for routine in ROUTINES:
            predictor = bundle.routines[routine].predictor
            dims = _representative_dims(routine)
            compiled_total += _cold_plan_seconds(
                predictor, dims, COMPILED_REPEATS // 2
            )
            with compiled_mod.reference_mode():
                reference_total += _cold_plan_seconds(
                    predictor, dims, REFERENCE_REPEATS // 2
                )
        rows.append(
            {
                "stage": f"plan() cold, winning models ({len(ROUTINES)} routines)",
                "reference_s": reference_total,
                "optimized_s": compiled_total,
                "speedup": reference_total / compiled_total,
            }
        )

        # -- batched evaluation (the serving engine's inner pass) -----------
        predictor = bundle.routines["dgemm"].predictor
        dims_list = _random_dims("dgemm", BATCH_SHAPES, seed=7)
        compiled_s = _batch_seconds(predictor, dims_list, COMPILED_REPEATS // 8)
        with compiled_mod.reference_mode():
            reference_s = _batch_seconds(
                predictor, dims_list, REFERENCE_REPEATS // 8
            )
        rows.append(
            {
                "stage": f"predict_runtimes_batch ({BATCH_SHAPES} shapes, dgemm)",
                "reference_s": reference_s,
                "optimized_s": compiled_s,
                "speedup": reference_s / compiled_s,
            }
        )

        # -- per-stage native breakdown (skipped if the build is absent) ----
        stage_predictor = ThreadPredictor(
            routine="dgemm",
            pipeline=report._pipeline,
            model=report._fitted_models["RandomForest"],
            candidate_threads=platform.candidate_thread_counts(),
            model_name="RandomForest",
        )
        rows.extend(_stage_breakdown_rows(stage_predictor, dims_list))
        return rows

    rows = run_once(benchmark, run)
    table_rows = [
        {
            "stage": row["stage"],
            "reference_us": round(row["reference_s"] * 1e6, 1),
            "compiled_us": round(row["optimized_s"] * 1e6, 1),
            "speedup": round(row["speedup"], 2),
        }
        for row in rows
    ]
    text = format_table(
        table_rows,
        title=(
            "Plan latency: compiled fused kernel vs object-graph reference "
            f"(quick preset, gadi, cpu_count={os.cpu_count()})"
        ),
    )
    print()
    print(text)
    record("plan_latency", text)
    record_json("plan_latency", rows)

    headline = rows[0]
    assert headline["speedup"] >= MIN_COMPILED_SPEEDUP, (
        f"compiled plan() is only {headline['speedup']:.2f}x the reference "
        f"path on {headline['stage']!r}; expected >= {MIN_COMPILED_SPEEDUP}x"
    )
