"""Benchmark: drift injection -> closed-loop adaptation -> recovery.

The adaptive layer's bet is twofold:

* **recovery** — after the machine drifts (here: clock down 45 %, sync
  cost x2.5), one :meth:`~repro.adaptive.controller.AdaptationController.step`
  brings the rolling observed-vs-predicted error back under the drift
  threshold, without restarting the serving engine;
* **budget** — the traffic-seeded incremental re-gather (a tenth of an
  install-scale campaign, seeded from the shapes the workload actually
  asked for) is much cheaper end to end than re-running the full installer
  for the drifting routines, which is what a drift flag would otherwise
  trigger.

Both are measured here: prediction error before/after adaptation and the
end-to-end adaptation wall time against a full re-install of the same
routines.  Results land in ``benchmarks/results/adaptation.txt`` and
``benchmarks/results/adaptation.json`` (shared stage/reference/optimized
schema; for the error row the two "seconds" columns carry the rolling
mean absolute relative error before and after, and ``speedup`` is the
error-reduction factor).
"""

import time

from repro.adaptive import (
    AdaptationConfig,
    AdaptationController,
    DriftInjector,
    make_calibration,
)
from repro.core.install import install_adsala
from repro.core.persistence import save_bundle
from repro.harness.tables import format_table
from repro.machine.platforms import get_platform
from repro.serving.engine import ServingEngine
from repro.serving.registry import ModelRegistry
from repro.serving.telemetry import EngineTelemetry
from repro.serving.workload import generate_workload

from benchmarks.conftest import run_once

ROUTINES = ["dgemm", "dsyrk"]
N_REQUESTS = 400
DRIFT_THRESHOLD = 0.25
INSTALL_SAMPLES = 24
INSTALL_THREADS_PER_SHAPE = 6
REGATHER_SHAPES = 12
CANDIDATES = ("LinearRegression", "DecisionTree")

CALIBRATION = make_calibration(clock=0.55, sync=2.5)


def _drive(engine, observer, seed):
    workload = generate_workload(
        ROUTINES, N_REQUESTS, distribution="skewed", seed=seed
    )
    plans = engine.plan_many(request.as_tuple() for request in workload)
    for plan in plans:
        engine.record_observation(
            plan, observer.time(plan.routine, plan.dims, plan.threads)
        )


def _rolling_errors(engine):
    return {
        routine: telemetry.mean_abs_rel_error
        for routine, telemetry in engine.telemetry.routines.items()
    }


def test_adaptation_recovery(benchmark, record, record_json, tmp_path):
    platform = get_platform("laptop")
    bundle = install_adsala(
        platform=platform,
        routines=ROUTINES,
        n_samples=INSTALL_SAMPLES,
        threads_per_shape=INSTALL_THREADS_PER_SHAPE,
        n_test_shapes=8,
        candidate_models=list(CANDIDATES),
        seed=0,
    )
    bundle_dir = save_bundle(bundle, tmp_path / "bundle", bundle_version=1)

    def run():
        registry = ModelRegistry()
        handle = registry.register(bundle_dir)
        engine = ServingEngine(
            handle,
            telemetry=EngineTelemetry(drift_threshold=DRIFT_THRESHOLD),
        )
        injector = DriftInjector(platform, CALIBRATION)
        observer = injector.simulator(seed=1)

        # -- drift: serve traffic measured on the perturbed machine ----------
        _drive(engine, observer, seed=3)
        errors_before = _rolling_errors(engine)
        drifting = engine.reinstall_candidates()
        assert drifting, "drift injection failed to trip the detector"

        # -- adapt: one controller step, wall-clocked -------------------------
        controller = AdaptationController(
            engine,
            AdaptationConfig(
                seed=11,
                regather_shapes=REGATHER_SHAPES,
                regather_threads_per_shape=4,
                regather_test_shapes=6,
                candidate_models=CANDIDATES,
                max_latency_regression=2.0,
            ),
            measurement_simulator=injector.simulator(seed=2),
            calibration=CALIBRATION,
        )
        start = time.perf_counter()
        report = controller.step()
        adapt_wall = time.perf_counter() - start
        assert report.promoted, "no routine cleared shadow evaluation"

        # -- recovery: fresh drifted traffic against the promoted bundle -----
        _drive(engine, observer, seed=4)
        errors_after = _rolling_errors(engine)
        for routine in report.promoted:
            assert errors_after[routine] < DRIFT_THRESHOLD, (
                f"{routine} rolling error {errors_after[routine]:.3f} did not "
                f"recover below {DRIFT_THRESHOLD}"
            )

        # -- reference cost: a full re-install of the same routines ----------
        start = time.perf_counter()
        install_adsala(
            platform=platform,
            routines=report.promoted or ROUTINES,
            n_samples=80,
            threads_per_shape=14,
            n_test_shapes=30,
            candidate_models=list(CANDIDATES),
            seed=11,
        )
        reinstall_wall = time.perf_counter() - start
        return report, errors_before, errors_after, adapt_wall, reinstall_wall

    report, before, after, adapt_wall, reinstall_wall = run_once(benchmark, run)

    mean_before = sum(before[r] for r in report.promoted) / len(report.promoted)
    mean_after = sum(after[r] for r in report.promoted) / len(report.promoted)
    rows = [
        {
            "stage": "rolling mean |err| (promoted routines)",
            "before": round(mean_before, 4),
            "after": round(mean_after, 4),
            "factor": round(mean_before / mean_after, 2),
        },
        {
            "stage": "wall time: full reinstall vs adaptation (s)",
            "before": round(reinstall_wall, 3),
            "after": round(adapt_wall, 3),
            "factor": round(reinstall_wall / adapt_wall, 2),
        },
    ]
    text = format_table(
        rows,
        title=(
            f"Drift adaptation on laptop ({', '.join(report.promoted)} promoted "
            f"to v{report.new_version}; drift: clock x0.55, sync x2.5; "
            f"threshold {DRIFT_THRESHOLD})"
        ),
    )
    print()
    print(text)
    record("adaptation", text)
    record_json(
        "adaptation",
        [
            {
                "stage": "drift recovery (rolling mean abs rel error)",
                "reference_s": mean_before,
                "optimized_s": mean_after,
                "speedup": mean_before / mean_after,
                "metric": "mean_abs_rel_error",
                "drift_threshold": DRIFT_THRESHOLD,
                "promoted": list(report.promoted),
                "bundle_version": report.new_version,
            },
            {
                "stage": "adaptation wall time vs full reinstall",
                "reference_s": reinstall_wall,
                "optimized_s": adapt_wall,
                "speedup": reinstall_wall / adapt_wall,
                "regather_shapes": REGATHER_SHAPES,
                "install_samples": 80,
            },
        ],
    )
