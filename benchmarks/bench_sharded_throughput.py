"""Benchmark: sharded frontend (thread & process backends) vs one engine.

The sharded frontend's bet is that partitioning traffic across N engines
lets M concurrent clients scale plan throughput past what one engine
(PR 3's numbers) can serve — while keeping the plans **bit-identical** to
a sequential single-engine replay of the same stream (asserted below, per
request id, along with zero shed and zero lost requests).

Two shard backends are swept:

* ``thread`` — N engines in this process.  Scaling rides on the fraction
  of per-plan work that releases the GIL — with the full evaluate span
  (feature fill → Yeo-Johnson + affine → stacked descent) fused into one
  native call this is nearly the whole prediction; only the per-batch
  Python bookkeeping still serialises.
* ``process`` — one worker process per shard, compiled model state mapped
  from shared memory, pickle-free framed batches over a pipe.  Each shard
  plans on its own GIL, so the Python bookkeeping parallelises too — at
  the cost of a per-batch pipe round-trip.

Worker startup (spawn + import) happens on a warm-up stream *before* the
clock starts, so the rates compare steady-state serving, not process
boot.  Scaling still needs real cores: on one CPU both backends mostly
measure their coordination overhead.  The committed results record
``cpu_count`` alongside the rates; set ``ADSALA_SHARDED_SPEEDUP_MIN``
(e.g. 1.5) to turn each backend's best speedup into a hard assertion —
**both** backends must clear the floor (per-backend overrides:
``ADSALA_SHARDED_SPEEDUP_MIN_THREAD`` / ``_PROCESS``; "0" disarms one
side).  Gates arm only when ``os.cpu_count() >= 2``.  Correctness
assertions (plan equivalence, no losses, no sheds) always run, on every
backend.

Results land in ``benchmarks/results/sharded_throughput.{txt,json}``.
"""

import os
import threading
import time

from repro.core.install import install_adsala
from repro.harness.tables import format_table
from repro.machine.platforms import get_platform
from repro.serving.engine import ServingEngine
from repro.serving.frontend import ShardedFrontend
from repro.serving.workload import generate_workload

from benchmarks.conftest import run_once

ROUTINES = ["dgemm", "dsymm", "dsyrk"]
BACKENDS = ("thread", "process")
N_REQUESTS = 600
N_WARMUP = 32
N_SHARDS = 2
N_CLIENTS = 4
BATCH_SIZE = 64


def _plan_key(plan):
    """Deterministic plan fields (everything but the shard-local from_cache)."""
    return (
        plan.routine,
        tuple(sorted(plan.dims.items())),
        plan.threads,
        plan.predicted_time,
        plan.baseline_time,
        plan.policy,
    )


def _clear_caches(bundle):
    for installation in bundle.routines.values():
        installation.predictor.clear_cache()


def _single_engine_baseline(bundle, workload):
    """One engine, one client, full micro-batching: the PR 3 serving path."""
    _clear_caches(bundle)
    engine = ServingEngine(bundle, max_batch_size=BATCH_SIZE)
    start = time.perf_counter()
    plans = engine.plan_many(request.as_tuple() for request in workload)
    elapsed = time.perf_counter() - start
    return len(plans) / elapsed, plans


def _make_frontend(bundle, backend):
    return ShardedFrontend.from_bundle(
        bundle,
        n_shards=N_SHARDS,
        backend=backend,
        max_batch_size=BATCH_SIZE,
        max_pending=4096,
    )


def _warm_up(frontend, warmup_workload):
    """Launch every shard's worker off the clock (spawn + import + compile)."""
    frontend.plan_many(request.as_tuple() for request in warmup_workload)


def _sharded_bulk_clients(bundle, backend, workload, warmup):
    """M clients each pushing a bulk slice through ``plan_many``.

    The batched-RPC client model: per-request future overhead disappears,
    shards drain concurrently on the callers' thread pools, and each
    backend serialises per shard (engine lock / pipe lock).
    """
    _clear_caches(bundle)
    results = [None] * len(workload)
    with _make_frontend(bundle, backend) as frontend:
        _warm_up(frontend, warmup)

        def client(client_index):
            slots = list(range(client_index, len(workload), N_CLIENTS))
            plans = frontend.plan_many(
                workload[slot].as_tuple() for slot in slots
            )
            for slot, plan in zip(slots, plans):
                results[slot] = plan

        clients = [
            threading.Thread(target=client, args=(index,))
            for index in range(N_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = frontend.stats()
    return len(workload) / elapsed, results, stats


def _sharded_multi_client(bundle, backend, workload, warmup):
    """N shards drained by workers, M clients submitting futures."""
    _clear_caches(bundle)
    results = [None] * len(workload)
    with _make_frontend(bundle, backend) as frontend:
        _warm_up(frontend, warmup)

        def client(client_index):
            # Submit the whole slice first (pipelined), then resolve: keeps
            # every shard's inbox full so workers drain real micro-batches.
            pending = []
            for slot in range(client_index, len(workload), N_CLIENTS):
                request = workload[slot]
                pending.append(
                    (slot, frontend.submit(request.routine, **request.dims))
                )
            for slot, future in pending:
                results[slot] = future.result()

        clients = [
            threading.Thread(target=client, args=(index,))
            for index in range(N_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = frontend.stats()
    return len(workload) / elapsed, results, stats


def test_sharded_throughput(benchmark, record, record_json):
    platform = get_platform("gadi")
    bundle = install_adsala(
        platform=platform,
        routines=ROUTINES,
        n_samples=24,
        threads_per_shape=6,
        n_test_shapes=8,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=0,
    )
    warmup = generate_workload(
        ROUTINES, N_WARMUP, distribution="cycling", seed=23, pool_size=8
    )

    def run():
        rows = []
        speedups = {}
        for mix in ("uniform", "skewed"):
            workload = generate_workload(
                ROUTINES, N_REQUESTS, distribution=mix, seed=17, pool_size=8
            )
            baseline_rate, baseline_plans = _single_engine_baseline(
                bundle, workload
            )
            for backend in BACKENDS:
                for mode, drive in (
                    ("futures", _sharded_multi_client),
                    ("bulk", _sharded_bulk_clients),
                ):
                    sharded_rate, sharded_plans, stats = drive(
                        bundle, backend, workload, warmup
                    )

                    # Zero lost, zero duplicated, zero shed — and every plan
                    # bit-identical to the sequential single-engine replay.
                    label = f"{mix}/{backend}/{mode}"
                    assert None not in sharded_plans, f"lost plans on {label}"
                    assert stats["backend"] == backend
                    assert stats["requests"] == N_REQUESTS + N_WARMUP
                    assert stats["admission"]["shed"] == 0
                    assert stats["admission"]["in_flight"] == 0
                    mismatches = [
                        slot
                        for slot, (sharded, reference) in enumerate(
                            zip(sharded_plans, baseline_plans)
                        )
                        if _plan_key(sharded) != _plan_key(reference)
                    ]
                    assert not mismatches, (
                        f"plans diverged on {label}: {mismatches[:5]}"
                    )

                    speedup = sharded_rate / baseline_rate
                    speedups[mix, backend, mode] = speedup
                    rows.append(
                        {
                            "workload": mix,
                            "backend": backend,
                            "clients": mode,
                            "requests": N_REQUESTS,
                            "single_engine_plans_per_s": round(baseline_rate),
                            "sharded_plans_per_s": round(sharded_rate),
                            "speedup": round(speedup, 2),
                        }
                    )
        return rows, speedups

    rows, speedups = run_once(benchmark, run)
    cpu_count = os.cpu_count() or 1
    text = format_table(
        rows,
        title=(
            f"Sharded serving throughput: {N_SHARDS} shards x {N_CLIENTS} "
            f"client threads vs one engine, one client, per backend "
            f"({len(ROUTINES)} routines, gadi, {cpu_count} cpu)"
        ),
    )
    print()
    print(text)
    record("sharded_throughput", text)
    record_json(
        "sharded_throughput",
        [
            {
                "stage": (
                    f"sharded {row['workload']} mix, {row['backend']} backend, "
                    f"{row['clients']} clients ({N_REQUESTS} requests, "
                    f"{N_SHARDS} shards x {N_CLIENTS} clients, {cpu_count} cpu)"
                ),
                "backend": row["backend"],
                "shards": N_SHARDS,
                "plans_per_sec": row["sharded_plans_per_s"],
                "speedup_vs_single": row["speedup"],
                "reference_s": N_REQUESTS / row["single_engine_plans_per_s"],
                "optimized_s": N_REQUESTS / row["sharded_plans_per_s"],
                "speedup": row["speedup"],
                "single_engine_plans_per_s": row["single_engine_plans_per_s"],
                "sharded_plans_per_s": row["sharded_plans_per_s"],
            }
            for row in rows
        ],
    )
    # Per-backend speedup gates.  With the whole evaluate span running as
    # one GIL-free native call, the thread backend is expected to scale
    # too, so each backend must clear its own floor —
    # ``ADSALA_SHARDED_SPEEDUP_MIN_THREAD`` / ``_PROCESS`` override the
    # shared ``ADSALA_SHARDED_SPEEDUP_MIN`` default per backend ("0"
    # disarms one backend's gate without touching the other's).
    default_minimum = os.environ.get("ADSALA_SHARDED_SPEEDUP_MIN", "0")
    minimums = {
        backend: float(
            os.environ.get(
                f"ADSALA_SHARDED_SPEEDUP_MIN_{backend.upper()}",
                default_minimum,
            )
        )
        for backend in BACKENDS
    }
    if cpu_count >= 2:
        for backend, minimum in minimums.items():
            if minimum <= 0:
                continue
            best = max(
                value
                for key, value in speedups.items()
                if key[1] == backend
            )
            assert best >= minimum, (
                f"best {backend}-backend sharded speedup {best:.2f}x is "
                f"below the {minimum}x target (cpu_count={cpu_count}; "
                f"per config: "
                f"{ {'/'.join(key): round(value, 2) for key, value in speedups.items()} })"
            )
    elif any(minimum > 0 for minimum in minimums.values()):
        print(
            f"note: speedup gates skipped — "
            f"cpu_count={cpu_count} < 2 (coordination overhead only)"
        )
