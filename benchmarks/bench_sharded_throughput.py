"""Benchmark: sharded multi-client frontend vs the single-engine baseline.

The sharded frontend's bet is that partitioning traffic across N
thread-safe engines lets M concurrent clients scale plan throughput past
what one engine (PR 3's numbers) can serve — while keeping the plans
**bit-identical** to a sequential single-engine replay of the same stream
(asserted below, per request id, along with zero shed and zero lost
requests).

Scaling needs real cores: the per-plan work is a mix of GIL-holding Python
bookkeeping and GIL-releasing NumPy/BLAS/ctypes kernel time, so on one CPU
the sharded run mostly measures its coordination overhead.  The committed
results record ``cpu_count`` alongside the rates; set
``ADSALA_SHARDED_SPEEDUP_MIN`` (e.g. to 1.5 on a >= 2 core machine) to turn
the speedup target into a hard assertion.  Correctness assertions (plan
equivalence, no losses, no sheds) always run.

Results land in ``benchmarks/results/sharded_throughput.{txt,json}``.
"""

import os
import threading
import time

from repro.core.install import install_adsala
from repro.harness.tables import format_table
from repro.machine.platforms import get_platform
from repro.serving.engine import ServingEngine
from repro.serving.frontend import ShardedFrontend
from repro.serving.workload import generate_workload

from benchmarks.conftest import run_once

ROUTINES = ["dgemm", "dsymm", "dsyrk"]
N_REQUESTS = 600
N_SHARDS = 2
N_CLIENTS = 4
BATCH_SIZE = 64


def _plan_key(plan):
    """Deterministic plan fields (everything but the shard-local from_cache)."""
    return (
        plan.routine,
        tuple(sorted(plan.dims.items())),
        plan.threads,
        plan.predicted_time,
        plan.baseline_time,
        plan.policy,
    )


def _clear_caches(bundle):
    for installation in bundle.routines.values():
        installation.predictor.clear_cache()


def _single_engine_baseline(bundle, workload):
    """One engine, one client, full micro-batching: the PR 3 serving path."""
    _clear_caches(bundle)
    engine = ServingEngine(bundle, max_batch_size=BATCH_SIZE)
    start = time.perf_counter()
    plans = engine.plan_many(request.as_tuple() for request in workload)
    elapsed = time.perf_counter() - start
    return len(plans) / elapsed, plans


def _sharded_bulk_clients(bundle, workload):
    """M clients each pushing a bulk slice through ``plan_many``.

    The batched-RPC client model: per-request future overhead disappears,
    shards drain concurrently on the callers' thread pools, and the engine
    locks serialise per shard — the mode that scales with cores.
    """
    _clear_caches(bundle)
    frontend = ShardedFrontend.from_bundle(
        bundle, n_shards=N_SHARDS, max_batch_size=BATCH_SIZE
    )
    results = [None] * len(workload)

    def client(client_index):
        slots = list(range(client_index, len(workload), N_CLIENTS))
        plans = frontend.plan_many(workload[slot].as_tuple() for slot in slots)
        for slot, plan in zip(slots, plans):
            results[slot] = plan

    clients = [
        threading.Thread(target=client, args=(index,)) for index in range(N_CLIENTS)
    ]
    start = time.perf_counter()
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()
    elapsed = time.perf_counter() - start
    return len(workload) / elapsed, results, frontend.stats()


def _sharded_multi_client(bundle, workload):
    """N shards drained by workers, M clients submitting futures."""
    _clear_caches(bundle)
    frontend = ShardedFrontend.from_bundle(
        bundle, n_shards=N_SHARDS, max_batch_size=BATCH_SIZE, max_pending=4096
    )
    results = [None] * len(workload)

    def client(client_index):
        # Submit the whole slice first (pipelined), then resolve: keeps
        # every shard's inbox full so workers drain real micro-batches.
        pending = []
        for slot in range(client_index, len(workload), N_CLIENTS):
            request = workload[slot]
            pending.append((slot, frontend.submit(request.routine, **request.dims)))
        for slot, future in pending:
            results[slot] = future.result()

    clients = [
        threading.Thread(target=client, args=(index,)) for index in range(N_CLIENTS)
    ]
    start = time.perf_counter()
    with frontend:
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
    elapsed = time.perf_counter() - start
    stats = frontend.stats()
    return len(workload) / elapsed, results, stats


def test_sharded_throughput(benchmark, record, record_json):
    platform = get_platform("gadi")
    bundle = install_adsala(
        platform=platform,
        routines=ROUTINES,
        n_samples=24,
        threads_per_shape=6,
        n_test_shapes=8,
        candidate_models=["LinearRegression", "DecisionTree"],
        seed=0,
    )

    def run():
        rows = []
        speedups = {}
        for mix in ("uniform", "skewed"):
            workload = generate_workload(
                ROUTINES, N_REQUESTS, distribution=mix, seed=17, pool_size=8
            )
            baseline_rate, baseline_plans = _single_engine_baseline(bundle, workload)
            for mode, drive in (
                ("futures", _sharded_multi_client),
                ("bulk", _sharded_bulk_clients),
            ):
                sharded_rate, sharded_plans, stats = drive(bundle, workload)

                # Zero lost, zero duplicated, zero shed — and every plan
                # bit-identical to the sequential single-engine replay.
                assert None not in sharded_plans, f"lost plans on {mix}/{mode}"
                assert stats["requests"] == N_REQUESTS
                assert stats["admission"]["shed"] == 0
                assert stats["admission"]["in_flight"] == 0
                mismatches = [
                    slot
                    for slot, (sharded, reference) in enumerate(
                        zip(sharded_plans, baseline_plans)
                    )
                    if _plan_key(sharded) != _plan_key(reference)
                ]
                assert not mismatches, (
                    f"plans diverged on {mix}/{mode}: {mismatches[:5]}"
                )

                speedups[mix, mode] = sharded_rate / baseline_rate
                rows.append(
                    {
                        "workload": mix,
                        "clients": mode,
                        "requests": N_REQUESTS,
                        "single_engine_plans_per_s": round(baseline_rate),
                        "sharded_plans_per_s": round(sharded_rate),
                        "speedup": round(sharded_rate / baseline_rate, 2),
                    }
                )
        return rows, speedups

    rows, speedups = run_once(benchmark, run)
    cpu_count = os.cpu_count() or 1
    text = format_table(
        rows,
        title=(
            f"Sharded serving throughput: {N_SHARDS} shards x {N_CLIENTS} "
            f"client threads vs one engine, one client "
            f"({len(ROUTINES)} routines, gadi, {cpu_count} cpu)"
        ),
    )
    print()
    print(text)
    record("sharded_throughput", text)
    record_json(
        "sharded_throughput",
        [
            {
                "stage": (
                    f"sharded {row['workload']} mix, {row['clients']} clients "
                    f"({N_REQUESTS} requests, {N_SHARDS} shards x "
                    f"{N_CLIENTS} clients, {cpu_count} cpu)"
                ),
                "reference_s": N_REQUESTS / row["single_engine_plans_per_s"],
                "optimized_s": N_REQUESTS / row["sharded_plans_per_s"],
                "speedup": row["speedup"],
                "single_engine_plans_per_s": row["single_engine_plans_per_s"],
                "sharded_plans_per_s": row["sharded_plans_per_s"],
            }
            for row in rows
        ],
    )
    minimum = float(os.environ.get("ADSALA_SHARDED_SPEEDUP_MIN", "0"))
    if minimum > 0:
        best = max(speedups.values())
        assert best >= minimum, (
            f"sharded multi-client speedup {best:.2f}x is below the "
            f"{minimum}x target (cpu_count={cpu_count}; the sharded path "
            "needs >= 2 cores to beat the fully batched single engine)"
        )
