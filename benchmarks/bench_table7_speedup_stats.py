"""Paper Table VII: speedup statistics versus max threads on both platforms.

Expected shape (paper Table VII): mean speedup > 1 for every routine and
precision on both platforms, SYMM with the largest mean speedup, GEMM among
the smallest, Setonix means generally above Gadi means, with heavy-tailed
distributions (max values of 3-12x).
"""

import numpy as np
import pytest

from repro.harness.experiments import table7_speedup_statistics
from repro.harness.tables import format_table

from benchmarks.conftest import run_once


@pytest.mark.parametrize("platform", ["setonix", "gadi"])
def test_table7_speedup_statistics(benchmark, record, platform):
    rows = run_once(benchmark, lambda: table7_speedup_statistics(platform))
    text = format_table(
        rows,
        title=f"Table VII: ADSALA speedup statistics on {platform} (simulated, "
        "includes model evaluation time)",
    )
    record(f"table7_speedup_stats_{platform}", text)

    assert len(rows) == 12
    by_routine = {row["subroutine"]: row for row in rows}

    # Headline claim: the ML-selected thread counts do not lose to the
    # maximum-thread baseline on average, for any routine.
    assert all(row["mean"] >= 0.95 for row in rows)
    # ... and clearly win overall.
    assert np.mean([row["mean"] for row in rows]) > 1.05

    # SYMM realises a clear win (paper: 2.2-2.9 mean; smaller here because
    # the simulator's headroom is narrower, see EXPERIMENTS.md).
    symm_mean = max(by_routine["dsymm"]["mean"], by_routine["ssymm"]["mean"])
    assert symm_mean > 1.08

    # Distributions are heavy tailed: the per-routine maxima well exceed the
    # medians, as in the paper's Table VII.
    assert all(row["max"] >= row["50%"] for row in rows)
    assert max(row["max"] for row in rows) > 2.0

    # Quartile ordering is internally consistent.
    for row in rows:
        assert row["min"] <= row["25%"] <= row["50%"] <= row["75%"] <= row["max"]
