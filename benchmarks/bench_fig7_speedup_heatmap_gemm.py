"""Paper Figure 7: heatmaps of the GEMM speedup over dimension space.

Expected shape: red (speedup) concentrates where at least one dimension is
small and fades toward 1.0 as all dimensions grow — "the speedup generally
decreases as three dimensions get larger".
"""

import numpy as np
import pytest

from repro.core.evalcost import estimate_native_eval_time
from repro.harness.experiments import get_bundle
from repro.harness.figures import render_heatmap_ascii, speedup_heatmap

from benchmarks.conftest import run_once


@pytest.mark.parametrize("platform_name", ["setonix", "gadi"])
def test_fig7_gemm_speedup_heatmaps(benchmark, record, platform_name):
    bundle = get_bundle(platform_name)
    simulator = bundle.simulator

    def build():
        grids = {}
        for routine in ("dgemm", "sgemm"):
            predictor = bundle.predictor(routine)
            eval_time = estimate_native_eval_time(
                predictor.model,
                n_candidates=len(predictor.candidate_threads),
                n_features=predictor.pipeline.n_features_out_,
            )
            grids[routine] = speedup_heatmap(
                routine,
                simulator,
                predictor,
                n_points=7,
                third_dim=2048,
                eval_time=eval_time,
            )
        return grids

    grids = run_once(benchmark, build)
    record(
        f"fig7_speedup_heatmap_gemm_{platform_name}",
        "\n\n".join(render_heatmap_ascii(grid) for grid in grids.values()),
    )

    for routine, grid in grids.items():
        values = grid.values
        feasible = ~np.isnan(values)
        assert feasible.any()
        finite = values[feasible]
        # No catastrophic regressions anywhere on the grid.
        assert finite.min() > 0.5

        # Speedup near the small-small corner exceeds the speedup at the
        # largest feasible problems (speedup decays with size).
        small_corner = values[0, 0]
        # Mean over the largest feasible third of the grid.
        large_region = []
        n_rows, n_cols = values.shape
        for i in range(2 * n_rows // 3, n_rows):
            for j in range(2 * n_cols // 3, n_cols):
                if not np.isnan(values[i, j]):
                    large_region.append(values[i, j])
        if large_region:
            assert small_corner >= np.mean(large_region) * 0.9
