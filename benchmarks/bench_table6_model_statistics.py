"""Paper Table VI: detailed per-candidate statistics on Gadi.

For dgemm / dsymm / ssyrk / strsm the table reports, per candidate model,
the normalised test RMSE, the ideal and estimated mean/aggregate speedups
and the model-evaluation time.  Expected shape (paper):

* linear/Bayesian models have normalised RMSE ~1.0 (worst) but negligible
  evaluation time, so their estimated speedup equals their ideal speedup;
* tree ensembles and kNN have much lower RMSE and higher ideal speedups, but
  pay hundreds of microseconds to milliseconds per prediction;
* kNN/RandomForest lose a visible fraction of their ideal speedup once
  evaluation time is charged.
"""


from repro.harness.experiments import TABLE6_ROUTINES, table6_model_statistics
from repro.harness.tables import format_table

from benchmarks.conftest import run_once


def test_table6_model_statistics_gadi(benchmark, record):
    result = run_once(benchmark, lambda: table6_model_statistics("gadi"))

    blocks = []
    for routine, rows in result.items():
        blocks.append(format_table(rows, title=f"Table VI ({routine} on Gadi, simulated)"))
    record("table6_model_statistics_gadi", "\n\n".join(blocks))

    assert set(result) == set(TABLE6_ROUTINES)
    for routine, rows in result.items():
        by_model = {row["model"]: row for row in rows}
        # Linear models are the least accurate candidates (normalised RMSE 1.0
        # by construction belongs to the worst model, which is always one of
        # the linear family on these datasets).
        worst = max(rows, key=lambda r: r["normalised_test_rmse"])
        assert worst["model"] in ("LinearRegression", "BayesianRidge", "ElasticNet")
        # Tree/kNN models are far more accurate.
        accurate = [
            row
            for row in rows
            if row["model"] in ("XGBoost", "RandomForest", "KNN", "DecisionTree")
        ]
        assert min(row["normalised_test_rmse"] for row in accurate) < 0.7
        # Evaluation-time ordering: linear < XGBoost-style < kNN (Table VI).
        if "KNN" in by_model and "XGBoost" in by_model:
            assert (
                by_model["BayesianRidge"]["eval_time_us"]
                < by_model["XGBoost"]["eval_time_us"]
                < by_model["KNN"]["eval_time_us"] * 10
            )
        # Estimated speedup never exceeds the ideal speedup.
        for row in rows:
            assert row["estimated_mean_speedup"] <= row["ideal_mean_speedup"] + 1e-9


def test_table6_knn_pays_for_its_evaluation_time(record):
    result = table6_model_statistics("gadi")
    penalised = 0
    for rows in result.values():
        for row in rows:
            if row["model"] == "KNN":
                if row["estimated_mean_speedup"] < row["ideal_mean_speedup"] - 0.02:
                    penalised += 1
    # On at least one of the four routines the kNN latency visibly erodes its
    # speedup, which is why it never wins the selection (paper Table V).
    assert penalised >= 1
