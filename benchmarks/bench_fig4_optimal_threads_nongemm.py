"""Paper Figure 4: heatmaps of the optimal thread count (non-GEMM routines).

Expected shape: the optimal thread count is far below the maximum almost
everywhere, grows with the problem size, and differs between platforms —
on Setonix a visible fraction of SYRK/TRMM/TRSM cells prefer more threads
than there are physical cores, while on Gadi virtually none do.
"""

import numpy as np
import pytest

from repro.harness.figures import optimal_threads_heatmap, render_heatmap_ascii
from repro.machine.platforms import get_platform
from repro.machine.simulator import TimingSimulator

from benchmarks.conftest import run_once

ROUTINES = ["dsymm", "dsyrk", "dsyr2k", "dtrmm", "dtrsm",
            "ssymm", "ssyrk", "ssyr2k", "strmm", "strsm"]
GRID_POINTS = 7


@pytest.mark.parametrize("platform_name", ["setonix", "gadi"])
def test_fig4_optimal_thread_heatmaps(benchmark, record, platform_name):
    platform = get_platform(platform_name)
    simulator = TimingSimulator(platform, seed=0)

    def build():
        return {
            routine: optimal_threads_heatmap(routine, simulator, n_points=GRID_POINTS)
            for routine in ROUTINES
        }

    grids = run_once(benchmark, build)
    record(
        f"fig4_optimal_threads_{platform_name}",
        "\n\n".join(render_heatmap_ascii(grid) for grid in grids.values()),
    )

    all_values = np.concatenate(
        [grid.values[~np.isnan(grid.values)] for grid in grids.values()]
    )
    # The maximum thread count is almost never optimal.
    assert np.mean(all_values >= platform.max_threads) < 0.1
    # The bulk of the optima sit well below the hardware-thread limit.
    assert np.median(all_values) < 0.6 * platform.max_threads

    symm_values = grids["dsymm"].values[~np.isnan(grids["dsymm"].values)]
    syrk_values = grids["dsyrk"].values[~np.isnan(grids["dsyrk"].values)]
    # SYMM saturates earliest -> its optima are the lowest (paper Fig. 4).
    assert np.median(symm_values) <= np.median(syrk_values)

    over_physical = np.mean(all_values > platform.physical_cores)
    if platform_name == "setonix":
        # Some Setonix cells benefit from SMT oversubscription.
        assert over_physical > 0.02
    else:
        # On Gadi nearly all optima are below the physical core count.
        assert over_physical < 0.25
