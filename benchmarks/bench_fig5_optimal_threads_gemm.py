"""Paper Figure 5: heatmaps of the optimal thread count for GEMM.

Expected shape: small/irregular GEMM calls (any small dimension) prefer few
threads; large square problems tolerate (close to) the full machine; the
single- and double-precision patterns are similar, and isolated "abnormal"
cells deviate from their neighbourhood.
"""

import numpy as np
import pytest

from repro.harness.figures import gemm_optimal_threads_heatmap, render_heatmap_ascii
from repro.machine.platforms import get_platform
from repro.machine.simulator import TimingSimulator

from benchmarks.conftest import run_once


@pytest.mark.parametrize("platform_name", ["setonix", "gadi"])
def test_fig5_gemm_optimal_thread_heatmaps(benchmark, record, platform_name):
    platform = get_platform(platform_name)
    simulator = TimingSimulator(platform, seed=0)

    def build():
        return {
            routine: gemm_optimal_threads_heatmap(
                routine, simulator, k=2048, n_points=8
            )
            for routine in ("dgemm", "sgemm")
        }

    grids = run_once(benchmark, build)
    record(
        f"fig5_optimal_threads_gemm_{platform_name}",
        "\n\n".join(render_heatmap_ascii(grid) for grid in grids.values()),
    )

    for routine, grid in grids.items():
        values = grid.values
        feasible = ~np.isnan(values)
        assert feasible.any()
        # The smallest-m, smallest-n corner needs far fewer threads than the
        # largest feasible corner (paper: irregular calls are the ones that
        # suffer at max threads).
        small_corner = values[0, 0]
        large_feasible = values[feasible].max()
        assert small_corner < 0.5 * platform.max_threads
        assert large_feasible > small_corner

    # Single and double precision show broadly similar patterns: their
    # optima are correlated cell by cell.
    d_values = grids["dgemm"].values
    s_values = grids["sgemm"].values
    mask = ~np.isnan(d_values) & ~np.isnan(s_values)
    if mask.sum() > 4:
        correlation = np.corrcoef(d_values[mask], s_values[mask])[0, 1]
        assert correlation > 0.3
